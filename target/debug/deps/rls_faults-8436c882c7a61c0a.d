/root/repo/target/debug/deps/rls_faults-8436c882c7a61c0a.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/rls_faults-8436c882c7a61c0a: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
