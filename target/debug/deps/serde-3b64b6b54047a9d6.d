/root/repo/target/debug/deps/serde-3b64b6b54047a9d6.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3b64b6b54047a9d6.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3b64b6b54047a9d6.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
