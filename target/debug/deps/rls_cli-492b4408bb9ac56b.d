/root/repo/target/debug/deps/rls_cli-492b4408bb9ac56b.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/rls_cli-492b4408bb9ac56b: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
