//! **Snapshot** — one-shot perf-trajectory helper: re-measures the fig06 /
//! fig11 / fig12 headline numbers at CI scale and writes them as
//! `BENCH_<pr>.json` (the series started by `BENCH_6.json`), plus a
//! flight-recorder block timing the PR 7 telemetry sampler itself.
//!
//! ```text
//! cargo bench -p rls-bench --bench snapshot -- --pr 9 --date 2026-08-08 \
//!     [--out BENCH_9.json] [--scale f] [--trials n] [--pipeline d]
//! ```

use std::time::{Duration, Instant};

use rls_bench::{banner, start_lrc_sharded, start_rli_sharded, Scale};
use rls_storage::BackendProfile;
use rls_types::{Dn, Mapping};
use rls_workload::{drive, preload_lrc, NameGen, Trials};

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn counter(stats: &rls_proto::ServerStatsWire, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn p99(stats: &rls_proto::ServerStatsWire, name: &str) -> u64 {
    stats
        .op_latencies
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h.p99())
        .unwrap_or(0)
}

fn main() {
    let scale = Scale::from_args();
    let pr: u64 = flag("--pr").and_then(|v| v.parse().ok()).unwrap_or(9);
    let date = flag("--date").unwrap_or_else(|| "unknown".to_owned());
    let out = flag("--out").unwrap_or_else(|| format!("BENCH_{pr}.json"));
    banner("Snapshot", "fig06/fig11/fig12 headline numbers → JSON", &scale);

    // --- fig06 headline: buffered op rates, 10 threads ------------------
    let entries = scale.pick(5_000, 100_000);
    let per_thread = scale.pick(200, 2_000) as usize;
    let threads = 10usize;
    let server = start_lrc_sharded(BackendProfile::mysql_buffered(), 1);
    let gen = NameGen::new("snap06");
    preload_lrc(&server, &gen, entries).expect("preload");
    let tgen = NameGen::new("snap06-trial");
    let (mut q, mut a, mut d) = (Trials::new(), Trials::new(), Trials::new());
    for trial in 0..scale.trials {
        let base = (trial * 10_000_000) as u64;
        let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, threads, per_thread, |c, t, i| {
            let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
            c.query_lfn(&gen.lfn(idx)).map(|_| ())
        })
        .expect("queries");
        q.push(&r);
        let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, threads, per_thread, |c, t, i| {
            let idx = base + (t * per_thread + i) as u64;
            c.create_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
        })
        .expect("adds");
        assert_eq!(r.errors, 0);
        a.push(&r);
        let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, threads, per_thread, |c, t, i| {
            let idx = base + (t * per_thread + i) as u64;
            c.delete_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
        })
        .expect("deletes");
        assert_eq!(r.errors, 0);
        d.push(&r);
    }
    // --- fig07 RPC gap: the same queries with a pipelined window ---------
    // Lockstep (above) pays one full round trip of dead wire per query;
    // `depth` requests in flight amortize the RPC path, closing toward
    // the fig07 native rate.
    let depth = if scale.pipeline > 1 { scale.pipeline } else { 8 };
    let mut pq = Trials::new();
    for _ in 0..scale.trials {
        let r = rls_workload::drive_pipelined(
            server.addr(),
            rls_net::LinkProfile::unshaped(),
            None,
            threads,
            per_thread,
            depth,
            |t, i| {
                let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
                rls_proto::Request::QueryLfn(gen.lfn(idx))
            },
        )
        .expect("pipelined queries");
        assert_eq!(r.errors, 0);
        pq.push(&r);
    }
    println!(
        "    fig07 rpc gap: lockstep {:.0} q/s vs pipelined(depth {depth}) {:.0} q/s",
        q.mean_rate(),
        pq.mean_rate()
    );
    let mut sc = rls_core::RlsClient::connect(server.addr(), &Dn::anonymous()).expect("stats client");
    let stats = sc.stats().expect("stats");

    // --- flight recorder: sampler capture cost + ring health -------------
    let capture_trials = 200u32;
    let t0 = Instant::now();
    for _ in 0..capture_trials {
        server.force_sample();
    }
    let capture_us = t0.elapsed().as_micros() as u64 / capture_trials as u64;
    let history = sc.stats_history(0, 0).expect("stats_history");
    println!(
        "    flight recorder: {} samples retained, capture mean {capture_us}us",
        history.samples.len()
    );

    // --- fig06 headline: durable adds by shards --------------------------
    let disk = Duration::from_millis(2);
    let wthreads = 8usize;
    let wper = scale.pick(30, 500) as usize;
    let mut durable = Vec::new();
    for shards in [1usize, 2, 4] {
        let server = start_lrc_sharded(BackendProfile::mysql_durable().with_sync_latency(disk), shards);
        let wgen = NameGen::new("snap06-durable");
        let mut tr = Trials::new();
        for trial in 0..scale.trials {
            let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, wthreads, wper, |c, t, i| {
                let idx = ((trial * wthreads + t) * wper + i) as u64;
                c.create_mapping(&wgen.lfn(idx), &wgen.pfn(0, idx)).map(|_| ())
            })
            .expect("durable adds");
            assert_eq!(r.errors, 0);
            tr.push(&r);
        }
        durable.push((shards, tr.mean_rate()));
        println!("    durable adds @ {shards} shard(s): {:.0}/s", tr.mean_rate());
    }

    // --- fig11 headline: bulk rates by shards ----------------------------
    let bulk_size = 500usize;
    let bulks_per_thread = scale.pick(3, 10) as usize;
    let mut bulk_addel = Vec::new();
    let mut bulk_query = 0.0f64;
    for shards in [1usize, 2, 4] {
        let server = start_lrc_sharded(BackendProfile::mysql_buffered(), shards);
        let bgen = NameGen::new("snap11");
        preload_lrc(&server, &bgen, entries).expect("preload");
        let tgen = NameGen::new("snap11-trial");
        let mut bad = Trials::new();
        for trial in 0..scale.trials {
            let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, threads, bulks_per_thread, |c, t, i| {
                let base = ((trial * 1000 + t) * 1_000_000 + i * bulk_size) as u64;
                let mappings: Vec<Mapping> = (0..bulk_size as u64)
                    .map(|k| Mapping::new(tgen.lfn(base + k), tgen.pfn(0, base + k)).unwrap())
                    .collect();
                let fails = c.bulk_create(mappings.clone())?;
                debug_assert!(fails.is_empty());
                let fails = c.bulk_delete(mappings)?;
                debug_assert!(fails.is_empty());
                Ok(())
            })
            .expect("bulk add/delete");
            assert_eq!(r.errors, 0);
            bad.push_rate(r.rate() * (2 * bulk_size) as f64);
        }
        bulk_addel.push((shards, bad.mean_rate()));
        println!("    bulk add+del @ {shards} shard(s): {:.0} items/s", bad.mean_rate());
        if shards == 1 {
            let mut bq = Trials::new();
            for trial in 0..scale.trials {
                let r = drive(server.addr(), rls_net::LinkProfile::unshaped(), None, threads, bulks_per_thread, |c, t, i| {
                    let names: Vec<String> = (0..bulk_size)
                        .map(|k| {
                            let idx = ((t + trial) as u64)
                                .wrapping_mul(7919)
                                .wrapping_add((i * bulk_size + k) as u64)
                                % entries;
                            bgen.lfn(idx)
                        })
                        .collect();
                    c.bulk_query_lfn(names).map(|_| ())
                })
                .expect("bulk queries");
                assert_eq!(r.errors, 0);
                bq.push_rate(r.rate() * bulk_size as f64);
            }
            bulk_query = bq.mean_rate();
            println!("    bulk query @ 1 shard: {bulk_query:.0} items/s");
        }
    }

    // --- fig12 headline: RLI delta ingest by rli_shards ------------------
    // Eight concurrent immediate-mode senders, each delta a single name
    // (so every apply routes to one owner shard), against a durable RLI
    // whose per-shard WAL pays the same 2 ms emulated sync as the durable
    // LRC above. With one shard every sync serializes behind the global
    // write lock; with N shards the streams land on disjoint shards and
    // the syncs overlap.
    let ithreads = 8usize;
    let iper = scale.pick(30, 500) as usize;
    let mut rli_ingest = Vec::new();
    for rli_shards in [1usize, 4, 8] {
        let rli = start_rli_sharded(
            BackendProfile::mysql_durable().with_sync_latency(disk),
            rli_shards,
        );
        let igen = NameGen::new("snap12");
        let mut tr = Trials::new();
        for trial in 0..scale.trials {
            let r = drive(rli.addr(), rls_net::LinkProfile::unshaped(), None, ithreads, iper, |c, t, i| {
                let idx = ((trial * ithreads + t) * iper + i) as u64;
                c.send_delta(&format!("lrc-{t}"), vec![igen.lfn(idx)], vec![])
            })
            .expect("delta ingest");
            assert_eq!(r.errors, 0);
            tr.push(&r);
        }
        rli_ingest.push((rli_shards, tr.mean_rate()));
        println!(
            "    rli delta ingest @ {rli_shards} shard(s): {:.0} names/s",
            tr.mean_rate()
        );
    }

    // --- emit ------------------------------------------------------------
    let by_shards = |rows: &[(usize, f64)]| -> String {
        let cells: Vec<String> = rows
            .iter()
            .map(|(s, r)| format!("\"{s}\": {:.0}", r))
            .collect();
        format!("{{ {} }}", cells.join(", "))
    };
    let json = format!(
        r#"{{
  "pr": {pr},
  "date": "{date}",
  "host": "1-core container, in-process engine, emulated network",
  "note": "Perf-trajectory snapshot emitted by `cargo bench -p rls-bench --bench snapshot`. CI-scale runs of the fig06/fig11/fig12 headline measurements, the fig07 RPC-gap comparison (lockstep vs pipelined window), and the PR 7 flight-recorder sampler cost; regenerate with the named bench targets for full curves.",
  "fig06_lrc_multiclient": {{
    "buffered_1_client_10_threads": {{
      "shards": 1,
      "query_per_s": {qr:.0},
      "add_per_s": {ar:.0},
      "delete_per_s": {dr:.0}
    }},
    "durable_adds_per_s_by_shards": {durable},
    "server_p99_us": {{
      "op.create": {p99c},
      "op.delete": {p99d},
      "op.query_lfn": {p99q}
    }},
    "worker_pool": {{ "busy_rejects": {rejects}, "accept_errors": {aerr}, "conns_admitted": {admitted} }}
  }},
  "fig07_rpc_gap": {{
    "pipeline_depth": {depth},
    "lockstep_query_per_s": {qr:.0},
    "pipelined_query_per_s": {pqr:.0},
    "pipelined_vs_lockstep": {pvl:.2},
    "server_counters": {{
      "net.pipeline.offloaded": {offloaded},
      "net.pipeline.inline": {inline},
      "net.tx_writev": {writev},
      "net.tx_writev_resumes": {writev_resumes}
    }}
  }},
  "fig11_bulk_ops": {{
    "bulk_add_del_items_per_s_10_threads_by_shards": {bulk},
    "bulk_query_items_per_s_10_threads_shards_1": {bq:.0}
  }},
  "fig12_uncompressed_updates": {{
    "delta_ingest_names_per_s_8_threads_by_rli_shards": {ingest},
    "note": "durable RLI, 2ms emulated WAL sync per commit; single-name deltas route to their owner shard, so sharding lets concurrent update streams overlap their syncs"
  }},
  "flight_recorder": {{
    "sample_capture_mean_us": {capture_us},
    "samples_retained": {retained},
    "ring_capacity": {cap},
    "interval_micros": {interval}
  }}
}}
"#,
        qr = q.mean_rate(),
        ar = a.mean_rate(),
        dr = d.mean_rate(),
        pqr = pq.mean_rate(),
        pvl = pq.mean_rate() / q.mean_rate().max(1e-9),
        offloaded = counter(&stats, "net.pipeline.offloaded"),
        inline = counter(&stats, "net.pipeline.inline"),
        writev = counter(&stats, "net.tx_writev"),
        writev_resumes = counter(&stats, "net.tx_writev_resumes"),
        durable = by_shards(&durable),
        p99c = p99(&stats, "op.create"),
        p99d = p99(&stats, "op.delete"),
        p99q = p99(&stats, "op.query_lfn"),
        rejects = counter(&stats, "server.busy_rejects"),
        aerr = counter(&stats, "server.accept_errors"),
        admitted = counter(&stats, "server.conns_admitted"),
        bulk = by_shards(&bulk_addel),
        bq = bulk_query,
        ingest = by_shards(&rli_ingest),
        retained = history.samples.len(),
        cap = history.ring_capacity,
        interval = history.interval_micros,
    );
    std::fs::write(&out, &json).expect("write snapshot");
    println!("\n    wrote {out}");
}
