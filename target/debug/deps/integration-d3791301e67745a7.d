/root/repo/target/debug/deps/integration-d3791301e67745a7.d: tests/integration.rs

/root/repo/target/debug/deps/integration-d3791301e67745a7: tests/integration.rs

tests/integration.rs:
