//! Authentication and authorization (§3.1 of the paper).
//!
//! On connect, the client's Hello carries its distinguished name (the
//! stand-in for GSI certificate authentication — DESIGN.md §2). The server
//! maps the DN through the gridmap to a local username, then evaluates ACL
//! entries — regexes over the DN or local user — to decide per-operation
//! privileges (`lrc_read`, `lrc_write`, `rli_read`, `rli_write`, `admin`).

use rls_proto::Request;
use rls_types::{Dn, Privilege, RlsError, RlsResult};

use crate::config::AuthConfig;

/// The authenticated identity of a connection.
#[derive(Clone, Debug)]
pub struct Identity {
    /// Distinguished name from the handshake.
    pub dn: Dn,
    /// Local username from the gridmap, if mapped.
    pub local_user: Option<String>,
}

impl Identity {
    /// The identity used when authentication is disabled.
    pub fn anonymous() -> Self {
        Self {
            dn: Dn::anonymous(),
            local_user: None,
        }
    }
}

/// Evaluates ACLs for a server.
#[derive(Debug)]
pub struct Authorizer {
    config: AuthConfig,
}

impl Authorizer {
    /// Wraps an auth configuration.
    pub fn new(config: AuthConfig) -> Self {
        Self { config }
    }

    /// Whether authentication is enforced at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Resolves a DN into a connection identity (gridmap lookup).
    pub fn authenticate(&self, dn: Dn) -> Identity {
        let local_user = self.config.gridmap.get(dn.as_str()).cloned();
        Identity { dn, local_user }
    }

    /// Checks that `identity` holds `privilege`.
    pub fn check(&self, identity: &Identity, privilege: Privilege) -> RlsResult<()> {
        if !self.config.enabled {
            return Ok(());
        }
        let granted = self.config.acl.iter().any(|entry| {
            entry.grants(&identity.dn, identity.local_user.as_deref(), privilege)
        });
        if granted {
            Ok(())
        } else {
            Err(RlsError::denied(format!(
                "{} lacks privilege {privilege}",
                identity.dn
            )))
        }
    }
}

/// The privilege each request requires.
pub fn required_privilege(req: &Request) -> Option<Privilege> {
    use Request::*;
    Some(match req {
        Hello { .. } | Ping => return None,
        Create(_) | Add(_) | Delete(_) | BulkCreate(_) | BulkAdd(_) | BulkDelete(_)
        | DefineAttr(_) | UndefineAttr { .. } | AddAttr(_) | ModifyAttr(_)
        | RemoveAttr { .. } | BulkAddAttr(_) | BulkModifyAttr(_) | BulkRemoveAttr(_) => {
            Privilege::LrcWrite
        }
        QueryLfn(_) | QueryPfn(_) | BulkQueryLfn(_) | WildcardQueryLfn { .. }
        | WildcardQueryPfn { .. } | GetAttrs { .. } | SearchAttr { .. } | ListRlis => {
            Privilege::LrcRead
        }
        AddRli { .. } | RemoveRli { .. } => Privilege::Admin,
        RliQueryLfn(_) | RliBulkQueryLfn(_) | RliWildcardQuery { .. } | RliListLrcs => {
            Privilege::RliRead
        }
        // The span journal is readable with either role's read privilege;
        // dispatch additionally accepts `rli_read` when this check fails.
        TraceQuery { .. } => Privilege::LrcRead,
        SoftStateFull { .. } | SoftStateDelta { .. } | SoftStateBloom { .. } => {
            Privilege::RliWrite
        }
        Stats | StatsHistory { .. } => Privilege::Admin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_types::{AclEntry, AclSubject};

    fn authz() -> Authorizer {
        let mut cfg = AuthConfig {
            enabled: true,
            ..Default::default()
        };
        cfg.gridmap
            .insert("/O=Grid/OU=ISI/CN=Ann".to_owned(), "ann".to_owned());
        cfg.acl.push(
            AclEntry::new(
                AclSubject::Dn,
                "/O=Grid/OU=ISI/.*",
                vec![Privilege::LrcRead, Privilege::RliRead],
            )
            .unwrap(),
        );
        cfg.acl.push(
            AclEntry::new(AclSubject::LocalUser, "ann", vec![Privilege::LrcWrite]).unwrap(),
        );
        Authorizer::new(cfg)
    }

    #[test]
    fn gridmap_resolution() {
        let a = authz();
        let id = a.authenticate(Dn::new("/O=Grid/OU=ISI/CN=Ann"));
        assert_eq!(id.local_user.as_deref(), Some("ann"));
        let id = a.authenticate(Dn::new("/O=Grid/OU=ISI/CN=Bob"));
        assert_eq!(id.local_user, None);
    }

    #[test]
    fn acl_by_dn_and_local_user() {
        let a = authz();
        let ann = a.authenticate(Dn::new("/O=Grid/OU=ISI/CN=Ann"));
        let bob = a.authenticate(Dn::new("/O=Grid/OU=ISI/CN=Bob"));
        let eve = a.authenticate(Dn::new("/O=Grid/OU=UCLA/CN=Eve"));
        // Everyone at ISI can read.
        assert!(a.check(&ann, Privilege::LrcRead).is_ok());
        assert!(a.check(&bob, Privilege::LrcRead).is_ok());
        assert!(a.check(&eve, Privilege::LrcRead).is_err());
        // Only ann (via gridmap + local-user ACL) can write.
        assert!(a.check(&ann, Privilege::LrcWrite).is_ok());
        assert!(a.check(&bob, Privilege::LrcWrite).is_err());
        // Nobody has admin.
        assert!(a.check(&ann, Privilege::Admin).is_err());
    }

    #[test]
    fn disabled_auth_allows_everything() {
        let a = Authorizer::new(AuthConfig::default());
        let id = Identity::anonymous();
        for p in [
            Privilege::LrcRead,
            Privilege::LrcWrite,
            Privilege::RliRead,
            Privilege::RliWrite,
            Privilege::Admin,
        ] {
            assert!(a.check(&id, p).is_ok());
        }
    }

    #[test]
    fn privilege_mapping_covers_request_classes() {
        use rls_types::Mapping;
        let m = Mapping::new("lfn://a", "pfn://a").unwrap();
        assert_eq!(required_privilege(&Request::Ping), None);
        assert_eq!(
            required_privilege(&Request::Create(m.clone())),
            Some(Privilege::LrcWrite)
        );
        assert_eq!(
            required_privilege(&Request::QueryLfn("x".into())),
            Some(Privilege::LrcRead)
        );
        assert_eq!(
            required_privilege(&Request::RliQueryLfn("x".into())),
            Some(Privilege::RliRead)
        );
        assert_eq!(
            required_privilege(&Request::SoftStateDelta {
                lrc: "l".into(),
                added: vec![],
                removed: vec![]
            }),
            Some(Privilege::RliWrite)
        );
        assert_eq!(required_privilege(&Request::Stats), Some(Privilege::Admin));
        assert_eq!(
            required_privilege(&Request::StatsHistory {
                since_seq: 0,
                limit: 0
            }),
            Some(Privilege::Admin)
        );
        assert_eq!(
            required_privilege(&Request::TraceQuery {
                trace_id: 0,
                op_prefix: String::new(),
                min_duration_micros: 0,
                limit: 0,
            }),
            Some(Privilege::LrcRead)
        );
    }
}
