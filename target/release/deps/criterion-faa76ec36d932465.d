/root/repo/target/release/deps/criterion-faa76ec36d932465.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-faa76ec36d932465.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-faa76ec36d932465.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
