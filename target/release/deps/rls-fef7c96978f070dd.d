/root/repo/target/release/deps/rls-fef7c96978f070dd.d: src/lib.rs

/root/repo/target/release/deps/librls-fef7c96978f070dd.rlib: src/lib.rs

/root/repo/target/release/deps/librls-fef7c96978f070dd.rmeta: src/lib.rs

src/lib.rs:
