/root/repo/target/debug/deps/fig07_native_db-00f5494a9f6dd1a8.d: crates/bench/benches/fig07_native_db.rs

/root/repo/target/debug/deps/libfig07_native_db-00f5494a9f6dd1a8.rmeta: crates/bench/benches/fig07_native_db.rs

crates/bench/benches/fig07_native_db.rs:
