/root/repo/target/release/deps/fig04_lrc_add_flush-93708c2522097a09.d: crates/bench/benches/fig04_lrc_add_flush.rs

/root/repo/target/release/deps/fig04_lrc_add_flush-93708c2522097a09: crates/bench/benches/fig04_lrc_add_flush.rs

crates/bench/benches/fig04_lrc_add_flush.rs:
