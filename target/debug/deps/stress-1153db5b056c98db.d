/root/repo/target/debug/deps/stress-1153db5b056c98db.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/libstress-1153db5b056c98db.rmeta: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
