/root/repo/target/debug/deps/rls_storage-7d7b8f1fcabb7b18.d: crates/storage/src/lib.rs crates/storage/src/engine.rs crates/storage/src/index.rs crates/storage/src/lrcdb.rs crates/storage/src/predicate.rs crates/storage/src/profile.rs crates/storage/src/rlidb.rs crates/storage/src/schema.rs crates/storage/src/snapshot.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/txn.rs crates/storage/src/value.rs crates/storage/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/librls_storage-7d7b8f1fcabb7b18.rmeta: crates/storage/src/lib.rs crates/storage/src/engine.rs crates/storage/src/index.rs crates/storage/src/lrcdb.rs crates/storage/src/predicate.rs crates/storage/src/profile.rs crates/storage/src/rlidb.rs crates/storage/src/schema.rs crates/storage/src/snapshot.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/txn.rs crates/storage/src/value.rs crates/storage/src/wal.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/engine.rs:
crates/storage/src/index.rs:
crates/storage/src/lrcdb.rs:
crates/storage/src/predicate.rs:
crates/storage/src/profile.rs:
crates/storage/src/rlidb.rs:
crates/storage/src/schema.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/txn.rs:
crates/storage/src/value.rs:
crates/storage/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
