/root/repo/target/debug/deps/integration-ce94b209697105f4.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-ce94b209697105f4.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
