//! Table schemas and index specifications.

use crate::value::ValueType;

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (for diagnostics and schema dumps).
    pub name: String,
    /// The value type every row must carry in this column.
    pub vtype: ValueType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, vtype: ValueType) -> Self {
        Self {
            name: name.to_owned(),
            vtype,
        }
    }
}

/// The kind of secondary index to maintain on a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) point lookups (`WHERE col = ?`).
    Hash,
    /// Ordered index: point lookups plus range / prefix scans — what
    /// wildcard queries seek into.
    Ordered,
}

/// An index over a single column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSpec {
    /// Which column (by position) the index covers.
    pub column: usize,
    /// Hash or ordered.
    pub kind: IndexKind,
    /// If true, the engine rejects two *live* rows with equal keys.
    pub unique: bool,
}

impl IndexSpec {
    /// A non-unique hash index on `column`.
    pub fn hash(column: usize) -> Self {
        Self {
            column,
            kind: IndexKind::Hash,
            unique: false,
        }
    }

    /// A unique hash index on `column`.
    pub fn unique_hash(column: usize) -> Self {
        Self {
            column,
            kind: IndexKind::Hash,
            unique: true,
        }
    }

    /// A non-unique ordered index on `column`.
    pub fn ordered(column: usize) -> Self {
        Self {
            column,
            kind: IndexKind::Ordered,
            unique: false,
        }
    }

    /// A unique ordered index on `column`.
    pub fn unique_ordered(column: usize) -> Self {
        Self {
            column,
            kind: IndexKind::Ordered,
            unique: true,
        }
    }
}

/// A table schema: ordered columns plus index specifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, e.g. `"t_map"`.
    pub name: String,
    /// Columns in storage order.
    pub columns: Vec<ColumnDef>,
    /// Secondary indexes.
    pub indexes: Vec<IndexSpec>,
}

impl TableSchema {
    /// Builds a schema; panics on malformed specs (schemas are static
    /// program data, so this is a programmer-error check, not runtime
    /// validation).
    pub fn new(name: &str, columns: Vec<ColumnDef>, indexes: Vec<IndexSpec>) -> Self {
        assert!(!columns.is_empty(), "table {name} must have columns");
        for idx in &indexes {
            assert!(
                idx.column < columns.len(),
                "index on {name} references column {} out of {}",
                idx.column,
                columns.len()
            );
        }
        Self {
            name: name.to_owned(),
            columns,
            indexes,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name (diagnostics/tests).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t_lfn",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
                ColumnDef::new("ref", ValueType::Int),
            ],
            vec![IndexSpec::unique_hash(0), IndexSpec::unique_ordered(1)],
        )
    }

    #[test]
    fn construction_and_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "references column")]
    fn out_of_range_index_panics() {
        TableSchema::new(
            "bad",
            vec![ColumnDef::new("a", ValueType::Int)],
            vec![IndexSpec::hash(3)],
        );
    }

    #[test]
    #[should_panic(expected = "must have columns")]
    fn empty_columns_panics() {
        TableSchema::new("bad", vec![], vec![]);
    }
}
