/root/repo/target/debug/deps/trace_propagation-337f34dbad78b10c.d: crates/core/tests/trace_propagation.rs

/root/repo/target/debug/deps/libtrace_propagation-337f34dbad78b10c.rmeta: crates/core/tests/trace_propagation.rs

crates/core/tests/trace_propagation.rs:
