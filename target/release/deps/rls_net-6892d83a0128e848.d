/root/repo/target/release/deps/rls_net-6892d83a0128e848.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/release/deps/librls_net-6892d83a0128e848.rlib: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/release/deps/librls_net-6892d83a0128e848.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/pipeline.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
