//! The RLS client library: a typed wrapper over one protocol connection.
//!
//! The original implementation ships a C client (plus a Java wrapper);
//! [`RlsClient`] is the equivalent surface — every LRC and RLI operation of
//! the paper's Table 1, the bulk variants, and the soft-state update calls
//! the update threads use.

use std::collections::VecDeque;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rls_bloom::BloomFilter;
use rls_metrics::{Counter, Registry};
use rls_net::{
    connect_with, Conn, ConnectOptions, FaultHook, LinkProfile, Pipeline, RetryPolicy,
    SharedIngress,
};
use rls_proto::{
    AttrAssignment, LagStamp, ProtocolVersion, Request, Response, RliHit, RliTargetWire,
    ServerStatsWire, SpanWire, StatsHistoryWire, PROTOCOL_VERSION, PROTOCOL_VERSION_PIPELINED,
};
use rls_trace::{mix64, nonzero_id};
use rls_types::{
    AttrCompare, AttrValue, AttributeDef, Dn, ErrorCode, Mapping, ObjectType, RlsError, RlsResult,
};

/// Process-wide connection counter: each client gets a distinct trace-ID
/// seed with no clock or RNG involved (deterministic per connection order).
static CONN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Per-name results of a bulk LRC query.
pub type BulkLfnResults = Vec<(String, Result<Vec<String>, RlsError>)>;
/// Per-name results of a bulk RLI query.
pub type BulkRliResults = Vec<(String, Result<Vec<RliHit>, RlsError>)>;

/// Counter handles a client reports its retries into. Handles are clones
/// of registry counters, so the numbers surface wherever that registry is
/// reported — for the soft-state updater, the LRC's own `stats` RPC.
#[derive(Clone, Debug)]
pub struct RetryMeter {
    /// Retries performed (one per re-attempted connect or call).
    pub retry_total: Counter,
    /// Milliseconds slept in backoff.
    pub backoff_ms: Counter,
}

impl RetryMeter {
    /// Builds a meter over `<prefix>.retry_total` / `<prefix>.backoff_ms`
    /// in `registry`.
    pub fn from_registry(registry: &Registry, prefix: &str) -> Self {
        Self {
            retry_total: registry.counter(&format!("{prefix}.retry_total")),
            backoff_ms: registry.counter(&format!("{prefix}.backoff_ms")),
        }
    }
}

/// A connected, authenticated RLS client.
///
/// Every request carries a trace ID in the frame's trace envelope: a fresh
/// one minted per call (`mix64(seed + counter)`, seed derived from pid and
/// connection order), or the caller's IDs via [`RlsClient::call_traced`].
/// [`RlsClient::last_trace_id`] reports the ID of the most recent call so
/// operators can follow it with `rls-cli trace`.
///
/// With a [`RetryPolicy`] attached (see [`RlsClient::connect_with`]), a
/// failed connect or call is transparently retried with exponential
/// backoff and deterministic jitter: the connection is torn down, redialed
/// (re-running the Hello handshake) and the request re-sent. Only
/// transport-level failures retry; an error *returned by the server*
/// (e.g. `MappingExists`) is authoritative and surfaces immediately.
pub struct RlsClient {
    conn: Option<Conn>,
    addr: SocketAddr,
    dn: Dn,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    policy: RetryPolicy,
    hook: Option<Arc<dyn FaultHook>>,
    meter: Option<RetryMeter>,
    retries: u64,
    reconnects: u64,
    server_version: String,
    is_lrc: bool,
    is_rli: bool,
    trace_seed: u64,
    next_trace: u64,
    last_trace_id: u64,
    /// Requested in-flight window. 1 (the default) is lockstep: the
    /// handshake and every frame are byte-identical to the legacy
    /// protocol.
    pipeline_depth: usize,
    /// Protocol version the current/last connection settled on.
    negotiated: ProtocolVersion,
    /// In-flight window state for the pipelined call path.
    pipe: Pipeline,
    /// Responses received (or deterministically failed) but not yet
    /// collected by the caller, in completion order.
    completed: VecDeque<(u64, RlsResult<Response>)>,
}

impl std::fmt::Debug for RlsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RlsClient")
            .field("server_version", &self.server_version)
            .field("is_lrc", &self.is_lrc)
            .field("is_rli", &self.is_rli)
            .finish_non_exhaustive()
    }
}

impl RlsClient {
    /// Connects over an unshaped link (local clients).
    pub fn connect(addr: impl ToSocketAddrs, dn: &Dn) -> RlsResult<Self> {
        Self::connect_shaped(addr, dn, LinkProfile::unshaped(), None)
    }

    /// Connects with link shaping (WAN/LAN emulation) and an optional
    /// shared-ingress pool. Fail-fast: no retries, no timeouts.
    pub fn connect_shaped(
        addr: impl ToSocketAddrs,
        dn: &Dn,
        link: LinkProfile,
        ingress: Option<SharedIngress>,
    ) -> RlsResult<Self> {
        Self::connect_with(addr, dn, link, ingress, RetryPolicy::none(), None, None)
    }

    /// Connects with full control: shaping, a retry/backoff policy, an
    /// optional fault-injection hook installed on every (re)connection,
    /// and an optional meter so even initial-connect retries are counted.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        dn: &Dn,
        link: LinkProfile,
        ingress: Option<SharedIngress>,
        policy: RetryPolicy,
        hook: Option<Arc<dyn FaultHook>>,
        meter: Option<RetryMeter>,
    ) -> RlsResult<Self> {
        let sa = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| RlsError::bad_request("address resolved to nothing"))?;
        let n = CONN_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut client = Self {
            conn: None,
            addr: sa,
            dn: dn.clone(),
            link,
            ingress,
            policy,
            hook,
            meter,
            retries: 0,
            reconnects: 0,
            server_version: String::new(),
            is_lrc: false,
            is_rli: false,
            trace_seed: mix64(((std::process::id() as u64) << 32) ^ n),
            next_trace: 0,
            last_trace_id: 0,
            pipeline_depth: 1,
            negotiated: PROTOCOL_VERSION,
            pipe: Pipeline::new(1),
            completed: VecDeque::new(),
        };
        let mut attempt = 0u32;
        loop {
            match client.ensure_conn() {
                Ok(()) => return Ok(client),
                Err(e) if attempt < client.policy.max_retries && Self::is_transport(&e) => {
                    client.note_retry(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The retry/backoff policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replaces the retry/backoff policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Attaches counters that aggregate this client's retries into a
    /// metrics registry (the updater points this at its LRC's registry so
    /// retries show up in `rls-cli stats`).
    pub fn set_retry_meter(&mut self, meter: RetryMeter) {
        self.meter = Some(meter);
    }

    /// Retries performed over this client's lifetime.
    pub fn retries_performed(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed (the initial dial not included).
    pub fn reconnects_performed(&self) -> u64 {
        self.reconnects
    }

    /// The server's reported software version.
    pub fn server_version(&self) -> &str {
        &self.server_version
    }

    /// Whether the server acts as an LRC.
    pub fn server_is_lrc(&self) -> bool {
        self.is_lrc
    }

    /// Whether the server acts as an RLI.
    pub fn server_is_rli(&self) -> bool {
        self.is_rli
    }

    /// True for errors worth retrying under the policy: transport
    /// failures (dial failures, severed or stalled connections, corrupt
    /// frames) plus the server's `Busy` admission rejection, which is an
    /// explicit invitation to back off and come back. Other server-side
    /// errors arrive as `Response::Error` and are not retried.
    fn is_transport(e: &RlsError) -> bool {
        RetryPolicy::is_retryable(e.code())
    }

    /// Dials and handshakes if not currently connected.
    ///
    /// With `pipeline_depth > 1` the Hello requests the pipelined
    /// protocol. An old peer answers that with a protocol error — the
    /// client then redials once with the baseline version and runs
    /// lockstep, so a pipelining-configured client interoperates with an
    /// un-negotiated server transparently. At depth 1 the Hello carries
    /// the baseline version and the handshake is byte-identical to the
    /// legacy client's.
    fn ensure_conn(&mut self) -> RlsResult<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        if !self.server_version.is_empty() {
            self.reconnects += 1;
        }
        let mut version = if self.pipeline_depth > 1 {
            PROTOCOL_VERSION_PIPELINED
        } else {
            PROTOCOL_VERSION
        };
        loop {
            let opts = ConnectOptions {
                timeout: self.policy.connect_timeout,
                hook: self.hook.clone(),
            };
            let mut conn = connect_with(self.addr, self.link, self.ingress.clone(), &opts)?;
            if self.policy.request_timeout.is_some() {
                conn.set_read_timeout(self.policy.request_timeout)?;
            }
            let id = self.mint_trace_id();
            let hello = Request::Hello {
                dn: self.dn.clone(),
                version,
            };
            let body = hello.encode_traced(&[id]).into_bytes();
            let resp_body = conn.request(&body)?;
            let resp = Response::decode(&resp_body)?;
            match resp {
                Response::HelloAck {
                    server_version,
                    is_lrc,
                    is_rli,
                    protocol,
                } => {
                    self.server_version = server_version;
                    self.is_lrc = is_lrc;
                    self.is_rli = is_rli;
                    // Settle on the lower of what we asked and what the
                    // server acknowledged (a legacy ack implies v1).
                    self.negotiated = protocol.min(version);
                    self.conn = Some(conn);
                    return Ok(());
                }
                Response::Error(e)
                    if version == PROTOCOL_VERSION_PIPELINED
                        && e.code() == ErrorCode::Protocol =>
                {
                    // Old-protocol peer: fall back to the legacy handshake.
                    version = PROTOCOL_VERSION;
                }
                Response::Error(e) => return Err(e),
                _ => return Err(RlsError::protocol("expected HelloAck")),
            }
        }
    }

    /// Counts one retry and sleeps the policy's backoff for `attempt`.
    fn note_retry(&mut self, attempt: u32) {
        self.retries += 1;
        let d = self.policy.backoff(attempt, self.trace_seed);
        if let Some(meter) = &self.meter {
            meter.retry_total.inc();
            meter.backoff_ms.add(d.as_millis() as u64);
        }
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// One request/response exchange under a freshly minted trace ID;
    /// `Response::Error` becomes `Err`.
    pub fn call(&mut self, req: &Request) -> RlsResult<Response> {
        let id = self.mint_trace_id();
        self.call_traced(req, &[id])
    }

    /// One exchange under the caller's trace IDs (soft-state propagation);
    /// an empty list sends the frame untraced.
    ///
    /// Under a retry policy, a transport failure tears the connection
    /// down, backs off, reconnects and re-sends — up to `max_retries`
    /// extra attempts. RLS mutations are idempotent upserts at the RLI
    /// (soft-state applies) or guarded by existence checks at the LRC, so
    /// a retried request whose first response was lost is safe: the worst
    /// case is an `MappingExists`-style server error, which is returned
    /// unretried.
    pub fn call_traced(&mut self, req: &Request, trace_ids: &[u64]) -> RlsResult<Response> {
        self.call_framed(req, trace_ids, None)
    }

    /// One exchange carrying full frame metadata: trace IDs plus an
    /// optional soft-state [`LagStamp`] (commit sequence and wall-clock
    /// commit time of the shipped state, which the RLI turns into its
    /// update-lag plane). Without a stamp the frame encoding is
    /// byte-identical to [`call_traced`]'s.
    pub fn call_framed(
        &mut self,
        req: &Request,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
    ) -> RlsResult<Response> {
        // A lockstep call must not interleave with pipelined responses:
        // resolve the window first (results stay collectable).
        if self.pipe.in_flight() > 0 {
            self.pipeline_flush()?;
        }
        self.last_trace_id = trace_ids.first().copied().unwrap_or(0);
        let body = req.encode_framed(trace_ids, stamp).into_bytes();
        let mut attempt = 0u32;
        loop {
            let result = self.ensure_conn().and_then(|()| {
                let conn = self.conn.as_mut().expect("connected after ensure_conn");
                conn.request(&body)
            });
            match result.and_then(|resp_body| Response::decode(&resp_body)) {
                Ok(Response::Error(e)) => {
                    // A Busy verdict on the response path (e.g. racing an
                    // admission-controlled reconnect) is retryable like a
                    // transport fault; every other server error is final.
                    if e.code() == ErrorCode::Busy && attempt < self.policy.max_retries {
                        self.conn = None;
                        self.note_retry(attempt);
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // The connection is suspect after any failure: drop it
                    // so the next attempt (or next call) redials.
                    self.conn = None;
                    if attempt >= self.policy.max_retries || !Self::is_transport(&e) {
                        return Err(e);
                    }
                    self.note_retry(attempt);
                    attempt += 1;
                }
            }
        }
    }

    // -- pipelined calls ------------------------------------------------------

    /// Sets the in-flight window for the pipelined call path. Depth 1
    /// (the default) is lockstep — byte-identical on the wire to the
    /// legacy protocol. Larger depths negotiate the pipelined protocol
    /// on the next (re)connect; against an old server the client falls
    /// back to lockstep automatically. Fails if requests are currently
    /// in flight.
    pub fn set_pipeline_depth(&mut self, depth: usize) -> RlsResult<()> {
        if self.pipe.in_flight() > 0 {
            return Err(RlsError::bad_request(
                "cannot change pipeline depth with requests in flight",
            ));
        }
        let depth = depth.max(1);
        self.pipeline_depth = depth;
        self.pipe = Pipeline::new(depth);
        // The current connection's negotiation may no longer match the
        // requested mode; redial lazily on the next call.
        let want = if depth > 1 {
            PROTOCOL_VERSION_PIPELINED
        } else {
            PROTOCOL_VERSION
        };
        if self.conn.is_some() && self.negotiated != want {
            self.conn = None;
        }
        Ok(())
    }

    /// The configured in-flight window.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Protocol version the current/last connection negotiated.
    pub fn negotiated_protocol(&self) -> ProtocolVersion {
        self.negotiated
    }

    /// Requests currently submitted but unresolved.
    pub fn pipeline_in_flight(&self) -> usize {
        self.pipe.in_flight()
    }

    /// Lifetime count of in-flight requests replayed after reconnects.
    pub fn pipeline_replays(&self) -> u64 {
        self.pipe.replayed()
    }

    /// Lifetime count of in-flight requests failed by exhausted
    /// reconnect retries (each surfaced as an `Err` entry).
    pub fn pipeline_failures(&self) -> u64 {
        self.pipe.failed()
    }

    /// The window actually usable on the live connection: the configured
    /// depth under the pipelined protocol, 1 against a legacy peer.
    fn effective_depth(&self) -> usize {
        if self.negotiated >= PROTOCOL_VERSION_PIPELINED {
            self.pipeline_depth
        } else {
            1
        }
    }

    /// Submits one request into the pipeline and returns its request ID.
    /// Blocks only when the in-flight window is full, in which case one
    /// response is resolved first (at depth 1 this degenerates to
    /// lockstep). Results are collected with [`RlsClient::pipeline_drain`]
    /// (or [`RlsClient::pipeline_collect`] for what has already resolved).
    ///
    /// Failure semantics mirror [`RlsClient::call_traced`]: a transport
    /// fault tears the connection down, reconnects under the retry
    /// policy, and **replays every in-flight frame in submission order**;
    /// when retries are exhausted, all in-flight requests fail as a unit,
    /// each surfacing as an `Err` entry. (The same idempotency argument
    /// applies — a replayed request whose first response was lost is at
    /// worst a `MappingExists`-style server error on its entry.)
    pub fn pipeline_submit(&mut self, req: &Request) -> RlsResult<u64> {
        self.ensure_pipeline_conn()?;
        while self.pipe.in_flight() >= self.effective_depth() {
            self.pipeline_receive_one()?;
        }
        self.ensure_pipeline_conn()?; // receive may have torn the connection down
        let trace = self.mint_trace_id();
        self.last_trace_id = trace;
        let id = self.pipe.next_id();
        // Only a genuinely pipelined window stamps the ID envelope: at an
        // effective depth of 1 (configured, or clamped by a legacy peer)
        // at most one request is outstanding, responses match implicitly,
        // and the wire bytes stay identical to the lockstep protocol.
        let wire_id = (self.effective_depth() > 1).then_some(id);
        let frame = req
            .encode_framed_with_id(&[trace], None, wire_id)
            .into_bytes()
            .to_vec();
        let sent = self
            .conn
            .as_mut()
            .expect("connected after ensure_conn")
            .send(&frame);
        // Record before recovering: a send that died mid-frame is still
        // an in-flight request the replay path must re-send.
        self.pipe.record(id, frame);
        if let Err(e) = sent {
            self.conn = None;
            self.pipeline_recover(e)?;
        }
        Ok(id)
    }

    /// Resolves every in-flight request (successfully or as a
    /// deterministic failure), leaving the results collectable.
    pub fn pipeline_flush(&mut self) -> RlsResult<()> {
        while self.pipe.in_flight() > 0 {
            self.pipeline_receive_one()?;
        }
        Ok(())
    }

    /// Takes the responses resolved so far, in completion order (which
    /// under pipelining is not necessarily submission order — match by
    /// the returned request IDs).
    pub fn pipeline_collect(&mut self) -> Vec<(u64, RlsResult<Response>)> {
        self.completed.drain(..).collect()
    }

    /// Flushes the window and takes every result:
    /// [`RlsClient::pipeline_flush`] + [`RlsClient::pipeline_collect`].
    pub fn pipeline_drain(&mut self) -> RlsResult<Vec<(u64, RlsResult<Response>)>> {
        self.pipeline_flush()?;
        Ok(self.pipeline_collect())
    }

    /// Like [`ensure_conn`](Self::ensure_conn), but when the connection
    /// was lost with requests still in flight, the redial goes through
    /// the recover path so those frames are replayed (or failed) before
    /// anything new rides the fresh connection.
    fn ensure_pipeline_conn(&mut self) -> RlsResult<()> {
        if self.conn.is_none() && self.pipe.in_flight() > 0 {
            let cause = RlsError::new(ErrorCode::Io, "connection lost with requests in flight");
            self.pipeline_recover(cause)?;
        }
        self.ensure_conn()
    }

    /// Receives one pipelined response and resolves it into `completed`.
    /// Transport faults go through reconnect-and-replay; a poisoned
    /// stream (unmatched ID, garbage frame) fails the whole window
    /// deterministically. Either way, every submitted request eventually
    /// resolves — this function only errors on internal misuse.
    fn pipeline_receive_one(&mut self) -> RlsResult<()> {
        loop {
            if self.pipe.in_flight() == 0 {
                return Ok(());
            }
            if self.conn.is_none() {
                // A previous failure tore the connection down with
                // requests still in flight; recover (replay) first.
                let cause = RlsError::new(ErrorCode::Io, "connection lost with requests in flight");
                self.pipeline_recover(cause)?;
                continue;
            }
            let conn = self.conn.as_mut().expect("checked above");
            let frame = match conn.recv() {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    self.conn = None;
                    let cause = RlsError::new(
                        ErrorCode::Io,
                        "connection closed with requests in flight",
                    );
                    self.pipeline_recover(cause)?;
                    continue;
                }
                Err(e) => {
                    self.conn = None;
                    if Self::is_transport(&e) {
                        self.pipeline_recover(e)?;
                        continue;
                    }
                    self.pipeline_fail_all(&e);
                    return Ok(());
                }
            };
            match Response::decode_framed(&frame) {
                Ok((got, resp)) => {
                    // An un-stamped response is valid only in lockstep:
                    // with exactly one request outstanding it can only
                    // answer that one (the depth-1 / legacy-peer path,
                    // where requests carry no ID either).
                    let id = match got {
                        Some(id) => id,
                        None if self.pipe.in_flight() == 1 => {
                            self.pipe.oldest_id().expect("one in flight")
                        }
                        None => {
                            let e = RlsError::protocol(
                                "pipelined response carries no request id",
                            );
                            self.conn = None;
                            self.pipeline_fail_all(&e);
                            return Ok(());
                        }
                    };
                    if let Err(e) = self.pipe.complete(id) {
                        // An ID we never sent: the stream cannot be
                        // trusted to route any further response.
                        self.conn = None;
                        self.pipeline_fail_all(&e);
                        return Ok(());
                    }
                    let entry = match resp {
                        Response::Error(e) => (id, Err(e)),
                        other => (id, Ok(other)),
                    };
                    self.completed.push_back(entry);
                    return Ok(());
                }
                Err(e) => {
                    self.conn = None;
                    self.pipeline_fail_all(&e);
                    return Ok(());
                }
            }
        }
    }

    /// Reconnects under the retry policy and replays every in-flight
    /// frame in submission order. When retries are exhausted (or the
    /// failure is not transport-level), the whole window fails as a
    /// unit — deterministically, not request-by-request.
    fn pipeline_recover(&mut self, cause: RlsError) -> RlsResult<()> {
        let mut cause = cause;
        let mut attempt = 0u32;
        loop {
            if !Self::is_transport(&cause) || attempt >= self.policy.max_retries {
                self.pipeline_fail_all(&cause);
                return Ok(());
            }
            self.note_retry(attempt);
            attempt += 1;
            match self.ensure_conn() {
                Ok(()) => {
                    let frames: Vec<Vec<u8>> =
                        self.pipe.replayable().map(|(_, f)| f.to_vec()).collect();
                    let conn = self.conn.as_mut().expect("connected after ensure_conn");
                    let mut failed = None;
                    for frame in &frames {
                        if let Err(e) = conn.send(frame) {
                            failed = Some(e);
                            break;
                        }
                    }
                    match failed {
                        None => {
                            self.pipe.note_replayed();
                            return Ok(());
                        }
                        Some(e) => {
                            self.conn = None;
                            cause = e;
                        }
                    }
                }
                Err(e) => cause = e,
            }
        }
    }

    /// Fails every in-flight request with a copy of `cause`, surfacing
    /// each as an `Err` entry in completion order (= submission order).
    fn pipeline_fail_all(&mut self, cause: &RlsError) {
        for id in self.pipe.fail_all() {
            self.completed.push_back((
                id,
                Err(RlsError::new(
                    cause.code(),
                    format!("pipelined request {id} failed: {cause}"),
                )),
            ));
        }
    }

    fn mint_trace_id(&mut self) -> u64 {
        let n = self.next_trace;
        self.next_trace += 1;
        nonzero_id(mix64(self.trace_seed.wrapping_add(n)))
    }

    /// Trace ID the most recent call was sent under (0 before any call or
    /// after an explicitly untraced one).
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    fn expect_ok(&mut self, req: &Request) -> RlsResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(RlsError::protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    fn expect_ok_framed(
        &mut self,
        req: &Request,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
    ) -> RlsResult<()> {
        match self.call_framed(req, trace_ids, stamp)? {
            Response::Ok => Ok(()),
            other => Err(RlsError::protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> RlsResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(RlsError::protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    // -- mapping management ---------------------------------------------------

    /// Registers a new logical name with its first replica mapping.
    pub fn create_mapping(&mut self, lfn: &str, target: &str) -> RlsResult<()> {
        self.expect_ok(&Request::Create(Mapping::new(lfn, target)?))
    }

    /// Adds a replica mapping to an existing logical name.
    pub fn add_mapping(&mut self, lfn: &str, target: &str) -> RlsResult<()> {
        self.expect_ok(&Request::Add(Mapping::new(lfn, target)?))
    }

    /// Deletes one mapping.
    pub fn delete_mapping(&mut self, lfn: &str, target: &str) -> RlsResult<()> {
        self.expect_ok(&Request::Delete(Mapping::new(lfn, target)?))
    }

    fn bulk_call(&mut self, req: &Request) -> RlsResult<Vec<(u32, RlsError)>> {
        match self.call(req)? {
            Response::BulkStatus(failures) => Ok(failures),
            other => Err(RlsError::protocol(format!(
                "expected BulkStatus, got {other:?}"
            ))),
        }
    }

    /// Bulk create; returns `(index, error)` for failed items.
    pub fn bulk_create(&mut self, mappings: Vec<Mapping>) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkCreate(mappings))
    }

    /// Bulk add.
    pub fn bulk_add(&mut self, mappings: Vec<Mapping>) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkAdd(mappings))
    }

    /// Bulk delete.
    pub fn bulk_delete(&mut self, mappings: Vec<Mapping>) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkDelete(mappings))
    }

    // -- queries ---------------------------------------------------------------

    /// Replica targets for a logical name.
    pub fn query_lfn(&mut self, lfn: &str) -> RlsResult<Vec<String>> {
        match self.call(&Request::QueryLfn(lfn.to_owned()))? {
            Response::Targets(t) => Ok(t),
            other => Err(RlsError::protocol(format!("expected Targets, got {other:?}"))),
        }
    }

    /// Logical names for a target name.
    pub fn query_pfn(&mut self, pfn: &str) -> RlsResult<Vec<String>> {
        match self.call(&Request::QueryPfn(pfn.to_owned()))? {
            Response::Logicals(l) => Ok(l),
            other => Err(RlsError::protocol(format!(
                "expected Logicals, got {other:?}"
            ))),
        }
    }

    /// Bulk logical-name query.
    pub fn bulk_query_lfn(
        &mut self,
        names: Vec<String>,
    ) -> RlsResult<BulkLfnResults> {
        match self.call(&Request::BulkQueryLfn(names))? {
            Response::BulkLfnResults(r) => Ok(r),
            other => Err(RlsError::protocol(format!(
                "expected BulkLfnResults, got {other:?}"
            ))),
        }
    }

    /// Wildcard query over logical names.
    pub fn wildcard_query_lfn(&mut self, pattern: &str, limit: u32) -> RlsResult<Vec<Mapping>> {
        match self.call(&Request::WildcardQueryLfn {
            pattern: pattern.to_owned(),
            limit,
        })? {
            Response::Mappings(m) => Ok(m),
            other => Err(RlsError::protocol(format!(
                "expected Mappings, got {other:?}"
            ))),
        }
    }

    /// Wildcard query over target names.
    pub fn wildcard_query_pfn(&mut self, pattern: &str, limit: u32) -> RlsResult<Vec<Mapping>> {
        match self.call(&Request::WildcardQueryPfn {
            pattern: pattern.to_owned(),
            limit,
        })? {
            Response::Mappings(m) => Ok(m),
            other => Err(RlsError::protocol(format!(
                "expected Mappings, got {other:?}"
            ))),
        }
    }

    // -- attributes --------------------------------------------------------------

    /// Defines an attribute.
    pub fn define_attribute(&mut self, def: AttributeDef) -> RlsResult<()> {
        self.expect_ok(&Request::DefineAttr(def))
    }

    /// Removes an attribute definition.
    pub fn undefine_attribute(
        &mut self,
        name: &str,
        objtype: ObjectType,
        clear_values: bool,
    ) -> RlsResult<()> {
        self.expect_ok(&Request::UndefineAttr {
            name: name.to_owned(),
            objtype,
            clear_values,
        })
    }

    /// Attaches an attribute value to an object.
    pub fn add_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        name: &str,
        value: AttrValue,
    ) -> RlsResult<()> {
        self.expect_ok(&Request::AddAttr(AttrAssignment {
            obj: obj.to_owned(),
            objtype,
            name: name.to_owned(),
            value,
        }))
    }

    /// Replaces an attribute value.
    pub fn modify_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        name: &str,
        value: AttrValue,
    ) -> RlsResult<()> {
        self.expect_ok(&Request::ModifyAttr(AttrAssignment {
            obj: obj.to_owned(),
            objtype,
            name: name.to_owned(),
            value,
        }))
    }

    /// Detaches an attribute value.
    pub fn remove_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        name: &str,
    ) -> RlsResult<()> {
        self.expect_ok(&Request::RemoveAttr {
            obj: obj.to_owned(),
            objtype,
            name: name.to_owned(),
        })
    }

    /// Reads attributes of an object.
    pub fn get_attributes(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        name: Option<&str>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        match self.call(&Request::GetAttrs {
            obj: obj.to_owned(),
            objtype,
            name: name.map(str::to_owned),
        })? {
            Response::Attrs(a) => Ok(a),
            other => Err(RlsError::protocol(format!("expected Attrs, got {other:?}"))),
        }
    }

    /// Searches objects by attribute value.
    pub fn search_attribute(
        &mut self,
        name: &str,
        objtype: ObjectType,
        op: AttrCompare,
        operand: Option<AttrValue>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        match self.call(&Request::SearchAttr {
            name: name.to_owned(),
            objtype,
            op,
            operand,
        })? {
            Response::Attrs(a) => Ok(a),
            other => Err(RlsError::protocol(format!("expected Attrs, got {other:?}"))),
        }
    }

    /// Bulk attribute attach.
    pub fn bulk_add_attributes(
        &mut self,
        items: Vec<AttrAssignment>,
    ) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkAddAttr(items))
    }

    /// Bulk attribute replace.
    pub fn bulk_modify_attributes(
        &mut self,
        items: Vec<AttrAssignment>,
    ) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkModifyAttr(items))
    }

    /// Bulk attribute detach.
    pub fn bulk_remove_attributes(
        &mut self,
        items: Vec<(String, ObjectType, String)>,
    ) -> RlsResult<Vec<(u32, RlsError)>> {
        self.bulk_call(&Request::BulkRemoveAttr(items))
    }

    // -- LRC management ----------------------------------------------------------

    /// Adds an RLI to the LRC's update list.
    pub fn add_rli(&mut self, name: &str, flags: i64, patterns: Vec<String>) -> RlsResult<()> {
        self.expect_ok(&Request::AddRli {
            name: name.to_owned(),
            flags,
            patterns,
        })
    }

    /// Removes an RLI from the update list.
    pub fn remove_rli(&mut self, name: &str) -> RlsResult<()> {
        self.expect_ok(&Request::RemoveRli {
            name: name.to_owned(),
        })
    }

    /// Lists RLIs on the update list.
    pub fn list_rlis(&mut self) -> RlsResult<Vec<RliTargetWire>> {
        match self.call(&Request::ListRlis)? {
            Response::Rlis(r) => Ok(r),
            other => Err(RlsError::protocol(format!("expected Rlis, got {other:?}"))),
        }
    }

    // -- RLI operations ------------------------------------------------------------

    /// Which LRCs hold mappings for a logical name.
    pub fn rli_query_lfn(&mut self, lfn: &str) -> RlsResult<Vec<RliHit>> {
        match self.call(&Request::RliQueryLfn(lfn.to_owned()))? {
            Response::RliHits(h) => Ok(h),
            other => Err(RlsError::protocol(format!(
                "expected RliHits, got {other:?}"
            ))),
        }
    }

    /// Bulk RLI query.
    pub fn rli_bulk_query_lfn(
        &mut self,
        names: Vec<String>,
    ) -> RlsResult<BulkRliResults> {
        match self.call(&Request::RliBulkQueryLfn(names))? {
            Response::RliBulkResults(r) => Ok(r),
            other => Err(RlsError::protocol(format!(
                "expected RliBulkResults, got {other:?}"
            ))),
        }
    }

    /// Wildcard RLI query (uncompressed mode only).
    pub fn rli_wildcard_query(
        &mut self,
        pattern: &str,
        limit: u32,
    ) -> RlsResult<Vec<(String, String)>> {
        match self.call(&Request::RliWildcardQuery {
            pattern: pattern.to_owned(),
            limit,
        })? {
            Response::RliPairs(p) => Ok(p),
            other => Err(RlsError::protocol(format!(
                "expected RliPairs, got {other:?}"
            ))),
        }
    }

    /// LRCs updating this RLI.
    pub fn rli_list_lrcs(&mut self) -> RlsResult<Vec<String>> {
        match self.call(&Request::RliListLrcs)? {
            Response::Names(n) => Ok(n),
            other => Err(RlsError::protocol(format!("expected Names, got {other:?}"))),
        }
    }

    // -- soft-state updates ---------------------------------------------------------

    /// Sends one chunk of an uncompressed full update.
    pub fn send_full_chunk(
        &mut self,
        lrc: &str,
        update_id: u64,
        seq: u32,
        last: bool,
        lfns: Vec<String>,
    ) -> RlsResult<()> {
        self.send_full_chunk_traced(lrc, update_id, seq, last, lfns, &[])
    }

    /// Full-update chunk attributed to the given trace IDs.
    pub fn send_full_chunk_traced(
        &mut self,
        lrc: &str,
        update_id: u64,
        seq: u32,
        last: bool,
        lfns: Vec<String>,
        trace_ids: &[u64],
    ) -> RlsResult<()> {
        self.send_full_chunk_framed(lrc, update_id, seq, last, lfns, trace_ids, None)
    }

    /// Full-update chunk with trace IDs and an optional freshness stamp
    /// (the updater attaches one to the final chunk of a stream).
    #[allow(clippy::too_many_arguments)]
    pub fn send_full_chunk_framed(
        &mut self,
        lrc: &str,
        update_id: u64,
        seq: u32,
        last: bool,
        lfns: Vec<String>,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
    ) -> RlsResult<()> {
        self.expect_ok_framed(
            &Request::SoftStateFull {
                lrc: lrc.to_owned(),
                update_id,
                seq,
                last,
                lfns,
            },
            trace_ids,
            stamp,
        )
    }

    /// Sends an incremental (immediate-mode) update.
    pub fn send_delta(
        &mut self,
        lrc: &str,
        added: Vec<String>,
        removed: Vec<String>,
    ) -> RlsResult<()> {
        self.send_delta_traced(lrc, added, removed, &[])
    }

    /// Incremental update carrying the originating trace IDs, so the RLI's
    /// apply spans land in the same traces as the client mutations.
    pub fn send_delta_traced(
        &mut self,
        lrc: &str,
        added: Vec<String>,
        removed: Vec<String>,
        trace_ids: &[u64],
    ) -> RlsResult<()> {
        self.send_delta_framed(lrc, added, removed, trace_ids, None)
    }

    /// Incremental update with trace IDs and an optional freshness stamp.
    pub fn send_delta_framed(
        &mut self,
        lrc: &str,
        added: Vec<String>,
        removed: Vec<String>,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
    ) -> RlsResult<()> {
        self.expect_ok_framed(
            &Request::SoftStateDelta {
                lrc: lrc.to_owned(),
                added,
                removed,
            },
            trace_ids,
            stamp,
        )
    }

    /// Ships a Bloom-filter summary.
    pub fn send_bloom(&mut self, lrc: &str, filter: &BloomFilter) -> RlsResult<()> {
        self.send_bloom_traced(lrc, filter, &[])
    }

    /// Bloom summary attributed to the given trace IDs.
    pub fn send_bloom_traced(
        &mut self,
        lrc: &str,
        filter: &BloomFilter,
        trace_ids: &[u64],
    ) -> RlsResult<()> {
        self.send_bloom_framed(lrc, filter, trace_ids, None)
    }

    /// Bloom summary with trace IDs and an optional freshness stamp.
    pub fn send_bloom_framed(
        &mut self,
        lrc: &str,
        filter: &BloomFilter,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
    ) -> RlsResult<()> {
        self.expect_ok_framed(&Request::bloom_to_wire(lrc, filter), trace_ids, stamp)
    }

    // -- admin -------------------------------------------------------------------------

    /// Fetches server statistics.
    pub fn stats(&mut self) -> RlsResult<ServerStatsWire> {
        match self.call(&Request::Stats)? {
            Response::StatsReport(s) => Ok(s),
            other => Err(RlsError::protocol(format!(
                "expected StatsReport, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's flight-recorder history: samples with
    /// `seq > since_seq`, newest-`limit` capped (`limit` 0 = everything
    /// retained). Poll with the last seen `seq` as the cursor to stream
    /// increments.
    pub fn stats_history(&mut self, since_seq: u64, limit: u32) -> RlsResult<StatsHistoryWire> {
        match self.call(&Request::StatsHistory { since_seq, limit })? {
            Response::StatsHistoryReport(h) => Ok(h),
            other => Err(RlsError::protocol(format!(
                "expected StatsHistoryReport, got {other:?}"
            ))),
        }
    }

    /// Queries the server's span journal. All filter clauses are ANDed:
    /// `trace_id` 0 matches any trace, an empty `op_prefix` matches every
    /// op, `limit` 0 returns everything retained.
    pub fn trace_query(
        &mut self,
        trace_id: u64,
        op_prefix: &str,
        min_duration_micros: u64,
        limit: u32,
    ) -> RlsResult<Vec<SpanWire>> {
        match self.call(&Request::TraceQuery {
            trace_id,
            op_prefix: op_prefix.to_owned(),
            min_duration_micros,
            limit,
        })? {
            Response::Spans(s) => Ok(s),
            other => Err(RlsError::protocol(format!("expected Spans, got {other:?}"))),
        }
    }
}
