/root/repo/target/debug/deps/fig04_lrc_add_flush-88c94fd81a0ea5ff.d: crates/bench/benches/fig04_lrc_add_flush.rs

/root/repo/target/debug/deps/fig04_lrc_add_flush-88c94fd81a0ea5ff: crates/bench/benches/fig04_lrc_add_flush.rs

crates/bench/benches/fig04_lrc_add_flush.rs:
