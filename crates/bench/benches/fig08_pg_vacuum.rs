//! **Figure 8** — Performance during add and delete tests against a
//! PostgreSQL back end with `fsync()` disabled, database size 110 K
//! mappings.
//!
//! Paper result: a saw-tooth. Each trial adds 10 000 mappings and deletes
//! them again; dead tuples accumulate in heap and indexes, so the add rate
//! decays trial over trial until a `VACUUM` after 10 trials (100 000
//! operations) restores it to the maximum.
//!
//! Our PostgreSQL-like profile reproduces the mechanism for real: deletes
//! leave tombstones that index probes and uniqueness checks must skip;
//! `vacuum()` reclaims them (see `rls-storage::table`).

use rls_bench::{banner, header, row, start_lrc, Scale};
use rls_storage::BackendProfile;
use rls_workload::{drive, preload_lrc, NameGen};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 8",
        "PostgreSQL-like saw-tooth: add rate vs trials, vacuum every N trials",
        &scale,
    );
    let preload = scale.pick(11_000, 110_000);
    let per_trial = scale.pick(1_000, 10_000) as usize;
    let trials_per_cycle = 10usize;
    let cycles = 2usize;
    println!(
        "    preload: {preload} mappings; {per_trial} adds+deletes per trial; vacuum every {trials_per_cycle} trials"
    );
    header(&["threads", "trial", "adds/s", "dead tuples", "event"]);

    for threads in [1usize, 2, 4] {
        let server = start_lrc(BackendProfile::postgres_buffered());
        let gen = NameGen::new("fig08");
        preload_lrc(&server, &gen, preload).expect("preload");
        let tgen = NameGen::new("fig08-trial");
        let per_thread = per_trial.div_ceil(threads);
        for cycle in 0..cycles {
            for trial in 0..trials_per_cycle {
                // The SAME names are re-added every trial (the paper adds
                // and deletes 10k mappings repeatedly), so each name's
                // index postings accumulate one dead entry per trial.
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        let idx = (t * per_thread + i) as u64;
                        c.create_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
                    },
                )
                .expect("adds");
                assert_eq!(report.errors, 0);
                drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        let idx = (t * per_thread + i) as u64;
                        c.delete_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
                    },
                )
                .expect("deletes");
                let dead = server.lrc().expect("lrc").catalog().dead_tuples();
                row(&[
                    threads.to_string(),
                    format!("{}", cycle * trials_per_cycle + trial + 1),
                    format!("{:.0}", report.rate()),
                    dead.to_string(),
                    String::new(),
                ]);
            }
            let reclaimed = server.lrc().expect("lrc").catalog().vacuum().expect("vacuum");
            row(&[
                threads.to_string(),
                "-".into(),
                "-".into(),
                "0".into(),
                format!("VACUUM reclaimed {reclaimed}"),
            ]);
        }
    }
    println!("\n    expected shape: add rate decays within each cycle, snaps back after VACUUM");
}
