/root/repo/target/release/deps/fig04_lrc_add_flush-281baeafcdf0082f.d: crates/bench/benches/fig04_lrc_add_flush.rs

/root/repo/target/release/deps/fig04_lrc_add_flush-281baeafcdf0082f: crates/bench/benches/fig04_lrc_add_flush.rs

crates/bench/benches/fig04_lrc_add_flush.rs:
