/root/repo/target/debug/examples/wan_replication-60d174e7210f0957.d: examples/wan_replication.rs

/root/repo/target/debug/examples/wan_replication-60d174e7210f0957: examples/wan_replication.rs

examples/wan_replication.rs:
