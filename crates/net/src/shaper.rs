//! Link shaping: RTT and bandwidth emulation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Emulated link characteristics for one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkProfile {
    /// Round-trip time; half is charged to each direction of a frame
    /// exchange.
    pub rtt: Duration,
    /// Per-connection serialization bandwidth in bits/second. `None`
    /// disables bandwidth accounting (only RTT applies).
    pub bandwidth_bps: Option<u64>,
}

impl LinkProfile {
    /// No shaping at all: loopback behaves as itself.
    pub const fn unshaped() -> Self {
        Self {
            rtt: Duration::ZERO,
            bandwidth_bps: None,
        }
    }

    /// The paper's LAN: 100 Mbit/s Ethernet, sub-millisecond RTT.
    pub const fn lan_100mbit() -> Self {
        Self {
            rtt: Duration::from_micros(200),
            bandwidth_bps: Some(100_000_000),
        }
    }

    /// The paper's WAN (Los Angeles → Chicago): 63.8 ms mean RTT. The
    /// effective per-flow throughput implied by Table 3 (a 10 Mbit filter
    /// in 1.67 s, a 50 Mbit filter in 6.8 s) is ≈7 Mbit/s — TCP on a 2003
    /// transcontinental path, not the raw link rate.
    pub const fn wan_la_chicago() -> Self {
        Self {
            rtt: Duration::from_micros(63_800),
            bandwidth_bps: Some(7_400_000),
        }
    }

    /// True if this profile performs no shaping.
    pub fn is_unshaped(&self) -> bool {
        self.rtt.is_zero() && self.bandwidth_bps.is_none()
    }

    /// Serialization delay for `bytes` at this profile's bandwidth.
    pub fn serialization_delay(&self, bytes: usize) -> Duration {
        match self.bandwidth_bps {
            Some(bps) if bps > 0 => Duration::from_secs_f64(bytes as f64 * 8.0 / bps as f64),
            _ => Duration::ZERO,
        }
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self::unshaped()
    }
}

/// A shared bandwidth pool modelling a server's ingress link.
///
/// Transfers acquire transmission windows FIFO: with `k` senders offering
/// continuous load, each sees ≈`1/k` of the pool — the contention that
/// bends the curve in the paper's Fig. 13.
#[derive(Clone, Debug)]
pub struct SharedIngress {
    inner: Arc<IngressInner>,
}

#[derive(Debug)]
struct IngressInner {
    bps: u64,
    next_free: Mutex<Instant>,
    bytes_total: Mutex<u64>,
}

impl SharedIngress {
    /// Creates a pool with the given total bandwidth (bits/second).
    pub fn new(bps: u64) -> Self {
        assert!(bps > 0, "ingress bandwidth must be positive");
        Self {
            inner: Arc::new(IngressInner {
                bps,
                next_free: Mutex::new(Instant::now()),
                bytes_total: Mutex::new(0),
            }),
        }
    }

    /// Pool bandwidth in bits/second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.inner.bps
    }

    /// Total bytes that have passed through the pool.
    pub fn bytes_transferred(&self) -> u64 {
        *self.inner.bytes_total.lock()
    }

    /// Reserves a transmission window for `bytes` and returns its
    /// completion deadline. The caller sleeps until the deadline.
    pub fn acquire(&self, bytes: usize) -> Instant {
        let dur = Duration::from_secs_f64(bytes as f64 * 8.0 / self.inner.bps as f64);
        let mut next = self.inner.next_free.lock();
        let start = (*next).max(Instant::now());
        let done = start + dur;
        *next = done;
        *self.inner.bytes_total.lock() += bytes as u64;
        done
    }

    /// Acquires and sleeps until the window completes.
    pub fn transfer(&self, bytes: usize) {
        let deadline = self.acquire(bytes);
        sleep_until(deadline);
    }
}

/// Sleeps until `deadline` (no-op if already past).
///
/// `thread::sleep` can overshoot by several milliseconds under a 100 Hz
/// kernel tick; for link emulation that error would dwarf a LAN RTT, so we
/// sleep short and spin the final stretch.
pub fn sleep_until(deadline: Instant) {
    const SPIN_SLACK: Duration = Duration::from_micros(1500);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_SLACK {
            std::thread::sleep(remaining - SPIN_SLACK);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Per-connection transmission cursor: frames queue behind one another.
#[derive(Debug)]
pub struct ConnCursor {
    next_free: Instant,
}

impl ConnCursor {
    /// Fresh cursor (link idle).
    pub fn new() -> Self {
        Self {
            next_free: Instant::now(),
        }
    }

    /// Reserves a window for `bytes` at `profile`'s bandwidth, returning
    /// the completion deadline.
    pub fn acquire(&mut self, profile: &LinkProfile, bytes: usize) -> Instant {
        let dur = profile.serialization_delay(bytes);
        let start = self.next_free.max(Instant::now());
        let done = start + dur;
        self.next_free = done;
        done
    }
}

impl Default for ConnCursor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_presets() {
        assert!(LinkProfile::unshaped().is_unshaped());
        assert!(!LinkProfile::lan_100mbit().is_unshaped());
        let wan = LinkProfile::wan_la_chicago();
        assert_eq!(wan.rtt, Duration::from_micros(63_800));
    }

    #[test]
    fn serialization_delay_math() {
        let lan = LinkProfile::lan_100mbit();
        // 12.5 MB at 100 Mbit/s = 1 s.
        let d = lan.serialization_delay(12_500_000);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(LinkProfile::unshaped().serialization_delay(1 << 20), Duration::ZERO);
    }

    #[test]
    fn paper_bloom_filter_transfer_times() {
        // Table 3: 10M-bit filter ≈1.67 s, 50M-bit ≈6.8 s over the WAN.
        let wan = LinkProfile::wan_la_chicago();
        let t_1m = wan.serialization_delay(10_000_000 / 8).as_secs_f64();
        let t_5m = wan.serialization_delay(50_000_000 / 8).as_secs_f64();
        assert!((1.0..2.5).contains(&t_1m), "t_1m={t_1m}");
        assert!((5.5..8.5).contains(&t_5m), "t_5m={t_5m}");
    }

    #[test]
    fn shared_ingress_serializes_transfers() {
        // 1 Mbit/s pool; two transfers of 12_500 bytes (0.1 s each) from
        // two threads must take ≈0.2 s wall clock in total.
        let pool = SharedIngress::new(1_000_000);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = pool.clone();
                s.spawn(move || pool.transfer(12_500));
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        assert!((0.18..0.5).contains(&elapsed), "elapsed={elapsed}");
        assert_eq!(pool.bytes_transferred(), 25_000);
    }

    #[test]
    fn conn_cursor_queues_back_to_back_frames() {
        let lan = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: Some(1_000_000),
        };
        let mut cur = ConnCursor::new();
        let t0 = Instant::now();
        let d1 = cur.acquire(&lan, 12_500); // 0.1 s
        let d2 = cur.acquire(&lan, 12_500); // queued: +0.1 s
        assert!(d2 >= d1 + Duration::from_millis(95));
        assert!(d2 >= t0 + Duration::from_millis(190));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_pool_rejected() {
        SharedIngress::new(0);
    }
}
