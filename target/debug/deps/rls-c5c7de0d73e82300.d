/root/repo/target/debug/deps/rls-c5c7de0d73e82300.d: src/lib.rs

/root/repo/target/debug/deps/librls-c5c7de0d73e82300.rlib: src/lib.rs

/root/repo/target/debug/deps/librls-c5c7de0d73e82300.rmeta: src/lib.rs

src/lib.rs:
