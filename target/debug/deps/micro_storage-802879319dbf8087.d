/root/repo/target/debug/deps/micro_storage-802879319dbf8087.d: crates/bench/benches/micro_storage.rs

/root/repo/target/debug/deps/micro_storage-802879319dbf8087: crates/bench/benches/micro_storage.rs

crates/bench/benches/micro_storage.rs:
