/root/repo/target/release/deps/micro_pattern-2af9abc0b4ba7d81.d: crates/bench/benches/micro_pattern.rs

/root/repo/target/release/deps/micro_pattern-2af9abc0b4ba7d81: crates/bench/benches/micro_pattern.rs

crates/bench/benches/micro_pattern.rs:
