/root/repo/target/debug/deps/rls_bloom-1078502d3449732d.d: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/debug/deps/librls_bloom-1078502d3449732d.rmeta: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

crates/bloom/src/lib.rs:
crates/bloom/src/counting.rs:
crates/bloom/src/filter.rs:
crates/bloom/src/hash.rs:
crates/bloom/src/params.rs:
