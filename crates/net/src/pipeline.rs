//! Client-side request pipelining state.
//!
//! A [`Pipeline`] tracks the requests a client has written to a
//! connection but not yet seen answered: a bounded window of
//! `(request-id, encoded frame)` pairs. The transport stays plain
//! framed TCP — ordering metadata travels *in* each frame (the
//! request-ID envelope of `rls-proto`), so the pipeline itself is
//! transport-agnostic: it never touches a socket, which is what makes
//! its replay and failure semantics unit-testable without a server.
//!
//! The retained frame bytes are what make reconnects deterministic: on
//! a broken connection every in-flight request is either **replayed**
//! verbatim, in original submission order, onto the new connection, or
//! **failed** as a unit — never half of each, and never reordered.
//!
//! Depth 1 degenerates to lockstep: one frame in flight, completed
//! before the next is submitted — the legacy request/response cycle.

use std::collections::VecDeque;

use rls_types::{RlsError, RlsResult};

/// Bounded in-flight request window for one connection.
#[derive(Debug)]
pub struct Pipeline {
    depth: usize,
    next_id: u64,
    inflight: VecDeque<(u64, Vec<u8>)>,
    submitted: u64,
    completed: u64,
    replayed: u64,
    failed: u64,
}

impl Pipeline {
    /// Creates a pipeline with the given window size (clamped to ≥ 1).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            next_id: 1,
            inflight: VecDeque::new(),
            submitted: 0,
            completed: 0,
            replayed: 0,
            failed: 0,
        }
    }

    /// The window size.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of submitted-but-unanswered requests.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether another request may be submitted without first draining
    /// a response.
    pub fn has_capacity(&self) -> bool {
        self.inflight.len() < self.depth
    }

    /// Allocates the next request ID. IDs are per-connection,
    /// monotonically increasing from 1, and never reused — an ID is
    /// unambiguous for the connection's lifetime, so a response echoing
    /// an unknown ID is always a protocol violation, not a stale match.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Records a submitted request: its ID and the exact frame bytes
    /// written to the wire (retained for replay-on-reconnect).
    pub fn record(&mut self, id: u64, frame: Vec<u8>) {
        self.submitted += 1;
        self.inflight.push_back((id, frame));
    }

    /// Completes the in-flight request matching `id`. Responses may
    /// arrive in any order; an ID with no matching in-flight request is
    /// a protocol error.
    pub fn complete(&mut self, id: u64) -> RlsResult<()> {
        match self.inflight.iter().position(|(i, _)| *i == id) {
            Some(idx) => {
                self.inflight.remove(idx);
                self.completed += 1;
                Ok(())
            }
            None => Err(RlsError::protocol(format!(
                "response echoes unknown request id {id}"
            ))),
        }
    }

    /// The ID of the oldest in-flight request, if any.
    pub fn oldest_id(&self) -> Option<u64> {
        self.inflight.front().map(|(id, _)| *id)
    }

    /// In-flight `(id, frame)` pairs in original submission order, for
    /// replaying onto a fresh connection after a reconnect.
    pub fn replayable(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.inflight.iter().map(|(id, f)| (*id, f.as_slice()))
    }

    /// Counts one full-window replay (called once per reconnect that
    /// re-sent the in-flight frames).
    pub fn note_replayed(&mut self) {
        self.replayed += self.inflight.len() as u64;
    }

    /// Fails every in-flight request as a unit, returning their IDs in
    /// submission order so the caller can surface a deterministic error
    /// per request. Used when reconnect retries are exhausted.
    pub fn fail_all(&mut self) -> Vec<u64> {
        self.failed += self.inflight.len() as u64;
        self.inflight.drain(..).map(|(id, _)| id).collect()
    }

    /// Lifetime count of submitted requests.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Lifetime count of completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Lifetime count of request replays after reconnects.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Lifetime count of requests failed by exhausted reconnects.
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_fills_and_drains_out_of_order() {
        let mut p = Pipeline::new(3);
        assert!(p.has_capacity());
        let a = p.next_id();
        let b = p.next_id();
        let c = p.next_id();
        assert_eq!((a, b, c), (1, 2, 3));
        p.record(a, vec![1]);
        p.record(b, vec![2]);
        p.record(c, vec![3]);
        assert!(!p.has_capacity());
        // Middle request completes first — out-of-order is fine.
        p.complete(b).unwrap();
        assert!(p.has_capacity());
        assert_eq!(p.oldest_id(), Some(a));
        p.complete(c).unwrap();
        p.complete(a).unwrap();
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.submitted(), 3);
        assert_eq!(p.completed(), 3);
    }

    #[test]
    fn unknown_id_is_protocol_error() {
        let mut p = Pipeline::new(2);
        let id = p.next_id();
        p.record(id, vec![0]);
        let err = p.complete(99).unwrap_err();
        assert!(err.to_string().contains("unknown request id 99"), "{err}");
        // Completing twice is the same violation.
        p.complete(id).unwrap();
        assert!(p.complete(id).is_err());
    }

    #[test]
    fn replay_preserves_submission_order_and_bytes() {
        let mut p = Pipeline::new(4);
        for body in [b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()] {
            let id = p.next_id();
            p.record(id, body);
        }
        p.complete(2).unwrap();
        let replay: Vec<_> = p.replayable().map(|(id, f)| (id, f.to_vec())).collect();
        assert_eq!(replay, vec![(1, b"aa".to_vec()), (3, b"cc".to_vec())]);
        p.note_replayed();
        assert_eq!(p.replayed(), 2);
    }

    #[test]
    fn fail_all_drains_deterministically() {
        let mut p = Pipeline::new(4);
        for _ in 0..3 {
            let id = p.next_id();
            p.record(id, vec![]);
        }
        assert_eq!(p.fail_all(), vec![1, 2, 3]);
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.failed(), 3);
        // IDs are never reused, even after a full failure.
        assert_eq!(p.next_id(), 4);
    }

    #[test]
    fn depth_one_is_lockstep() {
        let mut p = Pipeline::new(1);
        let id = p.next_id();
        p.record(id, vec![7]);
        assert!(!p.has_capacity());
        p.complete(id).unwrap();
        assert!(p.has_capacity());
    }

    #[test]
    fn depth_zero_clamps_to_one() {
        assert_eq!(Pipeline::new(0).depth(), 1);
    }
}
