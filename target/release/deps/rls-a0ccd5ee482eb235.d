/root/repo/target/release/deps/rls-a0ccd5ee482eb235.d: src/lib.rs

/root/repo/target/release/deps/rls-a0ccd5ee482eb235: src/lib.rs

src/lib.rs:
