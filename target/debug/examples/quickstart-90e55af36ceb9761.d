/root/repo/target/debug/examples/quickstart-90e55af36ceb9761.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-90e55af36ceb9761: examples/quickstart.rs

examples/quickstart.rs:
