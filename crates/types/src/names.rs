//! Logical and target names.
//!
//! A *logical name* (LFN) is a globally unique identifier for some data
//! content that may have one or more replicas. A *target name* (historically
//! "PFN", physical file name) is usually the physical location of one
//! replica — e.g. `gsiftp://host.example.org/data/file0001` — but may be
//! another logical name, allowing logical→logical indirection.
//!
//! Both are thin wrappers around shared, immutable strings. They are interned
//! per-value via `Arc<str>` so that a mapping, its index entries and any
//! in-flight soft-state update share one allocation.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{ErrorCode, RlsError, RlsResult};

/// Maximum length accepted for a logical or target name.
///
/// The paper's schema (Figure 3) stores names as `varchar(250)`; we keep the
/// same bound so bulk-request sizing math stays comparable.
pub const MAX_NAME_LEN: usize = 250;

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a validated name.
            ///
            /// # Errors
            /// Returns [`ErrorCode::InvalidName`] if the string is empty,
            /// longer than [`MAX_NAME_LEN`] bytes, or contains control
            /// characters (which would corrupt the line-oriented tooling the
            /// original RLS shipped with).
            pub fn new(s: impl AsRef<str>) -> RlsResult<Self> {
                let s = s.as_ref();
                validate_name(s, $kind)?;
                Ok(Self(Arc::from(s)))
            }

            /// Creates a name without validation.
            ///
            /// Intended for trusted internal paths (WAL replay, workload
            /// generators that construct names from known-good templates).
            pub fn new_unchecked(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// The name as a string slice.
            #[inline]
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Length of the name in bytes.
            #[inline]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True if the name is empty (never true for validated names).
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Clones the underlying shared string.
            #[inline]
            pub fn shared(&self) -> Arc<str> {
                Arc::clone(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), &*self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl std::str::FromStr for $name {
            type Err = RlsError;
            fn from_str(s: &str) -> RlsResult<Self> {
                Self::new(s)
            }
        }
    };
}

name_type!(
    /// A logical file name (LFN): the location-independent identifier for
    /// data content.
    LogicalName,
    "logical name"
);

name_type!(
    /// A target name: usually the physical location of a replica, or another
    /// logical name when catalogs are chained.
    TargetName,
    "target name"
);

fn validate_name(s: &str, kind: &str) -> RlsResult<()> {
    if s.is_empty() {
        return Err(RlsError::new(
            ErrorCode::InvalidName,
            format!("{kind} must not be empty"),
        ));
    }
    if s.len() > MAX_NAME_LEN {
        return Err(RlsError::new(
            ErrorCode::InvalidName,
            format!("{kind} exceeds {MAX_NAME_LEN} bytes ({} bytes)", s.len()),
        ));
    }
    if s.chars().any(|c| c.is_control()) {
        return Err(RlsError::new(
            ErrorCode::InvalidName,
            format!("{kind} contains control characters"),
        ));
    }
    Ok(())
}

/// A single replica mapping: `logical name → target name`.
///
/// This is the unit clients register with `create`/`add` and the unit the
/// LRC stores in its `t_map` table.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// The logical (content) name.
    pub logical: LogicalName,
    /// The target (replica) name.
    pub target: TargetName,
}

impl Mapping {
    /// Builds a validated mapping from raw strings.
    pub fn new(logical: impl AsRef<str>, target: impl AsRef<str>) -> RlsResult<Self> {
        Ok(Self {
            logical: LogicalName::new(logical)?,
            target: TargetName::new(target)?,
        })
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.logical, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names_round_trip() {
        let lfn = LogicalName::new("lfn://experiment/run42/file0001").unwrap();
        assert_eq!(lfn.as_str(), "lfn://experiment/run42/file0001");
        assert_eq!(lfn.to_string(), "lfn://experiment/run42/file0001");
        assert!(!lfn.is_empty());
    }

    #[test]
    fn empty_name_rejected() {
        let err = LogicalName::new("").unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidName);
    }

    #[test]
    fn oversized_name_rejected() {
        let s = "x".repeat(MAX_NAME_LEN + 1);
        assert!(TargetName::new(&s).is_err());
        let ok = "x".repeat(MAX_NAME_LEN);
        assert!(TargetName::new(&ok).is_ok());
    }

    #[test]
    fn control_chars_rejected() {
        assert!(LogicalName::new("bad\nname").is_err());
        assert!(LogicalName::new("bad\0name").is_err());
        assert!(LogicalName::new("tab\tname").is_err());
    }

    #[test]
    fn names_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = LogicalName::new("a").unwrap();
        let b = LogicalName::new("b").unwrap();
        assert!(a < b);
        let set: HashSet<_> = [a.clone(), b.clone(), a.clone()].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn borrow_str_lookup_works() {
        use std::collections::HashMap;
        let mut m: HashMap<LogicalName, u32> = HashMap::new();
        m.insert(LogicalName::new("k").unwrap(), 7);
        assert_eq!(m.get("k"), Some(&7));
    }

    #[test]
    fn mapping_display() {
        let m = Mapping::new("lfn://a", "pfn://b").unwrap();
        assert_eq!(m.to_string(), "lfn://a -> pfn://b");
    }

    #[test]
    fn unchecked_skips_validation() {
        let lfn = LogicalName::new_unchecked("");
        assert!(lfn.is_empty());
    }

    #[test]
    fn shared_points_to_same_allocation() {
        let lfn = LogicalName::new("lfn://x").unwrap();
        let s = lfn.shared();
        assert!(std::ptr::eq(s.as_ptr(), lfn.as_str().as_ptr()));
    }
}
