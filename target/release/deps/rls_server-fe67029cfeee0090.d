/root/repo/target/release/deps/rls_server-fe67029cfeee0090.d: src/bin/rls-server.rs

/root/repo/target/release/deps/rls_server-fe67029cfeee0090: src/bin/rls-server.rs

src/bin/rls-server.rs:
