/root/repo/target/debug/deps/chaos-b433176ad065f4a4.d: crates/core/tests/chaos.rs

/root/repo/target/debug/deps/chaos-b433176ad065f4a4: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
