//! Server configuration.
//!
//! The original RLS server reads a flat config file (`rls-server.conf`)
//! naming its roles, database DSNs, update targets and ACLs; we expose the
//! same knobs as a builder-style struct. One server may be an LRC, an RLI,
//! or both (§3.1: "our implementation consists of a common server that can
//! be configured as an LRC, an RLI or both").

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rls_bloom::BloomParams;
use rls_net::{FaultHook, LinkProfile, RetryPolicy, SharedIngress};
use rls_storage::BackendProfile;
use rls_types::{AclEntry, Dn};

/// Soft-state update strategy (§3.2–3.5).
#[derive(Clone, Debug)]
pub enum UpdateMode {
    /// No automatic updates (server still accepts manual triggers).
    None,
    /// Periodic uncompressed full updates.
    Full {
        /// Period between full updates.
        interval: Duration,
    },
    /// Immediate mode (§3.3): frequent incremental deltas plus infrequent
    /// full refreshes.
    Immediate {
        /// Delta flush interval (paper default: 30 s).
        delta_interval: Duration,
        /// Flush early after this many buffered LFN changes.
        delta_threshold: usize,
        /// Period between full refreshes (RLI entries expire without them).
        full_interval: Duration,
    },
    /// Bloom-filter compressed updates (§3.4).
    Bloom {
        /// Period between filter pushes.
        interval: Duration,
        /// Filter sizing parameters.
        params: BloomParams,
    },
}

impl UpdateMode {
    /// Immediate mode with the paper's defaults.
    pub fn immediate_default() -> Self {
        Self::Immediate {
            delta_interval: Duration::from_secs(30),
            delta_threshold: 100,
            full_interval: Duration::from_secs(600),
        }
    }

    /// True if this mode ships Bloom filters.
    pub fn is_bloom(&self) -> bool {
        matches!(self, Self::Bloom { .. })
    }
}

/// How the LRC pushes soft state to its RLIs.
#[derive(Clone, Debug)]
pub struct UpdateConfig {
    /// The strategy.
    pub mode: UpdateMode,
    /// Logical names per `SoftStateFull` frame (streaming chunk size).
    pub chunk_size: usize,
    /// Link profile for LRC→RLI connections (LAN/WAN emulation).
    pub link: LinkProfile,
    /// Optional shared ingress pool modelling the RLI's access link.
    pub ingress: Option<SharedIngress>,
    /// Spawn a background thread driving the update schedule.
    pub auto: bool,
    /// Retry/backoff policy for LRC→RLI update connections. The default
    /// ([`RetryPolicy::none`]) fails fast, matching the shipped RLS; set
    /// `retry_max`/`backoff_base_ms` in the config file to enable
    /// failover (§6: RLI contents are rebuilt from soft state, so a
    /// missed update is repaired by the next cycle — retries just shrink
    /// the stale window).
    pub retry: RetryPolicy,
    /// Fault-injection hook installed on every update connection
    /// (testing only; not reachable from the config file).
    pub fault_hook: Option<Arc<dyn FaultHook>>,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            mode: UpdateMode::None,
            chunk_size: 10_000,
            link: LinkProfile::unshaped(),
            ingress: None,
            auto: false,
            retry: RetryPolicy::none(),
            fault_hook: None,
        }
    }
}

/// LRC role configuration.
#[derive(Clone, Debug)]
pub struct LrcConfig {
    /// Database backend profile.
    pub profile: BackendProfile,
    /// WAL path (durable catalogs); `None` keeps the catalog in memory.
    pub wal_path: Option<PathBuf>,
    /// Soft-state update behaviour.
    pub update: UpdateConfig,
    /// Group-commit bulk requests: the whole batch reaches the WAL as one
    /// record and pays one flush (`group_commit` in the config file).
    /// Disabling it restores the per-item commit path — one WAL record and
    /// one flush per item — which is what Fig. 11's single-operation
    /// columns measure.
    pub group_commit: bool,
    /// Number of catalog shards (`shards` in the config file). The catalog
    /// is partitioned by LFN hash into this many independent engines, each
    /// with its own WAL and group-commit queue, so writers on distinct
    /// shards never contend on a lock. `1` (the default) keeps the single
    /// engine and the exact `wal_path` of earlier releases; with N > 1 the
    /// per-shard WALs derive from `wal_path` with a `.s<i>` suffix. The
    /// shard count of a durable catalog must not change between runs —
    /// routing is by hash, so a different N would look up names on the
    /// wrong shard. `0` is treated as `1`.
    pub shards: usize,
}

impl Default for LrcConfig {
    fn default() -> Self {
        Self {
            profile: BackendProfile::mysql_buffered(),
            wal_path: None,
            update: UpdateConfig::default(),
            group_commit: true,
            shards: 1,
        }
    }
}

/// RLI role configuration.
#[derive(Clone, Debug)]
pub struct RliConfig {
    /// Backend profile for the relational store (uncompressed mode).
    pub profile: BackendProfile,
    /// WAL path for the relational store.
    pub wal_path: Option<PathBuf>,
    /// Soft-state information timeout: entries older than this expire.
    pub expire_timeout: Duration,
    /// How often the expire thread scans.
    pub expire_interval: Duration,
    /// Spawn the expire thread.
    pub auto_expire: bool,
    /// Number of relational-store shards (`rli_shards` in the config
    /// file). The index is partitioned by LFN hash into this many
    /// independent engines so concurrent LRC update streams land on
    /// disjoint shards instead of serializing on one write lock. `1` (the
    /// default) keeps the single engine and the exact `rli_wal` path of
    /// earlier releases; with N > 1 the per-shard WALs derive from the
    /// base path with a `.s<i>` suffix. Like the LRC's `shards`, the
    /// count is part of a durable store's on-disk identity and must not
    /// change between runs. `0` is treated as `1`.
    pub shards: usize,
}

impl Default for RliConfig {
    fn default() -> Self {
        Self {
            profile: BackendProfile::mysql_buffered(),
            wal_path: None,
            // The shipped RLS defaults the timeout to a multiple of the
            // update interval; a generous default keeps tests deterministic.
            expire_timeout: Duration::from_secs(24 * 3600),
            expire_interval: Duration::from_secs(60),
            auto_expire: false,
            shards: 1,
        }
    }
}

/// Authentication/authorization configuration (§3.1).
#[derive(Clone, Debug, Default)]
pub struct AuthConfig {
    /// When false, the server runs open: "The RLS server can also be run
    /// without any authentication or authorization, allowing all users the
    /// ability to read and write RLS mappings."
    pub enabled: bool,
    /// Gridmap file contents: DN → local username.
    pub gridmap: HashMap<String, String>,
    /// Access-control entries evaluated against DN or mapped local user.
    pub acl: Vec<AclEntry>,
}

/// Full server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Advertised identity used as the LRC name in soft-state updates.
    /// Defaults to the bound address when empty.
    pub name: String,
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub bind: SocketAddr,
    /// The DN this server presents when connecting to other servers
    /// (soft-state updates, hierarchical forwarding).
    pub dn: Dn,
    /// LRC role, if any.
    pub lrc: Option<LrcConfig>,
    /// RLI role, if any.
    pub rli: Option<RliConfig>,
    /// Authn/authz settings.
    pub auth: AuthConfig,
    /// Maximum concurrent client connections. Connections beyond the cap
    /// are rejected with a retryable `Busy` error before any work is done.
    pub max_connections: usize,
    /// Request-handler worker threads (`worker_threads` in the config
    /// file). `0` sizes the pool from [`std::thread::available_parallelism`].
    /// Admitted connections are multiplexed across this fixed pool instead
    /// of each owning an OS thread.
    pub worker_threads: usize,
    /// Admitted connections idle longer than this are reaped
    /// (`idle_timeout_ms` in the config file), releasing their admission
    /// slot; the client sees a clean EOF on its next request and can
    /// reconnect.
    pub idle_timeout: Duration,
    /// Per-frame size cap.
    pub max_frame: usize,
    /// Log any operation slower than this through the structured logger
    /// (`slow_op_threshold_ms` in the config file); `None` disables the
    /// slow-op log.
    pub slow_op_threshold: Option<Duration>,
    /// Minimum level for the structured logger (`log_level` in the config
    /// file). Applied to the process-wide logger by `rls-server`, not by
    /// [`crate::server::Server::start`] — embedded/test servers stay quiet.
    pub log_level: rls_trace::Level,
    /// Structured log output format (`log_format`): `text` key=value lines
    /// or JSON objects.
    pub log_format: rls_trace::LogFormat,
    /// Spans retained by the in-memory trace journal
    /// (`trace_journal_capacity`); 0 disables span retention (IDs still
    /// mint and propagate).
    pub trace_journal_capacity: usize,
    /// Flight-recorder sampling period (`telemetry_interval_ms` in the
    /// config file). Every tick the sampler refreshes gauges, rolls the
    /// per-operation latency exemplars, and captures the whole metrics
    /// registry into the telemetry ring. Zero disables the sampler thread
    /// (manual [`crate::server::Server::force_sample`] still works).
    pub telemetry_interval: Duration,
    /// Samples retained by the telemetry ring
    /// (`telemetry_ring_capacity`). At the default 1 s cadence the default
    /// capacity holds about 8.5 minutes of history.
    pub telemetry_ring_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            name: String::new(),
            bind: "127.0.0.1:0".parse().expect("valid literal"),
            dn: Dn::anonymous(),
            lrc: None,
            rli: None,
            auth: AuthConfig::default(),
            max_connections: 512,
            worker_threads: 0,
            idle_timeout: Duration::from_secs(300),
            max_frame: rls_proto::DEFAULT_MAX_FRAME,
            slow_op_threshold: None,
            log_level: rls_trace::Level::Info,
            log_format: rls_trace::LogFormat::Text,
            trace_journal_capacity: 4096,
            telemetry_interval: Duration::from_secs(1),
            telemetry_ring_capacity: 512,
        }
    }
}

impl ServerConfig {
    /// A plain LRC with default settings.
    pub fn lrc_default() -> Self {
        Self {
            lrc: Some(LrcConfig::default()),
            ..Self::default()
        }
    }

    /// A plain RLI with default settings.
    pub fn rli_default() -> Self {
        Self {
            rli: Some(RliConfig::default()),
            ..Self::default()
        }
    }

    /// A combined LRC+RLI server (the Earth System Grid deployment shape).
    pub fn combined_default() -> Self {
        Self {
            lrc: Some(LrcConfig::default()),
            rli: Some(RliConfig::default()),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.lrc.is_none() && c.rli.is_none());
        assert!(!c.auth.enabled);
        assert_eq!(c.bind.ip().to_string(), "127.0.0.1");
        assert_eq!(c.worker_threads, 0); // auto-size from the host
        assert_eq!(c.idle_timeout, Duration::from_secs(300));
        assert_eq!(c.telemetry_interval, Duration::from_secs(1));
        assert_eq!(c.telemetry_ring_capacity, 512);
        let l = ServerConfig::lrc_default();
        assert!(l.lrc.is_some() && l.rli.is_none());
        let r = ServerConfig::rli_default();
        assert!(r.rli.is_some() && r.lrc.is_none());
        let b = ServerConfig::combined_default();
        assert!(b.lrc.is_some() && b.rli.is_some());
    }

    #[test]
    fn immediate_defaults_match_paper() {
        let UpdateMode::Immediate { delta_interval, .. } = UpdateMode::immediate_default() else {
            panic!("wrong variant");
        };
        assert_eq!(delta_interval, Duration::from_secs(30));
        assert!(!UpdateMode::immediate_default().is_bloom());
        assert!(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER
        }
        .is_bloom());
    }
}
