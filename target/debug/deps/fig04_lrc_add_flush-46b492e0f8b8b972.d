/root/repo/target/debug/deps/fig04_lrc_add_flush-46b492e0f8b8b972.d: crates/bench/benches/fig04_lrc_add_flush.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_lrc_add_flush-46b492e0f8b8b972.rmeta: crates/bench/benches/fig04_lrc_add_flush.rs Cargo.toml

crates/bench/benches/fig04_lrc_add_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
