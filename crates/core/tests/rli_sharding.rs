//! Cross-shard semantics of the LFN-hash-partitioned RLI index: with one
//! shard the service is indistinguishable from the legacy single-lock
//! layout (down to the bytes of its WAL), senders whose names land on
//! distinct shards never serialize on each other, concurrent
//! delta/full/expire interleavings converge to the fault-free mapping
//! set, chunk-reassembly sequencing survives the partitioning, and a
//! seeded multi-LRC soak cross-checks `count_for_lrc` against a
//! ground-truth model after thousands of randomized operations.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rls_bloom::splitmix64;
use rls_core::{RliConfig, RliService};
use rls_storage::{BackendProfile, RliDatabase};
use rls_types::{ErrorCode, Glob, Timestamp};

fn service(shards: usize) -> RliService {
    RliService::new(RliConfig {
        shards,
        ..Default::default()
    })
    .unwrap()
}

fn ts(s: u64) -> Timestamp {
    Timestamp::from_unix_secs(s)
}

fn names(ns: &[&str]) -> Vec<String> {
    ns.iter().map(|n| (*n).to_owned()).collect()
}

/// An LFN per shard: scans candidate names until every shard owns one.
fn lfn_on_each_shard(svc: &RliService) -> Vec<String> {
    let n = svc.db().shard_count();
    let mut out: Vec<Option<String>> = vec![None; n];
    for i in 0.. {
        let lfn = format!("lfn://pin/{i}");
        let s = svc.db().shard_of(&lfn);
        if out[s].is_none() {
            out[s] = Some(lfn);
            if out.iter().all(Option::is_some) {
                break;
            }
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// The full relational state as a comparable set of `(lfn, lrc)` pairs.
fn state_of(svc: &RliService) -> BTreeSet<(String, String)> {
    svc.wildcard_query(&Glob::new("*").unwrap(), usize::MAX)
        .unwrap()
        .into_iter()
        .map(|(l, r)| (l.to_string(), r.to_string()))
        .collect()
}

/// Deterministic splitmix64 RNG so every schedule is replayable by seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// --- shards=1 equivalence ----------------------------------------------

/// One shard must be the exact legacy layout: the same operation stream
/// applied through the sharded service and through a bare `RliDatabase`
/// produces byte-identical WALs at the exact configured path, and every
/// query surface agrees.
#[test]
fn single_shard_matches_legacy_layout() {
    let dir = std::env::temp_dir().join(format!("rls-rli-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let svc_wal = dir.join("svc.wal");
    let legacy_wal = dir.join("legacy.wal");
    let _ = std::fs::remove_file(&svc_wal);
    let _ = std::fs::remove_file(&legacy_wal);

    let svc = RliService::new(RliConfig {
        profile: BackendProfile::mysql_durable(),
        wal_path: Some(svc_wal.clone()),
        shards: 1,
        ..Default::default()
    })
    .unwrap();
    let mut legacy = RliDatabase::open(BackendProfile::mysql_durable(), &legacy_wal).unwrap();

    // The same stream of batches, deltas and expires through both.
    for round in 0..4u64 {
        let batch: Vec<String> = (0..20)
            .map(|i| format!("lfn://equiv/{}/{i}", round % 2))
            .collect();
        svc.apply_full_chunk("lrc-1", &batch, ts(100 + round)).unwrap();
        legacy
            .upsert_batch("lrc-1", batch.iter().map(|s| s.as_str()), ts(100 + round))
            .unwrap();
    }
    svc.apply_delta(
        "lrc-2",
        &names(&["lfn://equiv/d1", "lfn://equiv/d2"]),
        &[],
        ts(110),
    )
    .unwrap();
    legacy
        .upsert_batch("lrc-2", ["lfn://equiv/d1", "lfn://equiv/d2"], ts(110))
        .unwrap();
    svc.apply_delta("lrc-2", &[], &names(&["lfn://equiv/d1"]), ts(111))
        .unwrap();
    legacy.remove("lfn://equiv/d1", "lrc-2").unwrap();
    // Window chosen so the round-0 re-assertions (ts 102) expire while
    // the round-1 set (ts 103) and lrc-2's surviving delta stay live.
    svc.expire_with_timeout(ts(160), Duration::from_secs(57)).unwrap();
    legacy.expire(ts(160), Duration::from_secs(57)).unwrap();

    // Logical state agrees on every read surface.
    assert_eq!(svc.association_count(), legacy.association_count());
    assert_eq!(svc.db().lfn_count(), legacy.lfn_count());
    assert_eq!(svc.db().count_for_lrc("lrc-1"), legacy.count_for_lrc("lrc-1"));
    assert_eq!(svc.db().count_for_lrc("lrc-2"), legacy.count_for_lrc("lrc-2"));
    assert_eq!(
        svc.lrc_list(),
        legacy.lrc_list().iter().map(|s| s.to_string()).collect::<Vec<_>>()
    );
    let glob = Glob::new("lfn://equiv/*").unwrap();
    assert_eq!(
        svc.wildcard_query(&glob, usize::MAX).unwrap().len(),
        legacy.wildcard_query(&glob, usize::MAX).unwrap().len()
    );
    for i in 0..20 {
        let lfn = format!("lfn://equiv/1/{i}");
        assert_eq!(svc.query(&lfn).unwrap(), legacy.query(&lfn).unwrap());
    }

    // And the on-disk layout is bit-identical: a single shard logs to the
    // exact configured path, producing the same WAL bytes the legacy
    // single-engine store writes for the same stream.
    drop(svc);
    drop(legacy);
    let svc_bytes = std::fs::read(&svc_wal).unwrap();
    let legacy_bytes = std::fs::read(&legacy_wal).unwrap();
    assert!(!svc_bytes.is_empty());
    assert_eq!(svc_bytes, legacy_bytes, "shards=1 WAL must match legacy byte-for-byte");
    // No `.s0` sibling appears for the single-shard layout.
    assert!(!dir.join("svc.wal.s0").exists());
    let _ = std::fs::remove_file(&svc_wal);
    let _ = std::fs::remove_file(&legacy_wal);
}

// --- cross-shard concurrency -------------------------------------------

/// Senders whose names hash to distinct shards must never wait on each
/// other: with one shard's write lock held hostage, an apply routed to a
/// different shard completes immediately, while an apply routed to the
/// held shard blocks until release.
#[test]
fn updaters_on_distinct_shards_never_block() {
    let svc = Arc::new(service(4));
    let pins = lfn_on_each_shard(&svc);

    // Scripted slow apply: camp on shard 0's write lock.
    let hostage = svc.db().shard(0).write();

    // A delta for a shard-1 name applies while shard 0 is held.
    let (tx, rx) = mpsc::channel();
    let other = {
        let svc = Arc::clone(&svc);
        let lfn = pins[1].clone();
        std::thread::spawn(move || {
            svc.apply_delta("lrc-other", &[lfn], &[], ts(5)).unwrap();
            tx.send(()).unwrap();
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("distinct-shard apply must not wait on the held shard");
    other.join().unwrap();

    // A full chunk for a shard-0 name blocks until the hostage releases.
    let (tx, rx) = mpsc::channel();
    let same = {
        let svc = Arc::clone(&svc);
        let lfn = pins[0].clone();
        std::thread::spawn(move || {
            svc.apply_full_chunk("lrc-same", &[lfn], ts(5)).unwrap();
            tx.send(()).unwrap();
        })
    };
    assert!(
        rx.recv_timeout(Duration::from_millis(100)).is_err(),
        "same-shard apply must wait for the shard lock"
    );
    drop(hostage);
    rx.recv_timeout(Duration::from_secs(10))
        .expect("apply must proceed once the shard lock frees");
    same.join().unwrap();

    assert_eq!(svc.query(&pins[0]).unwrap().len(), 1);
    assert_eq!(svc.query(&pins[1]).unwrap().len(), 1);
}

/// Concurrent full-update streams, immediate-mode deltas and expire
/// sweeps over disjoint shards converge to exactly the fault-free
/// mapping set once the dust settles.
#[test]
fn concurrent_delta_full_expire_interleavings_converge() {
    let svc = Arc::new(service(4));
    let full_names: Vec<String> = (0..120).map(|i| format!("lfn://conv/full/{i}")).collect();
    let delta_names: Vec<String> = (0..120).map(|i| format!("lfn://conv/delta/{i}")).collect();
    let stale_names: Vec<String> = (0..60).map(|i| format!("lfn://conv/stale/{i}")).collect();

    let mut threads = Vec::new();
    // Full-update stream, chunked, repeatedly re-asserted at a live ts.
    {
        let svc = Arc::clone(&svc);
        let full = full_names.clone();
        threads.push(std::thread::spawn(move || {
            for round in 0..10 {
                for chunk in full.chunks(30) {
                    svc.apply_full_chunk("lrc-full", chunk, ts(1_000 + round)).unwrap();
                }
            }
        }));
    }
    // Immediate-mode sender: adds everything, removes the odd half, over
    // and over — the survivors are deterministic.
    {
        let svc = Arc::clone(&svc);
        let delta = delta_names.clone();
        threads.push(std::thread::spawn(move || {
            let removed: Vec<String> = delta.iter().skip(1).step_by(2).cloned().collect();
            for round in 0..10 {
                svc.apply_delta("lrc-delta", &delta, &[], ts(1_000 + round)).unwrap();
                svc.apply_delta("lrc-delta", &[], &removed, ts(1_000 + round)).unwrap();
            }
        }));
    }
    // A sender whose entries are already stale, racing the expire sweeps.
    {
        let svc = Arc::clone(&svc);
        let stale = stale_names.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..10 {
                svc.apply_full_chunk("lrc-stale", &stale, ts(10)).unwrap();
            }
        }));
    }
    // The expire thread, sweeping shard by shard throughout.
    {
        let svc = Arc::clone(&svc);
        threads.push(std::thread::spawn(move || {
            for _ in 0..20 {
                svc.expire_with_timeout(ts(500), Duration::from_secs(30)).unwrap();
                std::thread::yield_now();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    // One final sweep makes the stale sender's fate deterministic.
    svc.expire_with_timeout(ts(500), Duration::from_secs(30)).unwrap();

    let mut expect = BTreeSet::new();
    for n in &full_names {
        expect.insert((n.clone(), "lrc-full".to_owned()));
    }
    for n in delta_names.iter().step_by(2) {
        expect.insert((n.clone(), "lrc-delta".to_owned()));
    }
    assert_eq!(state_of(&svc), expect, "must converge to the fault-free mapping set");
    assert_eq!(svc.db().count_for_lrc("lrc-stale"), 0);
    assert_eq!(svc.db().count_for_lrc("lrc-full"), 120);
    assert_eq!(svc.db().count_for_lrc("lrc-delta"), 60);
}

// --- chunk reassembly across shards ------------------------------------

/// The per-LRC chunk cursor stays global while the chunks' names scatter
/// across shards: gaps and stale duplicates are still rejected, accepted
/// chunks land on their owner shards, and cursors remain independent
/// between senders.
#[test]
fn chunk_sequencing_holds_across_shards() {
    let svc = service(4);
    let pins = lfn_on_each_shard(&svc);

    // An in-order stream whose chunks each live on a different shard.
    svc.apply_full_chunk_seq("lrc-1", 7, 0, false, &[pins[0].clone()], ts(1)).unwrap();
    svc.apply_full_chunk_seq("lrc-1", 7, 1, false, &[pins[1].clone()], ts(1)).unwrap();
    // A gap is rejected and applies nothing to any shard.
    let e = svc
        .apply_full_chunk_seq("lrc-1", 7, 3, false, &names(&["lfn://skip"]), ts(1))
        .unwrap_err();
    assert_eq!(e.code(), ErrorCode::BadRequest);
    assert!(svc.query("lfn://skip").is_err());
    // A stale duplicate of an earlier chunk is rejected too.
    let e = svc
        .apply_full_chunk_seq("lrc-1", 7, 0, false, &[pins[0].clone()], ts(1))
        .unwrap_err();
    assert_eq!(e.code(), ErrorCode::BadRequest);
    // A retransmit of the just-applied chunk is acked idempotently.
    assert_eq!(
        svc.apply_full_chunk_seq("lrc-1", 7, 1, false, &[pins[1].clone()], ts(1)).unwrap(),
        0
    );
    // Another sender's cursor is untouched by all of the above.
    svc.apply_full_chunk_seq("lrc-2", 1, 0, true, &[pins[2].clone()], ts(1)).unwrap();
    // Finish lrc-1's stream; both survive with their own associations.
    svc.apply_full_chunk_seq("lrc-1", 7, 2, true, &[pins[3].clone()], ts(1)).unwrap();
    assert_eq!(svc.db().count_for_lrc("lrc-1"), 3);
    assert_eq!(svc.db().count_for_lrc("lrc-2"), 1);
    // A new update id supersedes the finished stream, starting at seq 0.
    let e = svc
        .apply_full_chunk_seq("lrc-1", 8, 2, false, &[pins[0].clone()], ts(2))
        .unwrap_err();
    assert_eq!(e.code(), ErrorCode::BadRequest);
    svc.apply_full_chunk_seq("lrc-1", 8, 0, true, &[pins[0].clone()], ts(2)).unwrap();
}

// --- cursor eviction (regression) --------------------------------------

/// `chunks`/`freshness` entries for senders that lost all their state
/// must be evicted by the expire sweep — the maps otherwise grow one
/// entry per sender that ever contacted the RLI (the unbounded-growth
/// bug this PR fixes). An evicted mid-stream cursor also means a
/// returning sender must start a fresh update at seq 0.
#[test]
fn expire_evicts_cursors_and_freshness_for_dead_lrcs() {
    let svc = service(2);
    // lrc-gone leaves a mid-stream cursor and stale associations.
    svc.apply_full_chunk_seq("lrc-gone", 5, 0, false, &names(&["lfn://ev/a"]), ts(10)).unwrap();
    svc.apply_full_chunk_seq("lrc-gone", 5, 1, false, &names(&["lfn://ev/b"]), ts(10)).unwrap();
    // lrc-live keeps fresh associations; lrc-bloom holds only a filter.
    svc.apply_full_chunk("lrc-live", &names(&["lfn://ev/live"]), ts(195)).unwrap();
    let mut filter = rls_bloom::BloomFilter::with_capacity(rls_bloom::BloomParams::PAPER, 100);
    filter.insert("lfn://ev/bloomed");
    svc.apply_bloom("lrc-bloom", filter, ts(195));
    assert_eq!(svc.staleness_tracked_lrcs(), 3);

    let n = svc.expire_with_timeout(ts(200), Duration::from_secs(30)).unwrap();
    assert_eq!(n, 2, "only lrc-gone's two stale associations expire");
    // The dead sender's bookkeeping is gone; live senders keep theirs.
    assert_eq!(svc.staleness_tracked_lrcs(), 2);
    // Its mid-stream cursor was evicted with it: resuming the old stream
    // is rejected, a fresh update at seq 0 is accepted.
    let e = svc
        .apply_full_chunk_seq("lrc-gone", 5, 2, true, &names(&["lfn://ev/c"]), ts(201))
        .unwrap_err();
    assert_eq!(e.code(), ErrorCode::BadRequest);
    svc.apply_full_chunk_seq("lrc-gone", 6, 0, true, &names(&["lfn://ev/c"]), ts(201)).unwrap();
    assert_eq!(svc.staleness_tracked_lrcs(), 3);
    // Repeated sweeps with nothing to do keep the live entries.
    svc.expire_with_timeout(ts(202), Duration::from_secs(30)).unwrap();
    assert_eq!(svc.staleness_tracked_lrcs(), 3);
}

// --- metrics -----------------------------------------------------------

/// Applies land on the per-shard `rli.shard.<i>.applies` counters and the
/// sampler-cadence refresh publishes `rli.shard.imbalance_ppm`.
#[test]
fn shard_metrics_track_apply_distribution() {
    let svc = service(4);
    let batch: Vec<String> = (0..64).map(|i| format!("lfn://met/{i}")).collect();
    svc.apply_full_chunk("lrc-1", &batch, ts(1)).unwrap();
    svc.apply_delta("lrc-1", &names(&["lfn://met/0"]), &[], ts(2)).unwrap();
    svc.refresh_staleness_gauges();
    let counters: HashMap<String, u64> = svc.metrics().counter_snapshot().into_iter().collect();
    let per_shard: Vec<u64> = (0..4)
        .map(|i| *counters.get(&format!("rli.shard.{i}.applies")).unwrap_or(&0))
        .collect();
    // The 64-name batch fans out to one apply per touched shard (all 4,
    // with 64 names), plus the delta's single-shard apply.
    assert_eq!(per_shard.iter().sum::<u64>(), 5);
    assert!(per_shard.iter().all(|&c| c >= 1));
    assert!(
        counters.contains_key("rli.shard.imbalance_ppm"),
        "imbalance gauge must publish on the sampler cadence"
    );
}

// --- seeded soak -------------------------------------------------------

/// Ground-truth model of the relational store: `(lfn, lrc) → last ts`.
#[derive(Default)]
struct Model {
    map: BTreeMap<(String, String), Timestamp>,
}

impl Model {
    fn upsert(&mut self, lfn: &str, lrc: &str, at: Timestamp) {
        self.map.insert((lfn.to_owned(), lrc.to_owned()), at);
    }

    fn remove(&mut self, lfn: &str, lrc: &str) {
        self.map.remove(&(lfn.to_owned(), lrc.to_owned()));
    }

    fn expire(&mut self, now: Timestamp, timeout: Duration) {
        self.map.retain(|_, at| !at.is_expired(now, timeout));
    }

    fn count_for_lrc(&self, lrc: &str) -> u64 {
        self.map.keys().filter(|(_, r)| r == lrc).count() as u64
    }

    fn state(&self) -> BTreeSet<(String, String)> {
        self.map.keys().cloned().collect()
    }
}

/// Runs a seeded randomized schedule against a service, mirroring every
/// operation into the ground-truth model.
fn run_schedule(svc: &RliService, seed: u64, ops: usize) -> Model {
    let mut rng = Rng(seed);
    let mut model = Model::default();
    let lrcs = ["lrc-0", "lrc-1", "lrc-2", "lrc-3"];
    let mut clock = 1_000u64;
    for _ in 0..ops {
        clock += 1;
        let at = ts(clock);
        let lrc = lrcs[rng.below(4) as usize];
        match rng.below(100) {
            // Full-update chunk: a batch of names re-asserted fresh.
            0..=54 => {
                let k = 1 + rng.below(8);
                let batch: Vec<String> = (0..k)
                    .map(|_| format!("lfn://soak/{}", rng.below(400)))
                    .collect();
                svc.apply_full_chunk(lrc, &batch, at).unwrap();
                for n in &batch {
                    model.upsert(n, lrc, at);
                }
            }
            // Immediate-mode delta: some adds, some removes.
            55..=84 => {
                let adds: Vec<String> = (0..rng.below(4))
                    .map(|_| format!("lfn://soak/{}", rng.below(400)))
                    .collect();
                let removes: Vec<String> = (0..rng.below(4))
                    .map(|_| format!("lfn://soak/{}", rng.below(400)))
                    .collect();
                svc.apply_delta(lrc, &adds, &removes, at).unwrap();
                for n in &adds {
                    model.upsert(n, lrc, at);
                }
                for n in &removes {
                    model.remove(n, lrc);
                }
            }
            // Expire sweep with a window that bites ~the older half.
            _ => {
                let timeout = Duration::from_secs(20 + rng.below(60));
                svc.expire_with_timeout(at, timeout).unwrap();
                model.expire(at, timeout);
            }
        }
    }
    model
}

/// Thousands of randomized full/delta/expire ops over four senders: the
/// sharded service must agree with the ground-truth model on the full
/// mapping set, per-LRC counts (the divergence gauge's input) and point
/// queries.
#[test]
fn seeded_soak_cross_checks_count_for_lrc() {
    let svc = service(4);
    let model = run_schedule(&svc, 0x5EED_0008, 3_000);
    assert_eq!(state_of(&svc), model.state());
    assert_eq!(svc.association_count(), model.map.len() as u64);
    for lrc in ["lrc-0", "lrc-1", "lrc-2", "lrc-3"] {
        assert_eq!(
            svc.db().count_for_lrc(lrc),
            model.count_for_lrc(lrc),
            "count_for_lrc({lrc}) diverged from the model"
        );
    }
    // Spot-check point queries against the model.
    for i in 0..400 {
        let lfn = format!("lfn://soak/{i}");
        let expect: BTreeSet<String> = model
            .map
            .keys()
            .filter(|(l, _)| *l == lfn)
            .map(|(_, r)| r.clone())
            .collect();
        match svc.query(&lfn) {
            Ok(hits) => {
                let got: BTreeSet<String> =
                    hits.into_iter().map(|h| h.lrc.to_string()).collect();
                assert_eq!(got, expect, "query({lfn}) diverged");
            }
            Err(e) => {
                assert_eq!(e.code(), ErrorCode::LogicalNameNotFound);
                assert!(expect.is_empty(), "query({lfn}) lost hits: {expect:?}");
            }
        }
    }
}

/// The same seeded schedule applied at 4 shards and at 1 shard lands on
/// the identical final state, op for op — and replaying the seed
/// reproduces it exactly.
#[test]
fn seeded_schedule_matches_single_shard() {
    let sharded = service(4);
    let single = service(1);
    let m4 = run_schedule(&sharded, 0xD1CE_0008, 1_500);
    let m1 = run_schedule(&single, 0xD1CE_0008, 1_500);
    assert_eq!(m4.state(), m1.state(), "models must agree (same schedule)");
    assert_eq!(state_of(&sharded), state_of(&single));
    assert_eq!(sharded.association_count(), single.association_count());
    assert_eq!(sharded.lrc_list(), single.lrc_list());
    for lrc in ["lrc-0", "lrc-1", "lrc-2", "lrc-3"] {
        assert_eq!(sharded.db().count_for_lrc(lrc), single.db().count_for_lrc(lrc));
    }
    // Replayable by seed: a fresh run of the same schedule is identical.
    let replay = service(4);
    run_schedule(&replay, 0xD1CE_0008, 1_500);
    assert_eq!(state_of(&replay), state_of(&sharded));
}

// --- changelog lint ----------------------------------------------------

/// Every PR appends its one-line entry to CHANGES.md (newest first).
#[test]
fn changes_md_records_this_pr() {
    let changes = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../CHANGES.md"
    ))
    .expect("CHANGES.md at the repo root");
    assert!(
        changes.contains("- PR 8 ("),
        "CHANGES.md must record PR 8 (one line, newest first)"
    );
}
