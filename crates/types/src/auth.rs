//! Authentication and authorization vocabulary.
//!
//! The RLS server supports GSI authentication: a client presents an X.509
//! certificate whose *Distinguished Name* (DN) may be mapped to a local
//! username through a *gridmap* file. Authorization is granted through
//! access-control-list entries — regular expressions that grant privileges
//! such as `lrc_read` and `lrc_write` based on either the DN or the mapped
//! local username. The server can also run fully open.
//!
//! We reproduce that model with DN strings in place of certificates (see
//! DESIGN.md substitution table): the *authorization* semantics — gridmap
//! lookup, regex ACL evaluation, per-operation privileges — are identical.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::RlsResult;
use crate::pattern::Regex;

/// An X.509-style distinguished name, e.g.
/// `/O=Grid/OU=ISI/CN=Ann Chervenak`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dn(String);

impl Dn {
    /// Wraps a DN string.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }

    /// The DN as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The anonymous identity used when a server runs without
    /// authentication.
    pub fn anonymous() -> Self {
        Self("/anonymous".to_owned())
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Dn {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// Privileges grantable by ACL entries.
///
/// The paper names `lrc_read` and `lrc_write`; the shipped RLS also
/// distinguished RLI access and administrative operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Privilege {
    /// Query LRC mappings and attributes.
    LrcRead = 0,
    /// Create/add/delete LRC mappings and attributes.
    LrcWrite = 1,
    /// Query the RLI index.
    RliRead = 2,
    /// Send soft-state updates to the RLI.
    RliWrite = 3,
    /// Administrative operations (stats, update-list management).
    Admin = 4,
}

impl Privilege {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        use Privilege::*;
        Some(match v {
            0 => LrcRead,
            1 => LrcWrite,
            2 => RliRead,
            3 => RliWrite,
            4 => Admin,
            _ => return None,
        })
    }

    /// The configuration-file spelling (`lrc_read`, ...).
    pub fn as_config_str(self) -> &'static str {
        match self {
            Self::LrcRead => "lrc_read",
            Self::LrcWrite => "lrc_write",
            Self::RliRead => "rli_read",
            Self::RliWrite => "rli_write",
            Self::Admin => "admin",
        }
    }

    /// Parses the configuration-file spelling.
    pub fn from_config_str(s: &str) -> Option<Self> {
        Some(match s {
            "lrc_read" => Self::LrcRead,
            "lrc_write" => Self::LrcWrite,
            "rli_read" => Self::RliRead,
            "rli_write" => Self::RliWrite,
            "admin" => Self::Admin,
            _ => return None,
        })
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_config_str())
    }
}

/// What an ACL entry's pattern is matched against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AclSubject {
    /// Match against the DN from the client's certificate.
    Dn,
    /// Match against the local username produced by the gridmap file.
    LocalUser,
}

/// One access-control-list entry: a regex over the subject, granting a set
/// of privileges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AclEntry {
    /// What to match the pattern against.
    pub subject: AclSubject,
    /// The pattern (full-match semantics).
    pub pattern: Regex,
    /// Privileges granted on a match.
    pub privileges: Vec<Privilege>,
}

impl AclEntry {
    /// Builds an entry from a pattern string.
    pub fn new(
        subject: AclSubject,
        pattern: &str,
        privileges: impl Into<Vec<Privilege>>,
    ) -> RlsResult<Self> {
        Ok(Self {
            subject,
            pattern: Regex::new(pattern)?,
            privileges: privileges.into(),
        })
    }

    /// True if this entry grants `priv_` to the given identity.
    pub fn grants(&self, dn: &Dn, local_user: Option<&str>, priv_: Privilege) -> bool {
        if !self.privileges.contains(&priv_) {
            return false;
        }
        match self.subject {
            AclSubject::Dn => self.pattern.is_full_match(dn.as_str()),
            AclSubject::LocalUser => {
                local_user.is_some_and(|u| self.pattern.is_full_match(u))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_round_trips() {
        for v in 0..5u8 {
            let p = Privilege::from_u8(v).unwrap();
            assert_eq!(p as u8, v);
            assert_eq!(Privilege::from_config_str(p.as_config_str()), Some(p));
        }
        assert!(Privilege::from_u8(5).is_none());
        assert!(Privilege::from_config_str("root").is_none());
    }

    #[test]
    fn acl_grants_by_dn() {
        let e = AclEntry::new(
            AclSubject::Dn,
            "/O=Grid/OU=ISI/.*",
            vec![Privilege::LrcRead, Privilege::LrcWrite],
        )
        .unwrap();
        let isi = Dn::new("/O=Grid/OU=ISI/CN=Bob");
        let ucla = Dn::new("/O=Grid/OU=UCLA/CN=Eve");
        assert!(e.grants(&isi, None, Privilege::LrcRead));
        assert!(e.grants(&isi, None, Privilege::LrcWrite));
        assert!(!e.grants(&isi, None, Privilege::RliWrite));
        assert!(!e.grants(&ucla, None, Privilege::LrcRead));
    }

    #[test]
    fn acl_grants_by_local_user() {
        let e = AclEntry::new(AclSubject::LocalUser, "grid[0-9]+", vec![Privilege::LrcRead])
            .unwrap();
        let dn = Dn::new("/O=Grid/CN=anyone");
        assert!(e.grants(&dn, Some("grid42"), Privilege::LrcRead));
        assert!(!e.grants(&dn, Some("staff"), Privilege::LrcRead));
        // No gridmap mapping → local-user entries never match.
        assert!(!e.grants(&dn, None, Privilege::LrcRead));
    }

    #[test]
    fn acl_full_match_semantics() {
        // Without explicit anchors, ACL patterns must still cover the whole
        // subject: `ISI` alone must not match a DN merely containing it.
        let e = AclEntry::new(AclSubject::Dn, "ISI", vec![Privilege::LrcRead]).unwrap();
        assert!(!e.grants(&Dn::new("/O=Grid/OU=ISI/CN=Bob"), None, Privilege::LrcRead));
        assert!(e.grants(&Dn::new("ISI"), None, Privilege::LrcRead));
    }

    #[test]
    fn anonymous_dn() {
        assert_eq!(Dn::anonymous().as_str(), "/anonymous");
    }
}
