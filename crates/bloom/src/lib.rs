//! # `rls-bloom`
//!
//! Bloom filters for soft-state compression, as in §3.4 of the paper:
//!
//! > *"A Bloom filter that summarizes the state of an LRC is constructed by
//! > performing multiple hash functions on each logical name registered in
//! > the LRC and setting the corresponding bits in the Bloom filter. The
//! > resulting bit map is sent to an RLI, which stores one Bloom filter per
//! > LRC."*
//!
//! The paper's deployment parameters — reproduced as the defaults of
//! [`BloomParams`] — are **10 bits per mapping** and **3 hash functions**,
//! giving ≈1 % false positives at design capacity.
//!
//! Two filter flavours:
//!
//! * [`BloomFilter`] — the plain bitmap that travels over the wire and lives
//!   in RLI memory.
//! * [`CountingBloomFilter`] — kept *locally* by the LRC so that deletions
//!   can clear bits without regenerating the filter from the database
//!   (the paper: *"subsequent updates to LRC mappings can be reflected by
//!   setting or unsetting the corresponding bits"* — which requires counts
//!   to know when the last contributor of a bit is gone).

pub mod counting;
pub mod filter;
pub mod hash;
pub mod params;

pub use counting::CountingBloomFilter;
pub use filter::BloomFilter;
pub use hash::{bloom_indexes, fnv1a_64, splitmix64, DoubleHasher};
pub use params::BloomParams;
