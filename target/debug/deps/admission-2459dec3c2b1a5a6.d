/root/repo/target/debug/deps/admission-2459dec3c2b1a5a6.d: crates/core/tests/admission.rs

/root/repo/target/debug/deps/libadmission-2459dec3c2b1a5a6.rmeta: crates/core/tests/admission.rs

crates/core/tests/admission.rs:
