//! LIGO-style deployment (§6 of the paper): the Laser Interferometer
//! Gravitational Wave Observatory used the RLS "to register and query
//! mappings between 3 million logical file names and 30 million physical
//! file locations" — many replicas per logical name, partitioned across
//! detector sites, with size metadata on every physical copy.
//!
//! This example builds a scaled-down LIGO catalog: frame files from two
//! detectors (H1 in Hanford, L1 in Livingston) replicated to several data
//! centres, **namespace-partitioned** RLIs (§3.5) routing each detector's
//! names to its own index, and attribute-based selection of the smallest
//! replica.
//!
//! Run: `cargo run --example ligo_catalog`

use rls::core::testkit::TestDeployment;
use rls::types::{AttrCompare, AttrValue, AttrValueType, AttributeDef, ObjectType};

const FRAMES_PER_DETECTOR: u64 = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One LRC (the observatory's publishing catalog), two RLIs that will
    // each index one detector's namespace.
    let dep = TestDeployment::builder().lrcs(1).rlis(2).build()?;

    // Partition the namespace: H1 frames to RLI 0, L1 frames to RLI 1.
    {
        let lrc = dep.lrcs[0].lrc().expect("lrc role");
        let catalog = lrc.catalog();
        catalog.remove_rli(&dep.rlis[0].addr().to_string())?;
        catalog.remove_rli(&dep.rlis[1].addr().to_string())?;
        catalog.add_rli(
            &dep.rlis[0].addr().to_string(),
            0,
            &["^lfn://ligo/h1/.*".to_owned()],
        )?;
        catalog.add_rli(
            &dep.rlis[1].addr().to_string(),
            0,
            &["^lfn://ligo/l1/.*".to_owned()],
        )?;
    }

    let mut client = dep.lrc_client(0)?;

    // Frame files carry a size attribute on each physical replica.
    client.define_attribute(AttributeDef::new(
        "size",
        ObjectType::Target,
        AttrValueType::Int,
    )?)?;

    // Publish frames: each detector's frames are replicated to the local
    // archive plus a shared tier-1 centre, with differing compression.
    println!("publishing {} frames per detector...", FRAMES_PER_DETECTOR);
    for detector in ["h1", "l1"] {
        for seq in 0..FRAMES_PER_DETECTOR {
            let lfn = format!("lfn://ligo/{detector}/run03/frame-{seq:06}.gwf");
            let local = format!("gsiftp://archive.{detector}.ligo.org/frames/{seq:06}.gwf");
            let tier1 = format!("gsiftp://tier1.caltech.edu/ligo/{detector}/{seq:06}.gwf");
            client.create_mapping(&lfn, &local)?;
            client.add_mapping(&lfn, &tier1)?;
            client.add_attribute(&local, ObjectType::Target, "size", AttrValue::Int(128 << 20))?;
            // The tier-1 copy is recompressed and smaller.
            client.add_attribute(&tier1, ObjectType::Target, "size", AttrValue::Int(96 << 20))?;
        }
    }
    println!(
        "catalog: {} logical names, {} mappings",
        2 * FRAMES_PER_DETECTOR,
        4 * FRAMES_PER_DETECTOR
    );

    // Push partitioned soft-state updates.
    for outcome in dep.force_updates() {
        let o = outcome?;
        println!("update → {}: {} names", o.target, o.names);
    }

    // Each RLI indexes only its detector's namespace.
    let mut rli_h1 = dep.rli_client(0)?;
    let mut rli_l1 = dep.rli_client(1)?;
    assert!(rli_h1
        .rli_query_lfn("lfn://ligo/h1/run03/frame-000042.gwf")
        .is_ok());
    assert!(rli_h1
        .rli_query_lfn("lfn://ligo/l1/run03/frame-000042.gwf")
        .is_err());
    assert!(rli_l1
        .rli_query_lfn("lfn://ligo/l1/run03/frame-000042.gwf")
        .is_ok());
    println!("partitioning verified: each RLI answers only for its detector");

    // A scientist's workflow: wildcard-find a run's frames, then pick the
    // smallest replica of one of them by attribute.
    let frames = client.wildcard_query_lfn("lfn://ligo/h1/run03/frame-0000[0-4]?.gwf", 1000)?;
    println!("wildcard matched {} (lfn, replica) pairs", frames.len());

    let target_lfn = "lfn://ligo/h1/run03/frame-000007.gwf";
    let replicas = client.query_lfn(target_lfn)?;
    let mut best: Option<(String, i64)> = None;
    for replica in replicas {
        let attrs = client.get_attributes(&replica, ObjectType::Target, Some("size"))?;
        if let Some((_, AttrValue::Int(size))) = attrs.into_iter().next() {
            if best.as_ref().is_none_or(|(_, b)| size < *b) {
                best = Some((replica, size));
            }
        }
    }
    let (best_replica, size) = best.expect("replica with size");
    println!("smallest replica of {target_lfn}: {best_replica} ({} MiB)", size >> 20);
    assert!(best_replica.contains("tier1"));

    // Site-wide audit: every replica at tier-1 bigger than 100 MiB.
    let big = client.search_attribute(
        "size",
        ObjectType::Target,
        AttrCompare::Gt,
        Some(AttrValue::Int(100 << 20)),
    )?;
    println!("replicas larger than 100 MiB: {}", big.len());
    Ok(())
}
