/root/repo/target/debug/deps/crossbeam-5388be758bd93350.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5388be758bd93350.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
