/root/repo/target/debug/deps/rls_trace-da13d5c2ba953201.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/librls_trace-da13d5c2ba953201.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
