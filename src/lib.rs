//! # `rls` — A Replica Location Service
//!
//! Facade crate for a from-scratch Rust reproduction of the Globus Toolkit
//! Replica Location Service, as described and evaluated in *"Performance and
//! Scalability of a Replica Location Service"* (Chervenak et al., HPDC 2004).
//!
//! The RLS is a two-tier distributed index for replicated data:
//!
//! * **Local Replica Catalogs** ([`core::LrcService`]) map *logical names*
//!   to *target names* (typically physical replica locations) and carry
//!   typed user attributes.
//! * **Replica Location Indexes** ([`core::server`]) aggregate `LFN → LRC`
//!   information from many LRCs with relaxed, soft-state consistency.
//! * LRCs push **soft-state updates** to RLIs: uncompressed full dumps,
//!   incremental "immediate mode" deltas, or [Bloom-filter](bloom) compressed
//!   summaries; updates may be partitioned across RLIs by namespace regex.
//! * Every server records **observability metrics** ([`metrics`]): per-op
//!   latency histograms and labeled counters, surfaced through the `stats`
//!   RPC and `rls-cli stats`. See `docs/OBSERVABILITY.md` for the catalog.
//! * Every request carries a **trace ID** ([`trace`]) that follows the
//!   operation across the soft-state plane (LRC commit → delta send → RLI
//!   apply); each server journals finished spans, queryable via
//!   `rls-cli trace`. Diagnostics go through the structured logger in the
//!   same crate.
//!
//! ## Quickstart
//!
//! ```no_run
//! use rls::core::testkit::TestDeployment;
//!
//! // One LRC pushing Bloom-filter updates to one RLI, on loopback TCP.
//! let dep = TestDeployment::builder()
//!     .lrcs(1)
//!     .rlis(1)
//!     .bloom(true)
//!     .build()
//!     .expect("deployment");
//!
//! let mut lrc = dep.lrc_client(0).expect("connect");
//! lrc.create_mapping("lfn://demo/file0001", "gsiftp://site-a/data/file0001")
//!     .expect("create");
//! dep.force_updates();
//!
//! let mut rli = dep.rli_client(0).expect("connect");
//! let hits = rli.rli_query_lfn("lfn://demo/file0001").expect("query");
//! assert!(!hits.is_empty());
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench` for the harnesses
//! that regenerate every table and figure of the paper.

pub use rls_bloom as bloom;
pub use rls_core as core;
pub use rls_faults as faults;
pub use rls_metrics as metrics;
pub use rls_net as net;
pub use rls_proto as proto;
pub use rls_storage as storage;
pub use rls_trace as trace;
pub use rls_types as types;
pub use rls_workload as workload;

/// Version of the reproduced RLS release (the paper evaluates 2.0.9).
pub const REPRODUCED_RLS_VERSION: &str = "2.0.9";

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one item per re-export so a broken path fails to compile.
        let _ = crate::REPRODUCED_RLS_VERSION;
    }
}
