//! Name populations: deterministic logical/target name families shaped
//! like Grid data (LIGO frame files, ESG datasets, ...).

use rls_core::Server;
use rls_types::{Mapping, RlsResult};

/// Generates the `i`-th logical/target name of a family.
///
/// Names are ~40–60 bytes, matching the magnitudes the paper's deployments
/// describe (`varchar(250)` columns, LIGO frame-file names).
#[derive(Clone, Debug)]
pub struct NameGen {
    namespace: String,
}

impl NameGen {
    /// A family under `namespace` (e.g. `"ligo"`).
    pub fn new(namespace: impl Into<String>) -> Self {
        Self {
            namespace: namespace.into(),
        }
    }

    /// The `i`-th logical name.
    pub fn lfn(&self, i: u64) -> String {
        format!("lfn://{}/run{:03}/file{:09}", self.namespace, i % 997, i)
    }

    /// The `i`-th target name (site `s`).
    pub fn pfn(&self, site: u64, i: u64) -> String {
        format!(
            "gsiftp://site{:02}.{}.org/data/run{:03}/file{:09}",
            site,
            self.namespace,
            i % 997,
            i
        )
    }

    /// The `i`-th mapping (site 0).
    pub fn mapping(&self, i: u64) -> Mapping {
        Mapping {
            logical: rls_types::LogicalName::new_unchecked(self.lfn(i)),
            target: rls_types::TargetName::new_unchecked(self.pfn(0, i)),
        }
    }
}

/// Preloads an LRC server's catalog with `n` mappings **in process**
/// (bypassing the RPC layer), the way the paper's tests start from "a
/// server loaded with a predefined number of mappings".
pub fn preload_lrc(server: &Server, gen: &NameGen, n: u64) -> RlsResult<u64> {
    let lrc = server
        .lrc()
        .ok_or_else(|| rls_types::RlsError::bad_request("server has no LRC role"))?;
    let catalog = lrc.catalog();
    for i in 0..n {
        let m = gen.mapping(i);
        let (_, mut db) = catalog.write_owner(m.logical.as_str());
        db.create_mapping(&m)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_deterministic_and_unique() {
        let g = NameGen::new("ligo");
        assert_eq!(g.lfn(5), g.lfn(5));
        assert_ne!(g.lfn(5), g.lfn(6));
        assert_ne!(g.pfn(0, 5), g.pfn(1, 5));
        let m = g.mapping(7);
        assert!(m.logical.as_str().starts_with("lfn://ligo/"));
        assert!(m.target.as_str().starts_with("gsiftp://site00.ligo.org/"));
    }

    #[test]
    fn name_lengths_fit_schema() {
        let g = NameGen::new("earth-system-grid");
        assert!(g.lfn(u64::MAX / 2).len() <= 250);
        assert!(g.pfn(99, u64::MAX / 2).len() <= 250);
    }

    #[test]
    fn preload_fills_catalog() {
        let dep = rls_core::TestDeployment::builder()
            .lrcs(1)
            .rlis(0)
            .build()
            .unwrap();
        let g = NameGen::new("pre");
        preload_lrc(&dep.lrcs[0], &g, 500).unwrap();
        let lrc = dep.lrcs[0].lrc().unwrap();
        assert_eq!(lrc.catalog().lfn_count(), 500);
        assert_eq!(lrc.catalog().mapping_count(), 500);
    }
}
