/root/repo/target/debug/deps/rls_cli-8f62273eb93f5f22.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/rls_cli-8f62273eb93f5f22: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
