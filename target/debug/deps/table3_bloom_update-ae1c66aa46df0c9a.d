/root/repo/target/debug/deps/table3_bloom_update-ae1c66aa46df0c9a.d: crates/bench/benches/table3_bloom_update.rs

/root/repo/target/debug/deps/table3_bloom_update-ae1c66aa46df0c9a: crates/bench/benches/table3_bloom_update.rs

crates/bench/benches/table3_bloom_update.rs:
