/root/repo/target/debug/deps/rls_faults-623e1b0311eff6ee.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls_faults-623e1b0311eff6ee.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
