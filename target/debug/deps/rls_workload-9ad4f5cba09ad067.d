/root/repo/target/debug/deps/rls_workload-9ad4f5cba09ad067.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-9ad4f5cba09ad067.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
