/root/repo/target/debug/deps/fig12_uncompressed_updates-b2b00214e0258ab3.d: crates/bench/benches/fig12_uncompressed_updates.rs

/root/repo/target/debug/deps/fig12_uncompressed_updates-b2b00214e0258ab3: crates/bench/benches/fig12_uncompressed_updates.rs

crates/bench/benches/fig12_uncompressed_updates.rs:
