(function() {
    const implementors = Object.fromEntries([["rls_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"rls_core/server/struct.Server.html\" title=\"struct rls_core::server::Server\">Server</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"rls_core/testkit/struct.TestDeployment.html\" title=\"struct rls_core::testkit::TestDeployment\">TestDeployment</a>",0]]],["rls_trace",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"rls_trace/struct.SpanGuard.html\" title=\"struct rls_trace::SpanGuard\">SpanGuard</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[580,282]}