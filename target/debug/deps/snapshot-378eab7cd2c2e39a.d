/root/repo/target/debug/deps/snapshot-378eab7cd2c2e39a.d: crates/bench/benches/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libsnapshot-378eab7cd2c2e39a.rmeta: crates/bench/benches/snapshot.rs Cargo.toml

crates/bench/benches/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
