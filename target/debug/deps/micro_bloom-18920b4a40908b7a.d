/root/repo/target/debug/deps/micro_bloom-18920b4a40908b7a.d: crates/bench/benches/micro_bloom.rs

/root/repo/target/debug/deps/libmicro_bloom-18920b4a40908b7a.rmeta: crates/bench/benches/micro_bloom.rs

crates/bench/benches/micro_bloom.rs:
