/root/repo/target/debug/deps/rls-3ea28c4e99a99573.d: src/lib.rs

/root/repo/target/debug/deps/librls-3ea28c4e99a99573.rlib: src/lib.rs

/root/repo/target/debug/deps/librls-3ea28c4e99a99573.rmeta: src/lib.rs

src/lib.rs:
