/root/repo/target/release/deps/rls_server-3f4d2988b20780f7.d: src/bin/rls-server.rs

/root/repo/target/release/deps/rls_server-3f4d2988b20780f7: src/bin/rls-server.rs

src/bin/rls-server.rs:
