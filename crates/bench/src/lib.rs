//! # `rls-bench`
//!
//! Shared harness utilities for the paper-exhibit benchmarks. Each
//! `benches/figNN_*.rs` / `benches/table3_*.rs` target regenerates one
//! table or figure of *"Performance and Scalability of a Replica Location
//! Service"* (HPDC 2004); see DESIGN.md §4 for the index.
//!
//! Every exhibit accepts:
//!
//! * `--full` — paper-scale parameters (minutes to hours of runtime);
//! * `--scale <f>` — multiply default workload sizes by `f`;
//! * `--trials <n>` — trials per data point (paper: typically 5);
//! * `--pipeline <n>` — client request-pipelining depth (1 = lockstep).

use std::time::Duration;

use rls_core::{LrcConfig, RliConfig, Server, ServerConfig, UpdateConfig, UpdateMode};
use rls_storage::BackendProfile;

/// Parsed harness options.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Paper-scale run.
    pub full: bool,
    /// Multiplier on default workload sizes.
    pub scale: f64,
    /// Trials per data point.
    pub trials: usize,
    /// LRC catalog shards (`--shards <n>`, default 1 = classic engine).
    pub shards: usize,
    /// Client pipeline depth (`--pipeline <n>`, default 1 = lockstep).
    pub pipeline: usize,
}

impl Scale {
    /// Parses process arguments (ignores unknown flags, so the target also
    /// tolerates `cargo bench`'s own arguments like `--bench`).
    pub fn from_args() -> Self {
        let mut s = Self {
            full: false,
            scale: 1.0,
            trials: 3,
            shards: 1,
            pipeline: 1,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => s.full = true,
                "--scale" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        s.scale = v;
                    }
                }
                "--trials" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        s.trials = v;
                    }
                }
                "--shards" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        s.shards = v;
                    }
                }
                "--pipeline" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        s.pipeline = v;
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// Picks `dflt` scaled, or `full` under `--full`.
    pub fn pick(&self, dflt: u64, full: u64) -> u64 {
        if self.full {
            full
        } else {
            ((dflt as f64) * self.scale).round().max(1.0) as u64
        }
    }
}

/// Prints an exhibit header.
pub fn banner(exhibit: &str, caption: &str, scale: &Scale) {
    println!();
    println!("=== {exhibit} — {caption} ===");
    println!(
        "    mode: {}  (trials per point: {})",
        if scale.full { "FULL (paper-scale)" } else { "scaled-down default" },
        scale.trials
    );
}

/// Prints one aligned table row.
pub fn row(cells: &[String]) {
    let line = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// Prints an aligned header row followed by a rule.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cells.len()));
}

/// Starts a pure-LRC server with the given backend profile. Durable
/// profiles get a fresh WAL under the system temp directory.
pub fn start_lrc(profile: BackendProfile) -> Server {
    start_lrc_group_commit(profile, true)
}

/// Starts a pure-LRC server with the catalog partitioned into `shards`
/// LFN-hash shards (1 = the classic single engine). Durable profiles get a
/// fresh per-shard WAL family under the system temp directory. The worker
/// pool is sized to at least one thread per shard so the measurement sees
/// storage-level scaling, not an artificially small pool: each shard can
/// have a commit (and its WAL sync) in flight concurrently.
pub fn start_lrc_sharded(profile: BackendProfile, shards: usize) -> Server {
    let wal_path = match profile.flush {
        rls_storage::FlushMode::None => None,
        _ => Some(fresh_wal_path("lrc")),
    };
    Server::start(ServerConfig {
        lrc: Some(LrcConfig {
            profile,
            wal_path,
            update: UpdateConfig::default(),
            group_commit: true,
            shards,
        }),
        worker_threads: shards.max(4),
        ..ServerConfig::default()
    })
    .expect("start sharded LRC server")
}

/// Starts a pure-LRC server with an explicit group-commit setting.
/// Figure 11's durable-write columns compare the two paths: with group
/// commit off, a bulk request pays one WAL commit (and one sync under
/// per-commit flush) per item — the write-amplified baseline.
pub fn start_lrc_group_commit(profile: BackendProfile, group_commit: bool) -> Server {
    let wal_path = match profile.flush {
        rls_storage::FlushMode::None => None,
        _ => Some(fresh_wal_path("lrc")),
    };
    Server::start(ServerConfig {
        lrc: Some(LrcConfig {
            profile,
            wal_path,
            update: UpdateConfig::default(),
            group_commit,
            shards: 1,
        }),
        ..ServerConfig::default()
    })
    .expect("start LRC server")
}

/// Starts a pure-RLI server (relational store, generous expiry).
pub fn start_rli() -> Server {
    Server::start(ServerConfig {
        rli: Some(RliConfig {
            expire_timeout: Duration::from_secs(24 * 3600),
            ..Default::default()
        }),
        ..ServerConfig::default()
    })
    .expect("start RLI server")
}

/// Starts a pure-RLI server with the index partitioned into `shards`
/// LFN-hash shards (1 = the classic single-lock index). Durable profiles
/// get a fresh WAL family (`.s<i>` per shard) under the system temp
/// directory. The worker pool is sized to at least one thread per shard so
/// concurrent update streams can actually land on distinct shards — each
/// shard can have an apply (and its WAL sync) in flight concurrently.
pub fn start_rli_sharded(profile: BackendProfile, shards: usize) -> Server {
    let wal_path = match profile.flush {
        rls_storage::FlushMode::None => None,
        _ => Some(fresh_wal_path("rli")),
    };
    Server::start(ServerConfig {
        rli: Some(RliConfig {
            profile,
            wal_path,
            expire_timeout: Duration::from_secs(24 * 3600),
            shards,
            ..Default::default()
        }),
        worker_threads: shards.max(4),
        ..ServerConfig::default()
    })
    .expect("start sharded RLI server")
}

/// Starts an LRC wired to push updates to `rli_addr` with the given update
/// configuration.
pub fn start_lrc_with_updates(
    profile: BackendProfile,
    update: UpdateConfig,
    rli_addr: &str,
    bloom: bool,
) -> Server {
    let server = Server::start(ServerConfig {
        lrc: Some(LrcConfig {
            profile,
            wal_path: None,
            update,
            group_commit: true,
            shards: 1,
        }),
        ..ServerConfig::default()
    })
    .expect("start LRC server");
    let flags = if bloom { rls_core::FLAG_BLOOM } else { 0 };
    server
        .lrc()
        .expect("lrc role")
        .catalog()
        .add_rli(rli_addr, flags, &[])
        .expect("register RLI");
    server
}

/// A unique WAL path in the temp directory.
pub fn fresh_wal_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("rls-bench");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join(format!(
        "{tag}-{}-{}.wal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A no-op update configuration (manual triggering only).
pub fn manual_updates() -> UpdateConfig {
    UpdateConfig {
        mode: UpdateMode::None,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        let s = Scale {
            full: false,
            scale: 0.5,
            trials: 3,
            shards: 1,
            pipeline: 1,
        };
        assert_eq!(s.pick(1000, 1_000_000), 500);
        let f = Scale {
            full: true,
            scale: 1.0,
            trials: 3,
            shards: 1,
            pipeline: 1,
        };
        assert_eq!(f.pick(1000, 1_000_000), 1_000_000);
    }

    #[test]
    fn servers_start() {
        let lrc = start_lrc(BackendProfile::mysql_buffered());
        let rli = start_rli();
        assert!(lrc.addr().port() != 0);
        assert!(rli.addr().port() != 0);
    }
}
