//! The RLI service: relational store for uncompressed updates plus the
//! in-memory Bloom-filter store.
//!
//! §3.1 of the paper: *"the RLI server uses a relational database back end
//! when it receives full, uncompressed updates from LRCs. … When an RLI
//! receives soft state updates using Bloom filter compression, no database
//! is used in the RLI; Bloom filters are instead stored in RLI memory."*
//! One server may receive both kinds concurrently (different LRCs may use
//! different modes); queries consult both stores.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use rls_bloom::BloomFilter;
use rls_metrics::{Counter, Registry};
use rls_proto::LagStamp;
use rls_storage::{RliQueryHit, ShardedRliDatabase};
use rls_types::{ErrorCode, Glob, RlsError, RlsResult, Timestamp};

use crate::config::RliConfig;

/// A Bloom filter held for one LRC, with its arrival time (Bloom summaries
/// are soft state too and expire like relational entries).
#[derive(Debug, Clone)]
struct StoredBloom {
    filter: Arc<BloomFilter>,
    received_at: Timestamp,
}

/// Reassembly position for one LRC's chunked full update: which update the
/// stream belongs to and the next chunk sequence expected.
#[derive(Clone, Copy, Debug)]
struct ChunkCursor {
    update_id: u64,
    next_seq: u32,
}

/// Per-LRC freshness bookkeeping behind the staleness gauges: when this
/// RLI last applied *anything* from the LRC, how many names the LRC itself
/// claimed to hold at its last whole-state push (completed full update or
/// Bloom filter), and the names accumulated so far in an in-flight chunked
/// full update.
#[derive(Clone, Copy, Debug)]
struct Freshness {
    last_apply: Instant,
    claimed_count: Option<u64>,
    pending_full: u64,
}

/// The RLI role of a server.
pub struct RliService {
    /// Relational store for uncompressed/incremental updates, partitioned
    /// by LFN hash (`rli_shards`; 1 = the legacy single engine). Shard
    /// locks live inside the container, so concurrent senders whose names
    /// hash to different shards apply in parallel.
    db: ShardedRliDatabase,
    /// Apply-transaction counters per shard, pre-resolved so the hot
    /// apply path never takes the registry lock.
    shard_applies: Vec<Counter>,
    blooms: RwLock<HashMap<String, StoredBloom>>,
    /// Per-LRC chunk reassembly state for sequenced full updates (one
    /// cursor per sender, replaced when a new update id arrives).
    chunks: Mutex<HashMap<String, ChunkCursor>>,
    /// Per-LRC freshness bookkeeping feeding the staleness gauges.
    freshness: Mutex<HashMap<String, Freshness>>,
    config: RliConfig,
    updates_received: AtomicU64,
    queries: AtomicU64,
    expired_total: AtomicU64,
    /// Role-level metrics: `rli.apply_*` durations, expire sweeps, and the
    /// state of the most recently received Bloom filter.
    metrics: Registry,
}

impl std::fmt::Debug for RliService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RliService").finish_non_exhaustive()
    }
}

impl RliService {
    /// Builds the service, opening or creating the relational store (all
    /// `config.shards` partitions of it).
    pub fn new(config: RliConfig) -> RlsResult<Self> {
        let db =
            ShardedRliDatabase::open(config.profile, config.wal_path.as_deref(), config.shards)?;
        let metrics = Registry::new();
        let shard_applies = (0..db.shard_count())
            .map(|i| metrics.counter(&format!("rli.shard.{i}.applies")))
            .collect();
        Ok(Self {
            db,
            shard_applies,
            blooms: RwLock::new(HashMap::new()),
            chunks: Mutex::new(HashMap::new()),
            freshness: Mutex::new(HashMap::new()),
            config,
            updates_received: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            expired_total: AtomicU64::new(0),
            metrics,
        })
    }

    /// The role configuration.
    pub fn config(&self) -> &RliConfig {
        &self.config
    }

    /// The sharded relational store (per-shard access, fan-out reads,
    /// engine stats).
    pub fn db(&self) -> &ShardedRliDatabase {
        &self.db
    }

    /// LRCs currently tracked by the staleness plane (freshness entries).
    /// Expire sweeps evict entries for senders that no longer hold any
    /// state, so this stays bounded by the live sender population.
    pub fn staleness_tracked_lrcs(&self) -> usize {
        self.freshness.lock().len()
    }

    /// The RLI's metrics registry, merged into the server's stats report.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Mutates `lrc`'s freshness entry (creating it on first contact) and
    /// touches its last-apply instant. Called with no other lock held.
    fn touch_freshness(&self, lrc: &str, f: impl FnOnce(&mut Freshness)) {
        let mut fresh = self.freshness.lock();
        let entry = fresh.entry(lrc.to_owned()).or_insert_with(|| Freshness {
            last_apply: Instant::now(),
            claimed_count: None,
            pending_full: 0,
        });
        entry.last_apply = Instant::now();
        f(entry);
    }

    /// Applies one chunk of an uncompressed full update. Names are
    /// bucketed by owner shard and each touched shard applies its bucket
    /// as one transaction under its own lock (ascending shard order, one
    /// lock at a time), so chunks from senders on disjoint shards never
    /// wait on each other.
    pub fn apply_full_chunk(&self, lrc: &str, lfns: &[String], at: Timestamp) -> RlsResult<u64> {
        self.updates_received.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let mut n = 0;
        for (i, bucket) in self
            .db
            .bucket_by_shard(lfns.iter().map(|s| s.as_str()))
            .into_iter()
            .enumerate()
        {
            if bucket.is_empty() {
                continue;
            }
            n += self
                .db
                .shard(i)
                .write()
                .upsert_batch(lrc, bucket, at)?;
            self.shard_applies[i].inc();
        }
        self.metrics
            .histogram("rli.apply_full")
            .record(t0.elapsed());
        self.touch_freshness(lrc, |_| {});
        Ok(n)
    }

    /// Applies one chunk of a *sequenced* full update, validating the
    /// stream position the wire frame carries instead of discarding it.
    ///
    /// Rules, per sending LRC:
    ///
    /// * a chunk for a **new `update_id`** must start at `seq` 0 (it
    ///   supersedes any unfinished stream from that LRC);
    /// * within an update, chunks must arrive **in order** (`seq` equal to
    ///   the next expected) — gaps and stale duplicates are rejected with
    ///   `BadRequest` and apply nothing;
    /// * a **retransmit of the chunk just applied** (the client's
    ///   transport-level retry after a lost response) is acknowledged
    ///   idempotently without re-applying, counted under
    ///   `rli.chunk_retransmits`.
    pub fn apply_full_chunk_seq(
        &self,
        lrc: &str,
        update_id: u64,
        seq: u32,
        last: bool,
        lfns: &[String],
        at: Timestamp,
    ) -> RlsResult<u64> {
        let mut chunks = self.chunks.lock();
        match chunks.get(lrc) {
            Some(c) if c.update_id == update_id => {
                if seq.checked_add(1) == Some(c.next_seq) {
                    self.metrics.counter("rli.chunk_retransmits").inc();
                    return Ok(0);
                }
                if seq != c.next_seq {
                    return Err(RlsError::bad_request(format!(
                        "chunk seq {seq} for lrc {lrc:?} update {update_id}: expected {} \
                         (duplicate or out-of-order chunk)",
                        c.next_seq
                    )));
                }
            }
            _ => {
                if seq != 0 {
                    return Err(RlsError::bad_request(format!(
                        "chunk seq {seq} for lrc {lrc:?} update {update_id}: \
                         a new update must start at seq 0"
                    )));
                }
            }
        }
        // Keep the cursor after `last` too: it makes a retransmitted final
        // chunk idempotent and is replaced by the next update id anyway.
        chunks.insert(
            lrc.to_owned(),
            ChunkCursor {
                update_id,
                next_seq: seq + 1,
            },
        );
        drop(chunks);
        if last {
            self.metrics.counter("rli.full_updates_completed").inc();
        }
        let n = self.apply_full_chunk(lrc, lfns, at)?;
        // Account the chunk toward the sender's claimed mapping count: a
        // completed stream tells us exactly how many names the LRC holds,
        // which the divergence gauge compares against our own view.
        self.touch_freshness(lrc, |f| {
            if seq == 0 {
                f.pending_full = 0;
            }
            f.pending_full += lfns.len() as u64;
            if last {
                f.claimed_count = Some(f.pending_full);
                f.pending_full = 0;
            }
        });
        Ok(n)
    }

    /// Applies an incremental (immediate-mode) update. Adds and removes
    /// are bucketed by owner shard; each touched shard applies its adds
    /// (one transaction) then its removes under a single acquisition of
    /// its own lock. A name's add and remove both route to its owner
    /// shard, so per-name ordering is exactly the single-lock behaviour;
    /// only cross-shard atomicity is relaxed (a concurrent fan-out read
    /// may see a delta half-applied — soft state the next update repairs).
    pub fn apply_delta(
        &self,
        lrc: &str,
        added: &[String],
        removed: &[String],
        at: Timestamp,
    ) -> RlsResult<()> {
        self.updates_received.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let added_buckets = self.db.bucket_by_shard(added.iter().map(|s| s.as_str()));
        let removed_buckets = self.db.bucket_by_shard(removed.iter().map(|s| s.as_str()));
        for (i, (add, rm)) in added_buckets
            .into_iter()
            .zip(removed_buckets)
            .enumerate()
        {
            if add.is_empty() && rm.is_empty() {
                continue;
            }
            let mut shard = self.db.shard(i).write();
            if !add.is_empty() {
                shard.upsert_batch(lrc, add, at)?;
            }
            for lfn in rm {
                shard.remove(lfn, lrc)?;
            }
            drop(shard);
            self.shard_applies[i].inc();
        }
        self.metrics
            .histogram("rli.apply_delta")
            .record(t0.elapsed());
        // Deltas refresh the age gauge but not the claimed count — drift
        // between deltas and the last whole-state push is exactly what the
        // divergence gauge is watching for.
        self.touch_freshness(lrc, |_| {});
        Ok(())
    }

    /// Stores (replaces) the Bloom filter for an LRC.
    pub fn apply_bloom(&self, lrc: &str, filter: BloomFilter, at: Timestamp) {
        self.updates_received.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        // Gauges describe the most recently received filter — enough to spot
        // an over-full (high false-positive) sender at a glance.
        self.metrics
            .counter("rli.bloom_bits_set")
            .set(filter.set_bits());
        self.metrics
            .counter("rli.bloom_bits_total")
            .set(filter.bit_len());
        self.metrics
            .counter("rli.bloom_fpp_ppm")
            .set((filter.estimated_fpp() * 1_000_000.0) as u64);
        let entries = filter.entries();
        self.blooms.write().insert(
            lrc.to_owned(),
            StoredBloom {
                filter: Arc::new(filter),
                received_at: at,
            },
        );
        self.metrics
            .histogram("rli.apply_bloom")
            .record(t0.elapsed());
        self.touch_freshness(lrc, |f| f.claimed_count = Some(entries));
    }

    /// Records a sender's [`LagStamp`] into the update-lag plane: the
    /// `rli.update_lag` histogram (microseconds between the LRC committing
    /// the shipped state and this RLI applying it) plus per-LRC
    /// `rli.update_lag_ms.<lrc>` / `rli.commit_seq.<lrc>` gauges.
    pub fn note_update_stamp(&self, lrc: &str, stamp: LagStamp) {
        let now = rls_metrics::unix_micros_now();
        let lag_micros = now.saturating_sub(stamp.commit_unix_micros);
        self.metrics
            .histogram("rli.update_lag")
            .record(Duration::from_micros(lag_micros));
        self.metrics
            .counter(&format!("rli.update_lag_ms.{lrc}"))
            .set(lag_micros / 1_000);
        self.metrics
            .counter(&format!("rli.commit_seq.{lrc}"))
            .set(stamp.commit_seq);
    }

    /// Refreshes the per-LRC staleness gauges from the freshness map:
    /// `rli.lrc.staleness_ms.<lrc>` (time since this RLI last applied
    /// anything from the LRC) and `rli.mapping_divergence.<lrc>` (absolute
    /// difference between the mapping count the LRC claimed at its last
    /// whole-state push and the count this RLI currently holds for it).
    /// Also refreshes `rli.shard.imbalance_ppm` — the hottest shard's
    /// association-count excess over the per-shard mean, ×10⁶. Called on
    /// the telemetry sampler cadence.
    pub fn refresh_staleness_gauges(&self) {
        let counts = self.db.per_shard_association_counts();
        let total: u64 = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / counts.len() as f64;
        let imbalance = if mean > 0.0 {
            (((max as f64 - mean) / mean) * 1_000_000.0) as u64
        } else {
            0
        };
        self.metrics
            .counter("rli.shard.imbalance_ppm")
            .set(imbalance);
        let fresh = self.freshness.lock();
        for (lrc, f) in fresh.iter() {
            let age_ms = f.last_apply.elapsed().as_millis().min(u64::MAX as u128) as u64;
            self.metrics
                .counter(&format!("rli.lrc.staleness_ms.{lrc}"))
                .set(age_ms);
            if let Some(claimed) = f.claimed_count {
                // A Bloom-mode sender's view is the stored filter itself —
                // always whole-state, so it never diverges; relational
                // senders are compared against the O(1) per-LRC refcount.
                let held = match self.blooms.read().get(lrc) {
                    Some(stored) => stored.filter.entries(),
                    None => self.db.count_for_lrc(lrc),
                };
                self.metrics
                    .counter(&format!("rli.mapping_divergence.{lrc}"))
                    .set(claimed.abs_diff(held));
            }
        }
    }

    /// Queries all stores for a logical name. Hits from Bloom filters carry
    /// the filter's arrival time (the filter holds no per-name timestamps).
    ///
    /// Errors with [`ErrorCode::LogicalNameNotFound`] when no store knows
    /// the name, matching the relational path's behaviour.
    pub fn query(&self, lfn: &str) -> RlsResult<Vec<RliQueryHit>> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut hits = match self.db.query(lfn) {
            Ok(hits) => hits,
            Err(e) if e.code() == ErrorCode::LogicalNameNotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        // Check every stored filter — the per-query cost that grows with
        // the number of LRCs (the paper's Fig. 10, 100-filter case).
        let blooms = self.blooms.read();
        for (lrc, stored) in blooms.iter() {
            if stored.filter.contains(lfn) {
                hits.push(RliQueryHit {
                    lrc: Arc::from(lrc.as_str()),
                    updated_at: stored.received_at,
                });
            }
        }
        if hits.is_empty() {
            Err(RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("logical name {lfn:?} not in index"),
            ))
        } else {
            Ok(hits)
        }
    }

    /// Wildcard query — relational store only (the paper: wildcard searches
    /// "are not possible when using Bloom filter compression").
    pub fn wildcard_query(
        &self,
        glob: &Glob,
        limit: usize,
    ) -> RlsResult<Vec<(Arc<str>, Arc<str>)>> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.db.wildcard_query(glob, limit)
    }

    /// The LRCs currently known to this RLI (relational + Bloom senders).
    pub fn lrc_list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.db.lrc_list().iter().map(|s| s.to_string()).collect();
        for lrc in self.blooms.read().keys() {
            if !names.iter().any(|n| n == lrc) {
                names.push(lrc.clone());
            }
        }
        names.sort();
        names
    }

    /// Number of Bloom filters held.
    pub fn bloom_count(&self) -> u64 {
        self.blooms.read().len() as u64
    }

    /// Snapshot of the stored Bloom filters: `(lrc, filter)` pairs.
    /// Used by hierarchical forwarding (§7).
    pub fn bloom_snapshot_list(&self) -> Vec<(String, Arc<BloomFilter>)> {
        self.blooms
            .read()
            .iter()
            .map(|(lrc, stored)| (lrc.clone(), Arc::clone(&stored.filter)))
            .collect()
    }

    /// Associations in the relational store (summed across shards).
    pub fn association_count(&self) -> u64 {
        self.db.association_count()
    }

    /// Soft-state updates received (all kinds).
    pub fn updates_received(&self) -> u64 {
        self.updates_received.load(Ordering::Relaxed)
    }

    /// Queries served.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total associations + filters expired so far.
    pub fn expired_total(&self) -> u64 {
        self.expired_total.load(Ordering::Relaxed)
    }

    /// One expire pass over both stores (the paper's expire thread body).
    pub fn expire(&self, now: Timestamp) -> RlsResult<u64> {
        self.expire_with_timeout(now, self.config.expire_timeout)
    }

    /// Expire pass with an explicit timeout (tests and benches). The
    /// relational sweep visits one shard at a time, so senders applying
    /// to other shards never wait on it.
    pub fn expire_with_timeout(&self, now: Timestamp, timeout: Duration) -> RlsResult<u64> {
        let t0 = std::time::Instant::now();
        let mut n = self.db.expire(now, timeout)?;
        let mut blooms = self.blooms.write();
        let before = blooms.len() as u64;
        blooms.retain(|_, stored| !stored.received_at.is_expired(now, timeout));
        n += before - blooms.len() as u64;
        drop(blooms);
        self.evict_dead_cursors();
        self.expired_total.fetch_add(n, Ordering::Relaxed);
        self.metrics
            .histogram("rli.expire_sweep")
            .record(t0.elapsed());
        self.metrics.counter("rli.expired_last_sweep").set(n);
        Ok(n)
    }

    /// Drops chunk cursors and freshness entries for LRCs that no longer
    /// hold any state here — neither relational associations nor a Bloom
    /// filter. Without this the `chunks`/`freshness` maps grow one entry
    /// per sender that ever contacted the RLI and never shrink, a slow
    /// leak for senders that go away for good. Run from the expire sweep:
    /// a sender only reaches zero state after staying silent past the
    /// soft-state timeout, at which point any in-flight chunk stream of
    /// its is long dead (a returning sender starts a new update at seq 0,
    /// which an empty cursor slot accepts).
    fn evict_dead_cursors(&self) {
        let live: std::collections::HashSet<String> = self
            .db
            .lrc_list()
            .iter()
            .map(|s| s.to_string())
            .chain(self.blooms.read().keys().cloned())
            .collect();
        self.chunks.lock().retain(|lrc, _| live.contains(lrc));
        self.freshness.lock().retain(|lrc, _| live.contains(lrc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_bloom::BloomParams;

    fn svc() -> RliService {
        RliService::new(RliConfig::default()).unwrap()
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_unix_secs(s)
    }

    fn bloom_of(names: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::with_capacity(BloomParams::PAPER, 1000);
        for n in names {
            f.insert(n);
        }
        f
    }

    #[test]
    fn full_chunks_and_query() {
        let s = svc();
        s.apply_full_chunk(
            "lrc-1",
            &["lfn://a".to_owned(), "lfn://b".to_owned()],
            ts(10),
        )
        .unwrap();
        let hits = s.query("lfn://a").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(&*hits[0].lrc, "lrc-1");
        assert!(s.query("lfn://zzz").is_err());
        assert_eq!(s.updates_received(), 1);
    }

    #[test]
    fn sequenced_chunks_reject_gaps_and_stale_duplicates() {
        let s = svc();
        let names = |ns: &[&str]| ns.iter().map(|n| (*n).to_owned()).collect::<Vec<_>>();
        // In-order stream applies.
        s.apply_full_chunk_seq("lrc-1", 7, 0, false, &names(&["lfn://a"]), ts(1))
            .unwrap();
        s.apply_full_chunk_seq("lrc-1", 7, 1, true, &names(&["lfn://b"]), ts(1))
            .unwrap();
        assert_eq!(s.query("lfn://a").unwrap().len(), 1);
        assert_eq!(s.query("lfn://b").unwrap().len(), 1);
        // A gap is rejected and applies nothing.
        let e = s
            .apply_full_chunk_seq("lrc-1", 8, 0, false, &names(&["lfn://c"]), ts(2))
            .map(|_| ())
            .and(s.apply_full_chunk_seq("lrc-1", 8, 2, false, &names(&["lfn://skip"]), ts(2))
                .map(|_| ()))
            .unwrap_err();
        assert_eq!(e.code(), ErrorCode::BadRequest);
        assert!(s.query("lfn://skip").is_err());
        // A stale duplicate from earlier in the stream is rejected too.
        s.apply_full_chunk_seq("lrc-1", 8, 1, false, &names(&["lfn://d"]), ts(2))
            .unwrap();
        let e = s
            .apply_full_chunk_seq("lrc-1", 8, 0, false, &names(&["lfn://c"]), ts(2))
            .unwrap_err();
        assert_eq!(e.code(), ErrorCode::BadRequest);
        // A new update id must start at seq 0.
        let e = s
            .apply_full_chunk_seq("lrc-1", 9, 3, true, &names(&["lfn://e"]), ts(3))
            .unwrap_err();
        assert_eq!(e.code(), ErrorCode::BadRequest);
        // Cursors are per LRC: another sender is unaffected.
        s.apply_full_chunk_seq("lrc-2", 1, 0, true, &names(&["lfn://z"]), ts(3))
            .unwrap();
    }

    #[test]
    fn retransmit_of_last_applied_chunk_is_idempotent() {
        let s = svc();
        let chunk = vec!["lfn://r".to_owned()];
        assert_eq!(s.apply_full_chunk_seq("lrc-1", 3, 0, false, &chunk, ts(1)).unwrap(), 1);
        // Transport retry re-sends the same chunk: acknowledged, not
        // re-applied, and counted.
        assert_eq!(s.apply_full_chunk_seq("lrc-1", 3, 0, false, &chunk, ts(1)).unwrap(), 0);
        s.apply_full_chunk_seq("lrc-1", 3, 1, true, &chunk, ts(1))
            .unwrap();
        // Final chunk retransmits stay idempotent after `last`.
        assert_eq!(s.apply_full_chunk_seq("lrc-1", 3, 1, true, &chunk, ts(1)).unwrap(), 0);
        let counters = s.metrics().counter_snapshot();
        let retrans = counters
            .iter()
            .find(|(n, _)| n == "rli.chunk_retransmits")
            .expect("retransmit counter")
            .1;
        assert_eq!(retrans, 2);
        let completed = counters
            .iter()
            .find(|(n, _)| n == "rli.full_updates_completed")
            .expect("completion counter")
            .1;
        assert_eq!(completed, 1);
    }

    #[test]
    fn delta_updates() {
        let s = svc();
        s.apply_delta("lrc-1", &["lfn://a".to_owned()], &[], ts(10))
            .unwrap();
        assert_eq!(s.query("lfn://a").unwrap().len(), 1);
        s.apply_delta("lrc-1", &[], &["lfn://a".to_owned()], ts(20))
            .unwrap();
        assert!(s.query("lfn://a").is_err());
        // Removing an already-expired name is harmless.
        s.apply_delta("lrc-1", &[], &["lfn://gone".to_owned()], ts(21))
            .unwrap();
    }

    #[test]
    fn bloom_store_and_combined_query() {
        let s = svc();
        s.apply_full_chunk("lrc-db", &["lfn://shared".to_owned()], ts(5))
            .unwrap();
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://shared", "lfn://only-bloom"]), ts(7));
        let mut hits = s.query("lfn://shared").unwrap();
        hits.sort_by(|a, b| a.lrc.cmp(&b.lrc));
        assert_eq!(hits.len(), 2);
        assert_eq!(&*hits[0].lrc, "lrc-bloom");
        assert_eq!(hits[0].updated_at, ts(7));
        assert_eq!(&*hits[1].lrc, "lrc-db");
        let hits = s.query("lfn://only-bloom").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(s.bloom_count(), 1);
    }

    #[test]
    fn bloom_replacement_reflects_new_state() {
        let s = svc();
        s.apply_bloom("lrc-1", bloom_of(&["lfn://old"]), ts(1));
        s.apply_bloom("lrc-1", bloom_of(&["lfn://new"]), ts(2));
        assert!(s.query("lfn://old").is_err());
        assert_eq!(s.query("lfn://new").unwrap().len(), 1);
        assert_eq!(s.bloom_count(), 1);
    }

    #[test]
    fn expire_covers_both_stores() {
        let s = svc();
        s.apply_full_chunk("lrc-db", &["lfn://a".to_owned()], ts(100))
            .unwrap();
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://b"]), ts(100));
        s.apply_bloom("lrc-fresh", bloom_of(&["lfn://c"]), ts(195));
        let n = s
            .expire_with_timeout(ts(200), Duration::from_secs(30))
            .unwrap();
        assert_eq!(n, 2);
        assert!(s.query("lfn://a").is_err());
        assert!(s.query("lfn://b").is_err());
        assert_eq!(s.query("lfn://c").unwrap().len(), 1);
        assert_eq!(s.expired_total(), 2);
    }

    #[test]
    fn apply_and_expire_record_metrics() {
        let s = svc();
        s.apply_full_chunk("lrc-db", &["lfn://a".to_owned()], ts(100))
            .unwrap();
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://b"]), ts(100));
        s.expire_with_timeout(ts(200), Duration::from_secs(30))
            .unwrap();
        let hists = s.metrics().histogram_snapshot();
        let count = |name: &str| {
            hists
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
                .count
        };
        assert_eq!(count("rli.apply_full"), 1);
        assert_eq!(count("rli.apply_bloom"), 1);
        assert_eq!(count("rli.expire_sweep"), 1);
        let counters = s.metrics().counter_snapshot();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert!(get("rli.bloom_bits_set") > 0);
        assert!(get("rli.bloom_bits_total") >= get("rli.bloom_bits_set"));
        assert_eq!(get("rli.expired_last_sweep"), 2);
    }

    #[test]
    fn staleness_gauges_track_age_and_divergence() {
        let s = svc();
        let names = |ns: &[&str]| ns.iter().map(|n| (*n).to_owned()).collect::<Vec<_>>();
        // Completed full update: claimed count = 2, held count = 2.
        s.apply_full_chunk_seq("lrc-1", 1, 0, false, &names(&["lfn://a"]), ts(1))
            .unwrap();
        s.apply_full_chunk_seq("lrc-1", 1, 1, true, &names(&["lfn://b"]), ts(1))
            .unwrap();
        s.refresh_staleness_gauges();
        let get = |name: &str| {
            s.metrics()
                .counter_snapshot()
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert!(get("rli.lrc.staleness_ms.lrc-1") < 60_000);
        assert_eq!(get("rli.mapping_divergence.lrc-1"), 0);
        // A delta that drops a name opens a divergence window until the
        // next whole-state push.
        s.apply_delta("lrc-1", &[], &names(&["lfn://b"]), ts(2))
            .unwrap();
        s.refresh_staleness_gauges();
        assert_eq!(get("rli.mapping_divergence.lrc-1"), 1);
        // Bloom senders always claim exactly the stored filter.
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://x", "lfn://y"]), ts(3));
        s.refresh_staleness_gauges();
        assert_eq!(get("rli.mapping_divergence.lrc-bloom"), 0);
        assert!(get("rli.lrc.staleness_ms.lrc-bloom") < 60_000);
    }

    #[test]
    fn update_stamp_records_lag_plane() {
        use rls_proto::LagStamp;
        let s = svc();
        s.note_update_stamp(
            "lrc-1",
            LagStamp {
                commit_seq: 5,
                commit_unix_micros: rls_metrics::unix_micros_now().saturating_sub(42_000),
            },
        );
        let counters = s.metrics().counter_snapshot();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert!((42..10_000).contains(&get("rli.update_lag_ms.lrc-1")));
        assert_eq!(get("rli.commit_seq.lrc-1"), 5);
        let hists = s.metrics().histogram_snapshot();
        let lag = hists
            .iter()
            .find(|(n, _)| n == "rli.update_lag")
            .expect("lag histogram");
        assert_eq!(lag.1.count, 1);
        assert!(lag.1.sum_micros >= 42_000);
    }

    #[test]
    fn lrc_list_merges_stores() {
        let s = svc();
        s.apply_full_chunk("lrc-db", &["lfn://a".to_owned()], ts(1))
            .unwrap();
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://b"]), ts(1));
        assert_eq!(s.lrc_list(), vec!["lrc-bloom".to_owned(), "lrc-db".to_owned()]);
    }

    #[test]
    fn wildcard_ignores_bloom_store() {
        let s = svc();
        s.apply_full_chunk("lrc-db", &["lfn://x/1".to_owned()], ts(1))
            .unwrap();
        s.apply_bloom("lrc-bloom", bloom_of(&["lfn://x/2"]), ts(1));
        let hits = s
            .wildcard_query(&Glob::new("lfn://x/*").unwrap(), 100)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(&*hits[0].0, "lfn://x/1");
    }
}
