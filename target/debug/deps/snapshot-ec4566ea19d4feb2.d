/root/repo/target/debug/deps/snapshot-ec4566ea19d4feb2.d: crates/bench/benches/snapshot.rs

/root/repo/target/debug/deps/snapshot-ec4566ea19d4feb2: crates/bench/benches/snapshot.rs

crates/bench/benches/snapshot.rs:
