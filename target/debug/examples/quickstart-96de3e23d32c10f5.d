/root/repo/target/debug/examples/quickstart-96de3e23d32c10f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-96de3e23d32c10f5.rmeta: examples/quickstart.rs

examples/quickstart.rs:
