/root/repo/target/debug/deps/rls_bench-f409481f0df2f59c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-f409481f0df2f59c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-f409481f0df2f59c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
