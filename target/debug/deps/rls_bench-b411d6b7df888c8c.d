/root/repo/target/debug/deps/rls_bench-b411d6b7df888c8c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-b411d6b7df888c8c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-b411d6b7df888c8c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
