/root/repo/target/debug/examples/wan_replication-c2faea5f05682fad.d: examples/wan_replication.rs Cargo.toml

/root/repo/target/debug/examples/libwan_replication-c2faea5f05682fad.rmeta: examples/wan_replication.rs Cargo.toml

examples/wan_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
