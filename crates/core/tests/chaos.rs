//! Chaos convergence suite: every injected fault class must leave the RLI
//! with exactly the mapping set a fault-free run produces.
//!
//! The harness is `rls_faults::FaultPlan` — a seeded, deterministic script
//! of transport faults — installed on the LRC→RLI update plane through
//! `TestDeploymentBuilder::fault_hook`. Driver/observer clients
//! (`lrc_client`/`rli_client`) connect without the hook, so every
//! assertion reads the damaged system through an undamaged window.
//! Determinism contract: same seed + same topology + same workload ⇒ same
//! fault sequence, same retries, same final state (see `docs/FAULTS.md`).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use rls_core::testkit::TestDeployment;
use rls_core::RlsClient;
use rls_faults::FaultPlan;
use rls_net::{LinkProfile, RetryPolicy};
use rls_proto::ServerStatsWire;
use rls_types::{Dn, Timestamp};

/// Fast test-grade retry policy: enough attempts to outlast any scripted
/// fault burst, millisecond backoffs so suites stay quick.
fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(20),
        jitter_pct: 50,
        connect_timeout: Some(Duration::from_secs(2)),
        request_timeout: None,
    }
}

fn seed_names(dep: &TestDeployment, n: usize) {
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..n {
        c.create_mapping(&format!("lfn://chaos/f{i:02}"), &format!("pfn://site-a/f{i:02}"))
            .unwrap();
    }
}

fn rli_names(dep: &TestDeployment, i: usize) -> BTreeSet<String> {
    let mut c = dep.rli_client(i).unwrap();
    c.rli_wildcard_query("lfn://*", 10_000)
        .unwrap()
        .into_iter()
        .map(|(lfn, _lrc)| lfn)
        .collect()
}

fn counter(stats: &ServerStatsWire, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The reference: the same workload with no faults installed.
fn fault_free_state(n: usize) -> BTreeSet<String> {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    seed_names(&dep, n);
    for o in dep.force_updates() {
        o.unwrap();
    }
    rli_names(&dep, 0)
}

/// Fault class: connection refused. The first two dials toward the RLI
/// are refused; backoff-retry dials again and the update completes.
#[test]
fn converges_through_connection_refusals() {
    let expected = fault_free_state(10);
    let plan = Arc::new(FaultPlan::builder(0xC0FFEE).refuse_connects("*", 2).build());
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .retry(quick_retry())
        .fault_hook(plan.clone())
        .build()
        .unwrap();
    seed_names(&dep, 10);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    assert_eq!(plan.stats().refused(), 2);
    // The retries are visible on the operator surface (`rls-cli stats`
    // renders these same counters).
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(
        counter(&stats, "softstate.retry_total") >= 2,
        "retry counter: {stats:?}"
    );
}

/// Fault class: mid-frame disconnect. One update frame is cut in half on
/// the wire; the sender reconnects and re-sends — chunk applies are
/// idempotent upserts, so the RLI converges with no duplicates.
#[test]
fn converges_through_mid_frame_disconnect() {
    let expected = fault_free_state(10);
    // Send event 0 is the Hello handshake; event 1 is the first chunk.
    let plan = Arc::new(FaultPlan::builder(7).drop_mid_frame("*", 1).build());
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .chunk_size(3) // 10 names → 4 chunks, the drop lands mid-stream
        .retry(quick_retry())
        .fault_hook(plan.clone())
        .build()
        .unwrap();
    seed_names(&dep, 10);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    assert_eq!(plan.stats().dropped(), 1);
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(counter(&stats, "softstate.retry_total") >= 1);
}

/// Fault class: read stall. The first response read hangs (bounded by the
/// injected stall) and times out; the retry reconnects and completes.
#[test]
fn converges_through_read_stall() {
    let expected = fault_free_state(8);
    let plan = Arc::new(
        FaultPlan::builder(99)
            .stall_recv("*", 0, Duration::from_millis(20))
            .build(),
    );
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .retry(quick_retry())
        .fault_hook(plan.clone())
        .build()
        .unwrap();
    seed_names(&dep, 8);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    assert_eq!(plan.stats().stalled(), 1);
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(counter(&stats, "softstate.retry_total") >= 1);
}

/// Fault class: slow link. Every update-plane send and receive is delayed;
/// nothing fails, nothing needs retrying, state still converges.
#[test]
fn converges_over_slow_link() {
    let expected = fault_free_state(6);
    let plan = Arc::new(
        FaultPlan::builder(3)
            .slow_link("*", Duration::from_millis(1))
            .build(),
    );
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .fault_hook(plan.clone()) // note: default fail-fast retry policy
        .build()
        .unwrap();
    seed_names(&dep, 6);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    assert!(plan.stats().delayed() > 0);
    assert_eq!(plan.stats().refused() + plan.stats().dropped(), 0);
}

/// Fault class: RLI crash + restart. Deltas toward the dead RLI park in
/// its backlog; after restart the backlog drains and the periodic full
/// refresh rebuilds the index from soft state (§3.3/§6: the RLI "can be
/// reconstructed from the periodic soft-state updates").
#[test]
fn converges_through_rli_crash_and_restart() {
    // Reference run: same workload, no crash.
    let expected = {
        let dep = TestDeployment::builder()
            .lrcs(1)
            .rlis(1)
            .immediate(true)
            .build()
            .unwrap();
        seed_names(&dep, 10);
        for r in dep.flush_deltas() {
            r.unwrap();
        }
        for o in dep.force_updates() {
            o.unwrap();
        }
        rli_names(&dep, 0)
    };

    let mut dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..5 {
        c.create_mapping(&format!("lfn://chaos/f{i:02}"), &format!("pfn://site-a/f{i:02}"))
            .unwrap();
    }
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    // Crash. Changes keep accumulating; the flush fails and the deltas
    // wait in the dead target's backlog instead of being lost or wedging
    // the journal.
    dep.crash_rli(0);
    for i in 5..10 {
        c.create_mapping(&format!("lfn://chaos/f{i:02}"), &format!("pfn://site-a/f{i:02}"))
            .unwrap();
    }
    assert!(dep.lrcs[0].flush_deltas().is_err());
    let lrc = dep.lrcs[0].lrc().unwrap();
    assert_eq!(lrc.pending_deltas(), 0);
    assert_eq!(lrc.pending_backlog(), 5);

    // Restart on the same address with an EMPTY index, then drain the
    // backlog and run the healing full refresh.
    dep.restart_rli(0).unwrap();
    let outcomes = dep.lrcs[0].flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].names, 5);
    assert_eq!(dep.lrcs[0].lrc().unwrap().pending_backlog(), 0);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    // The outage is visible on the operator surface.
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(counter(&stats, "softstate.rli_unreachable") >= 1);
}

/// Determinism: two runs with the same seed script the exact same faults
/// (probabilistic rules included) and land in the same state.
#[test]
fn identical_seeds_script_identical_chaos() {
    let run = |seed: u64| -> (u64, u64, BTreeSet<String>) {
        let plan = Arc::new(
            FaultPlan::builder(seed)
                .refuse_connects_prob("*", 250_000) // 25% of dials refused
                .build(),
        );
        let dep = TestDeployment::builder()
            .lrcs(1)
            .rlis(1)
            .retry(RetryPolicy {
                max_retries: 8,
                ..quick_retry()
            })
            .fault_hook(plan.clone())
            .build()
            .unwrap();
        seed_names(&dep, 6);
        for o in dep.force_updates() {
            o.unwrap();
        }
        (plan.stats().refused(), plan.stats().total(), rli_names(&dep, 0))
    };
    let a = run(0xDEAD_BEEF);
    let b = run(0xDEAD_BEEF);
    assert_eq!(a, b, "same seed must replay the same chaos");
    assert_eq!(a.2, fault_free_state(6), "and still converge");
}

/// Expiry chaos: kill an LRC mid-run. Its RLI entries die by timeout on
/// schedule, while a surviving LRC's refreshed entries are retained —
/// §3.2's soft-state expiration doing its cleanup job.
#[test]
fn dead_lrc_entries_expire_on_schedule() {
    let dep = TestDeployment::builder().lrcs(2).rlis(1).build().unwrap();
    let mut c0 = dep.lrc_client(0).unwrap();
    let mut c1 = dep.lrc_client(1).unwrap();
    for i in 0..2 {
        c0.create_mapping(&format!("lfn://doomed/f{i}"), &format!("pfn://dead/{i}"))
            .unwrap();
        c1.create_mapping(&format!("lfn://alive/g{i}"), &format!("pfn://live/{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        o.unwrap();
    }
    let all = rli_names(&dep, 0);
    assert!(all.contains("lfn://doomed/f0") && all.contains("lfn://alive/g0"));

    // LRC 0 dies; nothing un-registers its entries. Let their timestamps
    // age past the timeout while the survivor keeps refreshing.
    dep.crash_lrc(0);
    std::thread::sleep(Duration::from_millis(400));
    for o in dep.lrcs[1].run_update_cycle().unwrap() {
        o.unwrap();
    }
    let expired = dep.rlis[0]
        .rli()
        .unwrap()
        .expire_with_timeout(Timestamp::now(), Duration::from_millis(250))
        .unwrap();
    assert!(expired >= 2, "dead LRC's associations must expire: {expired}");
    let names = rli_names(&dep, 0);
    assert!(
        !names.iter().any(|n| n.starts_with("lfn://doomed/")),
        "doomed entries survived expiry: {names:?}"
    );
    assert!(
        names.contains("lfn://alive/g0") && names.contains("lfn://alive/g1"),
        "refreshed entries must be retained: {names:?}"
    );
}

/// Crash chaos meets the bulk path: an RLI dies between two bulk batches.
/// The second batch still group-commits locally (per-item statuses intact,
/// duplicate included), its deltas park in the dead target's backlog, and
/// after restart the backlog drains and the index converges on exactly the
/// fault-free state.
#[test]
fn bulk_writes_converge_through_rli_crash_mid_stream() {
    use rls_types::Mapping;
    let batch = |lo: usize, hi: usize| -> Vec<Mapping> {
        (lo..hi)
            .map(|i| {
                Mapping::new(format!("lfn://chaos/f{i:02}"), format!("pfn://site-a/f{i:02}"))
                    .unwrap()
            })
            .collect()
    };
    // Reference run: the same two bulk batches, no crash.
    let expected = {
        let dep = TestDeployment::builder()
            .lrcs(1)
            .rlis(1)
            .immediate(true)
            .build()
            .unwrap();
        let mut c = dep.lrc_client(0).unwrap();
        assert!(c.bulk_create(batch(0, 5)).unwrap().is_empty());
        assert!(c.bulk_create(batch(5, 10)).unwrap().is_empty());
        for r in dep.flush_deltas() {
            r.unwrap();
        }
        for o in dep.force_updates() {
            o.unwrap();
        }
        rli_names(&dep, 0)
    };

    let mut dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    assert!(c.bulk_create(batch(0, 5)).unwrap().is_empty());
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    // Crash. The next bulk batch commits locally all the same — and keeps
    // its per-item error reporting: one slot collides with the first batch.
    dep.crash_rli(0);
    let mut second = batch(5, 10);
    second.insert(2, Mapping::new("lfn://chaos/f01", "pfn://dup").unwrap());
    let failures = c.bulk_create(second).unwrap();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, 2);
    // The flush toward the dead RLI fails; the batch's five fresh names
    // wait in that target's backlog (the failed slot journaled nothing).
    assert!(dep.lrcs[0].flush_deltas().is_err());
    let lrc = dep.lrcs[0].lrc().unwrap();
    assert_eq!(lrc.pending_deltas(), 0);
    assert_eq!(lrc.pending_backlog(), 5);

    // Restart empty, drain the backlog, run the healing full refresh.
    dep.restart_rli(0).unwrap();
    let outcomes = dep.lrcs[0].flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].names, 5);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(counter(&stats, "softstate.rli_unreachable") >= 1);
    assert!(counter(&stats, "wal.group_commits") >= 2);
}

/// The gauntlet at `shards = 4`: the same convergence contract must hold
/// when the LRC catalog is partitioned. A bulk create fans out across the
/// shard engines (one group commit per shard touched), the update plane
/// runs under scripted connection refusals, and the RLI still lands on
/// exactly the fault-free state — the per-shard commit counters prove the
/// write really was spread out.
#[test]
fn sharded_catalog_converges_through_chaos() {
    use rls_types::Mapping;
    let expected = fault_free_state(12);
    let plan = Arc::new(FaultPlan::builder(0x5AAD).refuse_connects("*", 2).build());
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .shards(4)
        .retry(quick_retry())
        .fault_hook(plan.clone())
        .build()
        .unwrap();
    // Same 12 names as the (single-shard, non-bulk) reference run, loaded
    // through the cross-shard bulk path instead.
    let batch: Vec<Mapping> = (0..12)
        .map(|i| {
            Mapping::new(format!("lfn://chaos/f{i:02}"), format!("pfn://site-a/f{i:02}"))
                .unwrap()
        })
        .collect();
    let mut c = dep.lrc_client(0).unwrap();
    assert!(c.bulk_create(batch).unwrap().is_empty());
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    assert_eq!(plan.stats().refused(), 2);
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    let shards_hit = (0..4)
        .filter(|i| counter(&stats, &format!("storage.shard.{i}.commits")) > 0)
        .count();
    assert!(shards_hit >= 2, "12 names must spread over ≥2 shards: {stats:?}");
    assert_eq!(counter(&stats, "wal.group_commits"), shards_hit as u64);
}

/// The gauntlet at `rli_shards = 4`: every transport fault class from the
/// sweep above, re-run against an RLI whose index is LFN-hash partitioned.
/// The convergence contract is unchanged — each damaged run must land on
/// exactly the fault-free single-shard mapping set — and the per-shard
/// `rli.shard.<i>.applies` counters prove the recovered update stream
/// really fanned out across the partitions.
#[test]
fn sharded_rli_converges_through_chaos_sweep() {
    let expected = fault_free_state(12);
    let classes: [(&str, Arc<FaultPlan>); 4] = [
        (
            "connection refusals",
            Arc::new(FaultPlan::builder(0x8A).refuse_connects("*", 2).build()),
        ),
        (
            "mid-frame disconnect",
            Arc::new(FaultPlan::builder(0x8B).drop_mid_frame("*", 1).build()),
        ),
        (
            "read stall",
            Arc::new(
                FaultPlan::builder(0x8C)
                    .stall_recv("*", 0, Duration::from_millis(20))
                    .build(),
            ),
        ),
        (
            "slow link",
            Arc::new(
                FaultPlan::builder(0x8D)
                    .slow_link("*", Duration::from_millis(1))
                    .build(),
            ),
        ),
    ];
    for (class, plan) in classes {
        let dep = TestDeployment::builder()
            .lrcs(1)
            .rlis(1)
            .rli_shards(4)
            .chunk_size(3) // 12 names → 4 chunks, so drops land mid-stream
            .retry(quick_retry())
            .fault_hook(plan)
            .build()
            .unwrap();
        seed_names(&dep, 12);
        for o in dep.force_updates() {
            o.unwrap();
        }
        assert_eq!(
            rli_names(&dep, 0),
            expected,
            "fault class {class:?} must converge at rli_shards=4"
        );
        dep.force_samples();
        let stats = dep.rli_client(0).unwrap().stats().unwrap();
        let shards_hit = (0..4)
            .filter(|i| counter(&stats, &format!("rli.shard.{i}.applies")) > 0)
            .count();
        assert!(
            shards_hit >= 2,
            "{class}: 12 names must spread over ≥2 RLI shards: {stats:?}"
        );
        assert!(
            stats.counters.iter().any(|(n, _)| n == "rli.shard.imbalance_ppm"),
            "{class}: imbalance gauge must publish on the sampler cadence"
        );
    }
}

/// Fault class at `rli_shards = 4`: RLI crash + restart. The restarted
/// server comes back with four *empty* shards (restart preserves the
/// configured shard count), the parked backlog drains into them, and the
/// healing full refresh rebuilds the partitioned index from soft state.
#[test]
fn sharded_rli_converges_through_crash_and_restart() {
    let expected = {
        let dep = TestDeployment::builder()
            .lrcs(1)
            .rlis(1)
            .immediate(true)
            .build()
            .unwrap();
        seed_names(&dep, 10);
        for r in dep.flush_deltas() {
            r.unwrap();
        }
        for o in dep.force_updates() {
            o.unwrap();
        }
        rli_names(&dep, 0)
    };

    let mut dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .rli_shards(4)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..5 {
        c.create_mapping(&format!("lfn://chaos/f{i:02}"), &format!("pfn://site-a/f{i:02}"))
            .unwrap();
    }
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    dep.crash_rli(0);
    for i in 5..10 {
        c.create_mapping(&format!("lfn://chaos/f{i:02}"), &format!("pfn://site-a/f{i:02}"))
            .unwrap();
    }
    assert!(dep.lrcs[0].flush_deltas().is_err());
    dep.restart_rli(0).unwrap();
    let outcomes = dep.lrcs[0].flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].names, 5);
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    // The rebuilt index is partitioned again: the post-restart applies
    // show up on the per-shard counters.
    dep.force_samples();
    let stats = dep.rli_client(0).unwrap().stats().unwrap();
    let shards_hit = (0..4)
        .filter(|i| counter(&stats, &format!("rli.shard.{i}.applies")) > 0)
        .count();
    assert!(shards_hit >= 2, "rebuild must fan out: {stats:?}");
}

/// The PR 7 staleness-plane heal check, at `rli_shards = 4`: the
/// freshness ledger stays global above the partitioned index, so an
/// updater outage ages `rli.lrc.staleness_ms` and the healed cycle snaps
/// it back exactly as on a single-shard RLI.
#[test]
fn sharded_rli_staleness_plane_heals() {
    let plan = Arc::new(FaultPlan::builder(0x57A2E).drop_mid_frame("*", 2).build());
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .rli_shards(4)
        .fault_hook(plan.clone()) // default fail-fast retry: the cycle errors
        .build()
        .unwrap();
    seed_names(&dep, 5);
    let staleness = |dep: &TestDeployment| -> u64 {
        dep.force_samples();
        let stats = dep.rli_client(0).unwrap().stats().unwrap();
        stats
            .counters
            .iter()
            .find(|(n, _)| n == "rli.lrc.staleness_ms.lrc-0")
            .map(|(_, v)| *v)
            .expect("staleness gauge must exist after the first apply")
    };

    for o in dep.force_updates() {
        o.unwrap();
    }
    let fresh = staleness(&dep);
    assert!(fresh < 250, "fresh after a healthy cycle: {fresh}ms");

    std::thread::sleep(Duration::from_millis(300));
    let outcomes = dep.force_updates();
    assert!(
        outcomes.iter().any(|o| o.is_err()),
        "the scripted drop must fail this cycle: {outcomes:?}"
    );
    assert_eq!(plan.stats().dropped(), 1);
    let stale = staleness(&dep);
    assert!(stale >= 250, "no refresh landed, so age keeps growing: {stale}ms");

    for o in dep.force_updates() {
        o.unwrap();
    }
    let healed = staleness(&dep);
    assert!(
        healed < stale && healed < 250,
        "healed cycle must reset the age: {healed}ms (was {stale}ms)"
    );
}

/// Fault class: updater outage, seen through the staleness plane. A
/// healthy first cycle seeds the RLI's freshness ledger; a scripted
/// mid-frame drop then kills the next cycle, so `rli.lrc.staleness_ms`
/// keeps aging past the sleep; the healed cycle (the sender re-dials)
/// snaps it back near zero — exactly what `rls-cli top` colors by.
#[test]
fn staleness_plane_tracks_updater_outage_and_heals() {
    // Send event 0 is the Hello handshake, 1 the first cycle's chunk; the
    // cached connection makes the second cycle's chunk send event 2.
    let plan = Arc::new(FaultPlan::builder(0x57A1E).drop_mid_frame("*", 2).build());
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .fault_hook(plan.clone()) // default fail-fast retry: the cycle errors
        .build()
        .unwrap();
    seed_names(&dep, 5);
    let staleness = |dep: &TestDeployment| -> u64 {
        dep.force_samples();
        let stats = dep.rli_client(0).unwrap().stats().unwrap();
        stats
            .counters
            .iter()
            .find(|(n, _)| n == "rli.lrc.staleness_ms.lrc-0")
            .map(|(_, v)| *v)
            .expect("staleness gauge must exist after the first apply")
    };

    for o in dep.force_updates() {
        o.unwrap();
    }
    let fresh = staleness(&dep);
    assert!(fresh < 250, "fresh after a healthy cycle: {fresh}ms");

    std::thread::sleep(Duration::from_millis(300));
    let outcomes = dep.force_updates();
    assert!(
        outcomes.iter().any(|o| o.is_err()),
        "the scripted drop must fail this cycle: {outcomes:?}"
    );
    assert_eq!(plan.stats().dropped(), 1);
    let stale = staleness(&dep);
    assert!(stale >= 250, "no refresh landed, so age keeps growing: {stale}ms");

    for o in dep.force_updates() {
        o.unwrap();
    }
    let healed = staleness(&dep);
    assert!(
        healed < stale && healed < 250,
        "healed cycle must reset the age: {healed}ms (was {stale}ms)"
    );
}

/// Fault class: overload. The LRC is squeezed to `max_connections = 3`
/// over a two-thread worker pool, then hit with a 12-client stampede —
/// each client pins its admission slot for ~10 ms, so most dials find
/// the server full and collect a `Busy` rejection. Backoff-retry turns
/// every rejection into a wait: once the load drops the catalog (and the
/// RLI, after an update cycle) must match the fault-free reference, and
/// a fresh client must be admitted without retries.
#[test]
fn overloaded_server_converges_once_load_drops() {
    let expected = fault_free_state(12);

    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .max_connections(3)
        .worker_threads(2)
        .build()
        .unwrap();
    let addr = dep.lrcs[0].addr();
    let stampede_retry = RetryPolicy {
        max_retries: 30,
        ..quick_retry()
    };

    let threads: Vec<_> = (0..12)
        .map(|i| {
            let policy = stampede_retry;
            std::thread::spawn(move || {
                let mut c = RlsClient::connect_with(
                    addr,
                    &Dn::anonymous(),
                    LinkProfile::unshaped(),
                    None,
                    policy,
                    None,
                    None,
                )?;
                let lfn = format!("lfn://chaos/f{i:02}");
                c.create_mapping(&lfn, &format!("pfn://site-a/f{i:02}"))?;
                // Hold the slot long enough that later dialers meet a
                // full server rather than a lucky gap.
                std::thread::sleep(Duration::from_millis(10));
                c.query_lfn(&lfn)
            })
        })
        .collect();
    for t in threads {
        let pfns = t.join().unwrap().expect("retries must outlast the stampede");
        assert_eq!(pfns.len(), 1);
    }

    // Load has dropped: a plain fail-fast client walks straight in.
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli_names(&dep, 0), expected);
    let stats = dep.lrc_client(0).unwrap().stats().unwrap();
    assert!(
        counter(&stats, "server.busy_rejects") >= 1,
        "stampede never overloaded the server: {stats:?}"
    );
    assert!(counter(&stats, "server.conns_admitted") >= 12);
}
