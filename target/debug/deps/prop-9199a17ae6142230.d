/root/repo/target/debug/deps/prop-9199a17ae6142230.d: crates/storage/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-9199a17ae6142230.rmeta: crates/storage/tests/prop.rs Cargo.toml

crates/storage/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
