/root/repo/target/debug/examples/pegasus_workflow-70ce8fc1b1019196.d: examples/pegasus_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libpegasus_workflow-70ce8fc1b1019196.rmeta: examples/pegasus_workflow.rs Cargo.toml

examples/pegasus_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
