//! Typed column values.
//!
//! The engine stores four scalar types, matching the column types of the
//! paper's Figure 3 schema: `int(11)` → [`Value::Int`], `varchar(250)` →
//! [`Value::Str`], `float` → [`Value::Float`], `timestamp(14)` →
//! [`Value::Time`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rls_types::Timestamp;

/// A column value.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Shared immutable string (names are shared with the caller's
    /// `LogicalName`/`TargetName` allocations).
    Str(Arc<str>),
    /// 64-bit float.
    Float(f64),
    /// Timestamp (µs since epoch).
    Time(Timestamp),
}

/// The type tag of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// [`Value::Int`].
    Int = 0,
    /// [`Value::Str`].
    Str = 1,
    /// [`Value::Float`].
    Float = 2,
    /// [`Value::Time`].
    Time = 3,
}

impl ValueType {
    /// Decodes a serialized tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::Int,
            1 => Self::Str,
            2 => Self::Float,
            3 => Self::Time,
            _ => return None,
        })
    }
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Self::Str(Arc::from(s.as_ref()))
    }

    /// Builds a string value sharing an existing allocation.
    pub fn shared_str(s: Arc<str>) -> Self {
        Self::Str(s)
    }

    /// The type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Self::Int(_) => ValueType::Int,
            Self::Str(_) => ValueType::Str,
            Self::Float(_) => ValueType::Float,
            Self::Time(_) => ValueType::Time,
        }
    }

    /// Integer accessor; panics on type mismatch (schema violations are
    /// programming errors inside the engine, caught by debug assertions at
    /// insert time).
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Self::Int(v) => *v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// String accessor; panics on type mismatch.
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            Self::Str(s) => s,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Shared-string accessor; panics on type mismatch.
    #[inline]
    pub fn as_shared_str(&self) -> Arc<str> {
        match self {
            Self::Str(s) => Arc::clone(s),
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Float accessor; panics on type mismatch.
    #[inline]
    pub fn as_float(&self) -> f64 {
        match self {
            Self::Float(v) => *v,
            other => panic!("expected Float, found {other:?}"),
        }
    }

    /// Timestamp accessor; panics on type mismatch.
    #[inline]
    pub fn as_time(&self) -> Timestamp {
        match self {
            Self::Time(t) => *t,
            other => panic!("expected Time, found {other:?}"),
        }
    }

    /// Canonical bit pattern for floats so `Eq`/`Hash` are well-defined:
    /// all NaNs collapse to one pattern, `-0.0` collapses to `+0.0`.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Int(a), Self::Int(b)) => a == b,
            (Self::Str(a), Self::Str(b)) => a == b,
            (Self::Float(a), Self::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Self::Time(a), Self::Time(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Self::Int(v) => v.hash(state),
            Self::Str(s) => s.hash(state),
            Self::Float(f) => Self::float_bits(*f).hash(state),
            Self::Time(t) => t.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: values of different types order by type tag (the engine
    /// never mixes types within one indexed column, so this branch only
    /// protects against misuse).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Self::Int(a), Self::Int(b)) => a.cmp(b),
            (Self::Str(a), Self::Str(b)) => a.cmp(b),
            (Self::Float(a), Self::Float(b)) => a.total_cmp(b),
            (Self::Time(a), Self::Time(b)) => a.cmp(b),
            (a, b) => (a.value_type() as u8).cmp(&(b.value_type() as u8)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int(v) => write!(f, "{v}"),
            Self::Str(s) => write!(f, "{s:?}"),
            Self::Float(v) => write!(f, "{v}"),
            Self::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Self::str(s)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Self::Time(t)
    }
}

/// A row: one value per schema column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::str("x").as_str(), "x");
        assert_eq!(Value::Float(1.5).as_float(), 1.5);
        let t = Timestamp::from_unix_secs(9);
        assert_eq!(Value::Time(t).as_time(), t);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::str("x").as_int();
    }

    #[test]
    fn nan_and_zero_canonicalization() {
        let mut m: HashMap<Value, u32> = HashMap::new();
        m.insert(Value::Float(f64::NAN), 1);
        assert_eq!(m.get(&Value::Float(f64::NAN)), Some(&1));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        m.insert(Value::Float(-0.0), 2);
        assert_eq!(m.get(&Value::Float(0.0)), Some(&2));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.0) < Value::Float(2.0));
        assert!(Value::Time(Timestamp::from_unix_secs(1)) < Value::Time(Timestamp::from_unix_secs(2)));
    }

    #[test]
    fn cross_type_ordering_is_total() {
        // Int < Str < Float < Time per tag order.
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::str("zzz") < Value::Float(f64::NEG_INFINITY));
    }

    #[test]
    fn type_tags_round_trip() {
        for v in 0..4u8 {
            assert_eq!(ValueType::from_u8(v).unwrap() as u8, v);
        }
        assert!(ValueType::from_u8(4).is_none());
    }

    #[test]
    fn shared_str_shares_allocation() {
        let base: Arc<str> = Arc::from("shared");
        let v = Value::shared_str(Arc::clone(&base));
        assert!(std::ptr::eq(v.as_str().as_ptr(), base.as_ptr()));
    }
}
