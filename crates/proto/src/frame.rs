//! Frame I/O: `[u32 length][body]` over any `Read`/`Write`.

use std::io::{Read, Write};

use rls_types::{ErrorCode, RlsError, RlsResult};

/// Default per-frame size cap: large enough for a 5 M-entry Bloom filter
/// (50 Mbit ≈ 6.25 MB) or a 100 k-name uncompressed update chunk, small
/// enough to bound a malicious peer's allocation.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> RlsResult<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| RlsError::protocol("frame body exceeds u32 length"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one frame body, enforcing `max_len`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (peer closed the
/// connection between requests).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> RlsResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(RlsError::new(
            ErrorCode::ResourceLimit,
            format!("frame of {len} bytes exceeds limit of {max_len}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| RlsError::protocol(format!("frame body truncated: {e}")))?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"world!"
        );
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let mut cur = Cursor::new(buf);
        let e = read_frame(&mut cur, 50).unwrap_err();
        assert_eq!(e.code(), ErrorCode::ResourceLimit);
    }

    #[test]
    fn truncated_body_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full-body").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cur = Cursor::new(buf);
        let e = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn truncated_header_is_eof() {
        let mut cur = Cursor::new(vec![1u8, 0]);
        // Partial length prefix counts as EOF-at-boundary for simplicity of
        // shutdown handling — read_exact reports UnexpectedEof.
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), None);
    }
}
