/root/repo/target/debug/deps/bytes-67b6c0b40ebeaadb.d: /tmp/vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-67b6c0b40ebeaadb.rmeta: /tmp/vendor/bytes/src/lib.rs

/tmp/vendor/bytes/src/lib.rs:
