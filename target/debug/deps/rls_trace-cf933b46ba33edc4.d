/root/repo/target/debug/deps/rls_trace-cf933b46ba33edc4.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/librls_trace-cf933b46ba33edc4.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
