//! Soft-state semantics tests: the paper's §3.2–3.5 behavioural claims as
//! executable assertions.

use std::time::Duration;

use rls_core::testkit::TestDeployment;
use rls_core::{RlsClient, UpdateOutcome};
use rls_types::{Dn, ErrorCode};

/// §3.3: "In practice, the use of immediate mode is almost always
/// advantageous. The only exception is when large numbers of mappings are
/// loaded into an LRC server at once" — during a bulk load the delta
/// journal degenerates into a full update's worth of traffic.
#[test]
fn immediate_mode_bulk_load_caveat() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    let n = 500u64;
    for i in 0..n {
        c.create_mapping(&format!("lfn://bulkload/{i}"), &format!("pfn://{i}"))
            .unwrap();
    }
    // The journal now holds every loaded name: the "incremental" update is
    // as large as a full one — the caveat the paper calls out.
    let lrc = dep.lrcs[0].lrc().unwrap();
    assert_eq!(lrc.pending_deltas() as u64, n);
    let outcomes: Vec<UpdateOutcome> = dep
        .flush_deltas()
        .into_iter()
        .flat_map(|r| r.unwrap())
        .collect();
    assert_eq!(outcomes.iter().map(|o| o.names).sum::<u64>(), n);

    // Steady state: one change produces a one-name delta.
    c.create_mapping("lfn://steady/one", "pfn://one").unwrap();
    let outcomes: Vec<UpdateOutcome> = dep
        .flush_deltas()
        .into_iter()
        .flat_map(|r| r.unwrap())
        .collect();
    assert_eq!(outcomes.iter().map(|o| o.names).sum::<u64>(), 1);
}

/// Deltas survive RLI downtime: a failed flush parks the journal in the
/// dead target's backlog, and the next flush — once the RLI is back on
/// the same address — delivers it.
#[test]
fn delta_flush_retries_after_rli_outage() {
    use rls_core::{RliConfig, Server, ServerConfig};
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://retry/a", "pfn://a").unwrap();

    // Repoint the update list at an address nothing listens on.
    let lrc_server = &dep.lrcs[0];
    let live_rli = dep.rlis[0].addr().to_string();
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    {
        let lrc = lrc_server.lrc().unwrap();
        let catalog = lrc.catalog();
        catalog.remove_rli(&live_rli).unwrap();
        catalog.add_rli(&dead.to_string(), 0, &[]).unwrap();
    }
    // Flush fails; the journal moves into the dead target's backlog.
    let res = lrc_server.flush_deltas();
    assert!(res.is_err());
    let lrc = lrc_server.lrc().unwrap();
    assert_eq!(lrc.pending_deltas(), 0);
    assert_eq!(lrc.pending_backlog(), 1);

    // The RLI comes back on the same address; the next flush delivers.
    let revived = Server::start(ServerConfig {
        name: "rli-revived".into(),
        bind: dead,
        rli: Some(RliConfig::default()),
        ..ServerConfig::default()
    })
    .unwrap();
    let outcomes = lrc_server.flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(lrc_server.lrc().unwrap().pending_backlog(), 0);
    let mut rli = RlsClient::connect(revived.addr(), &Dn::anonymous()).unwrap();
    assert_eq!(rli.rli_query_lfn("lfn://retry/a").unwrap().len(), 1);
    revived.shutdown();
}

/// Partial-flush regression: when one of two RLIs is down, only the dead
/// target's deltas are re-queued — the reachable RLI never re-receives a
/// delta it already applied.
#[test]
fn partial_flush_requeues_only_failed_target() {
    let mut dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(2)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();

    // Both RLIs receive the first delta.
    c.create_mapping("lfn://partial/a", "pfn://a").unwrap();
    for r in dep.flush_deltas() {
        r.unwrap();
    }

    // RLI 1 crashes; the next flush reaches RLI 0 only.
    dep.crash_rli(1);
    c.create_mapping("lfn://partial/b", "pfn://b").unwrap();
    let outcomes = dep.lrcs[0].flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1, "only the live RLI was reached");
    let lrc = dep.lrcs[0].lrc().unwrap();
    assert_eq!(lrc.pending_deltas(), 0, "journal consumed");
    assert_eq!(lrc.pending_backlog(), 1, "dead target holds one delta");

    // RLI 1 returns (empty); the next flush sends ONLY the backlog, and
    // only to the revived target — the journal has nothing fresh.
    dep.restart_rli(1).unwrap();
    let outcomes = dep.lrcs[0].flush_deltas().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].target, dep.rlis[1].addr().to_string());
    assert_eq!(outcomes[0].names, 1);
    assert_eq!(dep.lrcs[0].lrc().unwrap().pending_backlog(), 0);

    // RLI 0 saw exactly two delta frames (a, then b) — no duplicates.
    let mut rli0 = dep.rli_client(0).unwrap();
    let s0 = rli0.stats().unwrap();
    assert_eq!(s0.updates_received, 2, "no delta was re-sent to RLI 0");
    assert_eq!(rli0.rli_query_lfn("lfn://partial/a").unwrap().len(), 1);
    assert_eq!(rli0.rli_query_lfn("lfn://partial/b").unwrap().len(), 1);
    // The revived RLI 1 saw exactly the backlog flush; it holds b (a died
    // with its pre-crash state and returns at the next full refresh).
    let mut rli1 = dep.rli_client(1).unwrap();
    let s1 = rli1.stats().unwrap();
    assert_eq!(s1.updates_received, 1);
    assert_eq!(rli1.rli_query_lfn("lfn://partial/b").unwrap().len(), 1);
    assert!(rli1.rli_query_lfn("lfn://partial/a").is_err());
}

/// Chunked full updates: a tiny chunk size streams many frames but the RLI
/// converges to the same state.
#[test]
fn chunked_full_updates_converge() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .chunk_size(7) // force many chunks
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..100 {
        c.create_mapping(&format!("lfn://chunk/{i:03}"), &format!("pfn://{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        let o = o.unwrap();
        assert_eq!(o.names, 100);
    }
    let mut rli = dep.rli_client(0).unwrap();
    let stats = rli.stats().unwrap();
    assert_eq!(stats.rli_association_count, 100);
    // ceil(100/7) = 15 chunks arrived as 15 update frames.
    assert_eq!(stats.updates_received, 15);
    for i in (0..100).step_by(13) {
        assert!(rli.rli_query_lfn(&format!("lfn://chunk/{i:03}")).is_ok());
    }
}

/// Partition rules apply to deltas as well as full updates, and names
/// matching no partition are sent nowhere.
#[test]
fn partitioned_deltas() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(2)
        .immediate(true)
        .build()
        .unwrap();
    {
        let lrc = dep.lrcs[0].lrc().unwrap();
        let catalog = lrc.catalog();
        catalog.remove_rli(&dep.rlis[0].addr().to_string()).unwrap();
        catalog.remove_rli(&dep.rlis[1].addr().to_string()).unwrap();
        catalog
            .add_rli(
                &dep.rlis[0].addr().to_string(),
                0,
                &["^lfn://h1/.*".to_owned()],
            )
            .unwrap();
        catalog
            .add_rli(
                &dep.rlis[1].addr().to_string(),
                0,
                &["^lfn://l1/.*".to_owned()],
            )
            .unwrap();
    }
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://h1/f", "pfn://1").unwrap();
    c.create_mapping("lfn://l1/f", "pfn://2").unwrap();
    c.create_mapping("lfn://v1/unrouted", "pfn://3").unwrap();
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    let mut rli0 = dep.rli_client(0).unwrap();
    let mut rli1 = dep.rli_client(1).unwrap();
    assert!(rli0.rli_query_lfn("lfn://h1/f").is_ok());
    assert!(rli0.rli_query_lfn("lfn://l1/f").is_err());
    assert!(rli1.rli_query_lfn("lfn://l1/f").is_ok());
    // The unrouted name reached neither index.
    assert!(rli0.rli_query_lfn("lfn://v1/unrouted").is_err());
    assert!(rli1.rli_query_lfn("lfn://v1/unrouted").is_err());
}

/// Background threads drive the whole loop autonomously: with `auto` on
/// and a short interval, updates and expiry happen with no manual nudges.
#[test]
fn background_threads_drive_updates_and_expiry() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .auto(true)
        .update_interval(Duration::from_millis(60))
        .expire_timeout(Duration::from_millis(400))
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://auto/a", "pfn://a").unwrap();
    let mut rli = dep.rli_client(0).unwrap();
    // Appears without any manual update call.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match rli.rli_query_lfn("lfn://auto/a") {
            Ok(hits) if !hits.is_empty() => break,
            _ if std::time::Instant::now() > deadline => {
                panic!("background update never delivered the name")
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Remove it; within (update interval, expiry timeout, expire interval)
    // the background machinery keeps the RLI fresh. The full refresh stops
    // re-asserting the name, and expiry eventually reclaims it. We only
    // assert it stays queryable while it exists — the removal-side decay is
    // covered deterministically elsewhere; here we just watch liveness.
    c.delete_mapping("lfn://auto/a", "pfn://a").unwrap();
    assert!(c.query_lfn("lfn://auto/a").is_err());
}

/// The updater reuses connections between cycles; killing the RLI between
/// cycles forces a clean reconnect rather than a wedged sender.
#[test]
fn updater_survives_rli_restart() {
    use rls_core::{RliConfig, Server, ServerConfig};
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://reconnect/a", "pfn://a").unwrap();
    let mut updater = dep.updater(0);
    let targets = updater.targets();
    updater.send_full(&targets[0]).unwrap();

    // Kill the RLI and start a new one on a different port; repoint.
    dep.rlis[0].shutdown();
    let new_rli = Server::start(ServerConfig {
        name: "rli-respawn".into(),
        rli: Some(RliConfig::default()),
        ..ServerConfig::default()
    })
    .unwrap();
    {
        let lrc = dep.lrcs[0].lrc().unwrap();
        let catalog = lrc.catalog();
        catalog.remove_rli(&targets[0].name).unwrap();
        catalog
            .add_rli(&new_rli.addr().to_string(), 0, &[])
            .unwrap();
    }
    // Old cached connection is useless. The very first send may still be
    // absorbed by a handler thread that was mid-recv when shutdown hit, but
    // a follow-up send on the dead connection must fail cleanly.
    let _ = updater.send_full(&targets[0]);
    assert!(updater.send_full(&targets[0]).is_err());
    // ...but the new target works on the same updater instance.
    let new_targets = updater.targets();
    updater.send_full(&new_targets[0]).unwrap();
    let mut rli = RlsClient::connect(new_rli.addr(), &Dn::anonymous()).unwrap();
    assert_eq!(rli.rli_query_lfn("lfn://reconnect/a").unwrap().len(), 1);
}

/// RLI queries for an expired-then-reasserted name keep timestamps moving
/// forward.
#[test]
fn updatetime_refreshes_monotonically() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://mono/a", "pfn://a").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    let t1 = rli.rli_query_lfn("lfn://mono/a").unwrap()[0].updated_micros;
    std::thread::sleep(Duration::from_millis(20));
    for o in dep.force_updates() {
        o.unwrap();
    }
    let t2 = rli.rli_query_lfn("lfn://mono/a").unwrap()[0].updated_micros;
    assert!(t2 > t1, "t1={t1} t2={t2}");
    let err = rli.rli_query_lfn("lfn://mono/missing").unwrap_err();
    assert_eq!(err.code(), ErrorCode::LogicalNameNotFound);
}
