/root/repo/target/debug/deps/rls_proto-5e5b5bcd96e8f1dd.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/librls_proto-5e5b5bcd96e8f1dd.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/frame.rs:
crates/proto/src/message.rs:
