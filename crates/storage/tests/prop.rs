//! Property tests: the LRC catalog against a reference model, and vendor
//! profile equivalence (PostgreSQL-like semantics must be observationally
//! identical to MySQL-like for all query results, dead tuples or not).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use rls_storage::{BackendProfile, LrcDatabase};
use rls_types::Mapping;

#[derive(Clone, Debug)]
enum Op {
    Put(u8, u8),
    Delete(u8, u8),
    QueryLfn(u8),
    Vacuum,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(l, p)| Op::Put(l % 16, p % 16)),
        (any::<u8>(), any::<u8>()).prop_map(|(l, p)| Op::Delete(l % 16, p % 16)),
        any::<u8>().prop_map(|l| Op::QueryLfn(l % 16)),
        Just(Op::Vacuum),
    ]
}

fn lfn(i: u8) -> String {
    format!("lfn://prop/{i}")
}
fn pfn(i: u8) -> String {
    format!("pfn://prop/{i}")
}

/// Reference model: set of (lfn, pfn) pairs.
#[derive(Default)]
struct Model {
    maps: BTreeSet<(u8, u8)>,
}

impl Model {
    fn lfn_targets(&self, l: u8) -> BTreeSet<u8> {
        self.maps
            .iter()
            .filter(|(ml, _)| *ml == l)
            .map(|(_, p)| *p)
            .collect()
    }
}

fn run_against_model(profile: BackendProfile, ops: &[Op]) {
    let mut db = LrcDatabase::in_memory(profile);
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Put(l, p) => {
                let m = Mapping::new(lfn(*l), pfn(*p)).unwrap();
                let res = db.put_mapping(&m);
                if model.maps.contains(&(*l, *p)) {
                    assert!(res.is_err(), "duplicate put must fail");
                } else {
                    let ch = res.expect("put of new mapping succeeds");
                    assert_eq!(ch.lfn_created, model.lfn_targets(*l).is_empty());
                    model.maps.insert((*l, *p));
                }
            }
            Op::Delete(l, p) => {
                let m = Mapping::new(lfn(*l), pfn(*p)).unwrap();
                let res = db.delete_mapping(&m);
                if model.maps.contains(&(*l, *p)) {
                    let ch = res.expect("delete of existing mapping succeeds");
                    model.maps.remove(&(*l, *p));
                    assert_eq!(ch.lfn_deleted, model.lfn_targets(*l).is_empty());
                } else {
                    assert!(res.is_err(), "delete of absent mapping must fail");
                }
            }
            Op::QueryLfn(l) => {
                let expect = model.lfn_targets(*l);
                match db.query_lfn(&lfn(*l)) {
                    Ok(targets) => {
                        let got: BTreeSet<String> =
                            targets.iter().map(|t| t.to_string()).collect();
                        let want: BTreeSet<String> = expect.iter().map(|p| pfn(*p)).collect();
                        assert_eq!(got, want);
                        assert!(!expect.is_empty());
                    }
                    Err(_) => assert!(expect.is_empty()),
                }
            }
            Op::Vacuum => {
                db.vacuum().unwrap();
            }
        }
    }
    // Final global invariants.
    assert_eq!(db.mapping_count(), model.maps.len() as u64);
    let live_lfns: BTreeSet<u8> = model.maps.iter().map(|(l, _)| *l).collect();
    assert_eq!(db.lfn_count(), live_lfns.len() as u64);
    // all_lfns is sorted and matches the model.
    let names: Vec<String> = db.all_lfns().iter().map(|s| s.to_string()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
    let want: BTreeSet<String> = live_lfns.iter().map(|l| lfn(*l)).collect();
    assert_eq!(names.into_iter().collect::<BTreeSet<_>>(), want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lrc_matches_model_mysql(ops in prop::collection::vec(arb_op(), 1..120)) {
        run_against_model(BackendProfile::mysql_buffered(), &ops);
    }

    #[test]
    fn lrc_matches_model_postgres(ops in prop::collection::vec(arb_op(), 1..120)) {
        run_against_model(BackendProfile::postgres_buffered(), &ops);
    }

    /// Durable catalog: any op sequence survives a crash/reopen with
    /// identical visible state.
    #[test]
    fn wal_recovery_preserves_state(ops in prop::collection::vec(arb_op(), 1..60)) {
        let dir = std::env::temp_dir().join(format!("rls-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join(format!("prop-{:x}.wal", rand_suffix(&ops)));
        let _ = std::fs::remove_file(&wal);
        let mut before: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        {
            let mut db = LrcDatabase::open(BackendProfile::mysql_buffered(), &wal).unwrap();
            for op in &ops {
                match op {
                    Op::Put(l, p) => {
                        let m = Mapping::new(lfn(*l), pfn(*p)).unwrap();
                        if db.put_mapping(&m).is_ok() {
                            before.entry(lfn(*l)).or_default().insert(pfn(*p));
                        }
                    }
                    Op::Delete(l, p) => {
                        let m = Mapping::new(lfn(*l), pfn(*p)).unwrap();
                        if db.delete_mapping(&m).is_ok() {
                            if let Some(set) = before.get_mut(&lfn(*l)) {
                                set.remove(&pfn(*p));
                                if set.is_empty() {
                                    before.remove(&lfn(*l));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let db = LrcDatabase::open(BackendProfile::mysql_buffered(), &wal).unwrap();
        for (l, targets) in &before {
            let got: BTreeSet<String> = db
                .query_lfn(l)
                .unwrap()
                .iter()
                .map(|t| t.to_string())
                .collect();
            prop_assert_eq!(&got, targets);
        }
        prop_assert_eq!(db.lfn_count() as usize, before.len());
        let _ = std::fs::remove_file(&wal);
    }
}

/// Cheap deterministic suffix so parallel proptest cases don't share WAL
/// files.
fn rand_suffix(ops: &[Op]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for op in ops {
        let tag = match op {
            Op::Put(a, b) => (0u64, *a as u64, *b as u64),
            Op::Delete(a, b) => (1, *a as u64, *b as u64),
            Op::QueryLfn(a) => (2, *a as u64, 0),
            Op::Vacuum => (3, 0, 0),
        };
        h = (h ^ (tag.0 << 16 | tag.1 << 8 | tag.2)).wrapping_mul(0x100000001b3);
    }
    h
}
