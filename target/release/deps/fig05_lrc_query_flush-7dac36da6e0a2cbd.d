/root/repo/target/release/deps/fig05_lrc_query_flush-7dac36da6e0a2cbd.d: crates/bench/benches/fig05_lrc_query_flush.rs

/root/repo/target/release/deps/fig05_lrc_query_flush-7dac36da6e0a2cbd: crates/bench/benches/fig05_lrc_query_flush.rs

crates/bench/benches/fig05_lrc_query_flush.rs:
