/root/repo/target/debug/deps/micro_codec-93abe1f40bd00812.d: crates/bench/benches/micro_codec.rs

/root/repo/target/debug/deps/micro_codec-93abe1f40bd00812: crates/bench/benches/micro_codec.rs

crates/bench/benches/micro_codec.rs:
