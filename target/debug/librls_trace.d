/root/repo/target/debug/librls_trace.rlib: /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/log.rs /root/repo/crates/trace/src/span.rs
