/root/repo/target/release/deps/fig06_lrc_multiclient-387ea1229ecb54d0.d: crates/bench/benches/fig06_lrc_multiclient.rs

/root/repo/target/release/deps/fig06_lrc_multiclient-387ea1229ecb54d0: crates/bench/benches/fig06_lrc_multiclient.rs

crates/bench/benches/fig06_lrc_multiclient.rs:
