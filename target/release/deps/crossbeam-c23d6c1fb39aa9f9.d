/root/repo/target/release/deps/crossbeam-c23d6c1fb39aa9f9.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c23d6c1fb39aa9f9.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c23d6c1fb39aa9f9.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
