//! # `rls-proto`
//!
//! The RLS wire protocol. The original implementation spoke a custom RPC
//! over `globus_io` with GSI authentication; we reproduce the same
//! *structure* — a connection-oriented, length-framed binary protocol with
//! an authentication handshake — with a hand-rolled codec (DESIGN.md §2).
//!
//! A connection carries a sequence of frames; each frame is
//! `[u32 length][u16 opcode][body]`. The first client frame must be
//! [`Request::Hello`], carrying the client's distinguished name and
//! protocol version; the server answers with [`Response::HelloAck`] after
//! gridmap/ACL processing. Every subsequent request receives exactly one
//! response. Under the negotiated pipelined protocol
//! ([`PROTOCOL_VERSION_PIPELINED`]) a client may keep several requests in
//! flight per connection, each stamped with a request-ID envelope that the
//! matching response echoes; responses may then arrive out of order.
//!
//! All operations of the paper's Table 1 have a request variant, as do the
//! three soft-state update forms (full/uncompressed — chunked so that
//! multi-megabyte updates stream; incremental; Bloom filter).

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod message;

pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
pub use message::{
    peek_request_id, AttrAssignment, FrameMeta, LagStamp, ProtocolVersion, Request, Response,
    RliHit, RliTargetWire, ServerStatsWire, SpanWire, StatsHistoryWire, LAG_ENVELOPE_OPCODE,
    PROTOCOL_VERSION, PROTOCOL_VERSION_PIPELINED, REQUEST_ID_ENVELOPE_OPCODE,
    TRACE_ENVELOPE_OPCODE,
};
