/root/repo/target/debug/examples/esg_fullmesh-4f97657acc86184d.d: examples/esg_fullmesh.rs

/root/repo/target/debug/examples/esg_fullmesh-4f97657acc86184d: examples/esg_fullmesh.rs

examples/esg_fullmesh.rs:
