/root/repo/target/release/deps/table3_bloom_update-64d4bf511818cd77.d: crates/bench/benches/table3_bloom_update.rs

/root/repo/target/release/deps/table3_bloom_update-64d4bf511818cd77: crates/bench/benches/table3_bloom_update.rs

crates/bench/benches/table3_bloom_update.rs:
