//! Criterion micro-benches: Bloom filter operations and the bits/hashes
//! ablation called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rls_bloom::{BloomFilter, BloomParams, CountingBloomFilter};

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom/insert");
    for &n in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = BloomFilter::with_capacity(BloomParams::PAPER, n);
                for i in 0..n {
                    f.insert(&format!("lfn://bench/file{i:09}"));
                }
                f
            });
        });
        g.bench_with_input(BenchmarkId::new("counting", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = CountingBloomFilter::with_capacity(BloomParams::PAPER, n);
                for i in 0..n {
                    f.insert(&format!("lfn://bench/file{i:09}"));
                }
                f
            });
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let n = 100_000u64;
    let mut f = BloomFilter::with_capacity(BloomParams::PAPER, n);
    for i in 0..n {
        f.insert(&format!("lfn://bench/file{i:09}"));
    }
    let mut g = c.benchmark_group("bloom/contains");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % n;
            f.contains(&format!("lfn://bench/file{i:09}"))
        });
    });
    g.bench_function("miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.contains(&format!("lfn://absent/file{i:09}"))
        });
    });
    g.finish();
}

/// Ablation: bits/entry and hash count vs observed false-positive rate.
/// Reported as a bench so `cargo bench` prints the trade-off table the
/// paper's §3.4 parameters sit inside.
fn bench_params_ablation(c: &mut Criterion) {
    let n = 50_000u64;
    println!("\nbloom parameter ablation ({n} entries, 2n probes):");
    println!("{:>12} {:>8} {:>12} {:>12}", "bits/entry", "hashes", "fpp", "bytes");
    for bits_per_entry in [5u32, 10, 20] {
        for hashes in [2u32, 3, 5] {
            let params = BloomParams {
                bits_per_entry,
                hashes,
            };
            let mut f = BloomFilter::with_capacity(params, n);
            for i in 0..n {
                f.insert(&format!("lfn://abl/file{i:09}"));
            }
            let mut fp = 0u64;
            for i in 0..(2 * n) {
                if f.contains(&format!("lfn://absent/file{i:09}")) {
                    fp += 1;
                }
            }
            println!(
                "{:>12} {:>8} {:>12.5} {:>12}",
                bits_per_entry,
                hashes,
                fp as f64 / (2 * n) as f64,
                f.byte_len()
            );
        }
    }
    // Keep criterion happy with at least one timed body.
    c.bench_function("bloom/params_paper_insert", |b| {
        let mut f = BloomFilter::with_capacity(BloomParams::PAPER, 1000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(&format!("k{i}"));
        });
    });
}

fn bench_union_and_export(c: &mut Criterion) {
    let n = 100_000u64;
    let mut a = BloomFilter::with_capacity(BloomParams::PAPER, n);
    let mut b_f = BloomFilter::with_capacity(BloomParams::PAPER, n);
    let mut counting = CountingBloomFilter::with_capacity(BloomParams::PAPER, n);
    for i in 0..n {
        a.insert(&format!("a{i}"));
        b_f.insert(&format!("b{i}"));
        counting.insert(&format!("c{i}"));
    }
    c.bench_function("bloom/union_100k", |bch| {
        bch.iter(|| {
            let mut u = a.clone();
            u.union_with(&b_f).unwrap();
            u
        });
    });
    c.bench_function("bloom/counting_export_100k", |bch| {
        bch.iter(|| counting.to_bitmap());
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_query,
    bench_params_ablation,
    bench_union_and_export
);
criterion_main!(benches);
