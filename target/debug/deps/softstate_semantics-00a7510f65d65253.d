/root/repo/target/debug/deps/softstate_semantics-00a7510f65d65253.d: crates/core/tests/softstate_semantics.rs

/root/repo/target/debug/deps/libsoftstate_semantics-00a7510f65d65253.rmeta: crates/core/tests/softstate_semantics.rs

crates/core/tests/softstate_semantics.rs:
