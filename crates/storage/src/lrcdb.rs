//! The Local Replica Catalog database: the paper's Figure 3 LRC schema
//! implemented over the generic engine.
//!
//! Tables:
//!
//! | table            | columns                               |
//! |------------------|----------------------------------------|
//! | `t_lfn`          | `id, name, ref`                        |
//! | `t_pfn`          | `id, name, ref`                        |
//! | `t_map`          | `lfn_id, pfn_id`                       |
//! | `t_attribute`    | `id, name, objtype, type`              |
//! | `t_str_attr`     | `obj_id, attr_id, value` (varchar)     |
//! | `t_int_attr`     | `obj_id, attr_id, value` (int)         |
//! | `t_flt_attr`     | `obj_id, attr_id, value` (float)       |
//! | `t_date_attr`    | `obj_id, attr_id, value` (timestamp)   |
//! | `t_rli`          | `id, flags, name`                      |
//! | `t_rlipartition` | `rli_id, pattern`                      |
//!
//! The `ref` columns are reference counts: a logical or target name row
//! exists while at least one mapping references it, matching the original
//! implementation where deleting the last replica mapping removes the
//! logical name (and its attributes) from the catalog.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rls_types::{
    AttrCompare, AttrValue, AttrValueType, AttributeDef, ErrorCode, Glob, LogicalName, Mapping,
    ObjectType, Regex, RlsError, RlsResult, TargetName,
};

use crate::engine::{Database, TableId};
use crate::profile::BackendProfile;
use crate::schema::{ColumnDef, IndexSpec, TableSchema};
use crate::table::RowId;
use crate::txn::Transaction;
use crate::value::{Value, ValueType};

// Index positions within each table's index list.
const IDX_ID: usize = 0; // unique hash on id (t_lfn/t_pfn/t_attribute/t_rli)
const IDX_NAME: usize = 1; // ordered on name (t_lfn/t_pfn), hash on name (t_attribute)
const MAP_IDX_LFN: usize = 0;
const MAP_IDX_PFN: usize = 1;
const ATTRV_IDX_OBJ: usize = 0;
const ATTRV_IDX_ATTR: usize = 1;

/// What a mapping mutation did to the logical-name table — the signal the
/// soft-state machinery consumes (immediate-mode deltas carry LFN-level
/// changes; the counting Bloom filter sets/clears bits on these events).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MappingChange {
    /// The logical name was newly registered by this operation.
    pub lfn_created: bool,
    /// The logical name's last mapping was removed by this operation.
    pub lfn_deleted: bool,
}

/// An RLI registered on this LRC's update list, with optional namespace
/// partition patterns (§3.5).
#[derive(Clone, Debug)]
pub struct RliTarget {
    /// RLI server address ("host:port" or logical name).
    pub name: String,
    /// Update flags (bit 0: bloom-filter updates requested).
    pub flags: i64,
    /// Partition patterns; empty means "all logical names".
    pub patterns: Vec<String>,
}

/// Which mapping verb a bulk batch applies (the paper's Fig. 11 bulk
/// create/add/delete requests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BulkMappingOp {
    /// Register brand-new logical names ([`LrcDatabase::create_mapping`]).
    Create,
    /// Add replicas to existing logical names ([`LrcDatabase::add_mapping`]).
    Add,
    /// Remove mappings ([`LrcDatabase::delete_mapping`]).
    Delete,
}

/// One item of a bulk attribute batch. Borrowed so dispatch can map wire
/// items without cloning strings.
#[derive(Clone, Copy, Debug)]
pub enum BulkAttrOp<'a> {
    /// Attach a value ([`LrcDatabase::add_attribute`]).
    Add {
        /// Object (logical or target) name.
        obj: &'a str,
        /// Which namespace the object lives in.
        objtype: ObjectType,
        /// Attribute name.
        name: &'a str,
        /// Value to attach.
        value: &'a AttrValue,
    },
    /// Replace a value ([`LrcDatabase::modify_attribute`]).
    Modify {
        /// Object (logical or target) name.
        obj: &'a str,
        /// Which namespace the object lives in.
        objtype: ObjectType,
        /// Attribute name.
        name: &'a str,
        /// Replacement value.
        value: &'a AttrValue,
    },
    /// Detach a value ([`LrcDatabase::remove_attribute`]).
    Remove {
        /// Object (logical or target) name.
        obj: &'a str,
        /// Which namespace the object lives in.
        objtype: ObjectType,
        /// Attribute name.
        name: &'a str,
    },
}

/// Operation counters for the LRC service's stats RPC (snapshot form).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LrcStats {
    /// Mapping create/add operations that succeeded.
    pub adds: u64,
    /// Mapping deletes that succeeded.
    pub deletes: u64,
    /// Point queries served.
    pub queries: u64,
    /// Wildcard queries served.
    pub wildcard_queries: u64,
    /// Attribute operations (all kinds).
    pub attribute_ops: u64,
}

impl LrcStats {
    /// Fold another snapshot into this one. Used to aggregate per-shard
    /// catalogs into the single stats surface the server reports.
    pub fn accumulate(&mut self, other: &LrcStats) {
        self.adds += other.adds;
        self.deletes += other.deletes;
        self.queries += other.queries;
        self.wildcard_queries += other.wildcard_queries;
        self.attribute_ops += other.attribute_ops;
    }
}

/// Internal atomic counters, incrementable through `&self` so read-only
/// queries stay shareable across server threads.
#[derive(Debug, Default)]
struct LrcStatCounters {
    adds: AtomicU64,
    deletes: AtomicU64,
    queries: AtomicU64,
    wildcard_queries: AtomicU64,
    attribute_ops: AtomicU64,
}

impl LrcStatCounters {
    fn snapshot(&self) -> LrcStats {
        LrcStats {
            adds: self.adds.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            wildcard_queries: self.wildcard_queries.load(Ordering::Relaxed),
            attribute_ops: self.attribute_ops.load(Ordering::Relaxed),
        }
    }
}

/// The LRC catalog.
#[derive(Debug)]
pub struct LrcDatabase {
    db: Database,
    t_lfn: TableId,
    t_pfn: TableId,
    t_map: TableId,
    t_attribute: TableId,
    t_str_attr: TableId,
    t_int_attr: TableId,
    t_flt_attr: TableId,
    t_date_attr: TableId,
    t_rli: TableId,
    t_rlipartition: TableId,
    next_obj_id: i64,
    next_attr_id: i64,
    next_rli_id: i64,
    stats: LrcStatCounters,
}

fn name_table_schema(name: &str) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            ColumnDef::new("id", ValueType::Int),
            ColumnDef::new("name", ValueType::Str),
            ColumnDef::new("ref", ValueType::Int),
        ],
        vec![IndexSpec::unique_hash(0), IndexSpec::unique_ordered(1)],
    )
}

fn attr_value_schema(name: &str, vt: ValueType) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            ColumnDef::new("obj_id", ValueType::Int),
            ColumnDef::new("attr_id", ValueType::Int),
            ColumnDef::new("value", vt),
        ],
        vec![IndexSpec::hash(0), IndexSpec::hash(1)],
    )
}

impl LrcDatabase {
    fn create_schema(db: &mut Database) -> (TableId, TableId, TableId, TableId, TableId, TableId, TableId, TableId, TableId, TableId) {
        let t_lfn = db.create_table(name_table_schema("t_lfn"));
        let t_pfn = db.create_table(name_table_schema("t_pfn"));
        let t_map = db.create_table(TableSchema::new(
            "t_map",
            vec![
                ColumnDef::new("lfn_id", ValueType::Int),
                ColumnDef::new("pfn_id", ValueType::Int),
            ],
            vec![IndexSpec::hash(0), IndexSpec::hash(1)],
        ));
        let t_attribute = db.create_table(TableSchema::new(
            "t_attribute",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
                ColumnDef::new("objtype", ValueType::Int),
                ColumnDef::new("type", ValueType::Int),
            ],
            vec![IndexSpec::unique_hash(0), IndexSpec::hash(1)],
        ));
        let t_str_attr = db.create_table(attr_value_schema("t_str_attr", ValueType::Str));
        let t_int_attr = db.create_table(attr_value_schema("t_int_attr", ValueType::Int));
        let t_flt_attr = db.create_table(attr_value_schema("t_flt_attr", ValueType::Float));
        let t_date_attr = db.create_table(attr_value_schema("t_date_attr", ValueType::Time));
        let t_rli = db.create_table(TableSchema::new(
            "t_rli",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("flags", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
            ],
            vec![IndexSpec::unique_hash(0), IndexSpec::unique_hash(2)],
        ));
        let t_rlipartition = db.create_table(TableSchema::new(
            "t_rlipartition",
            vec![
                ColumnDef::new("rli_id", ValueType::Int),
                ColumnDef::new("pattern", ValueType::Str),
            ],
            vec![IndexSpec::hash(0)],
        ));
        (
            t_lfn, t_pfn, t_map, t_attribute, t_str_attr, t_int_attr, t_flt_attr, t_date_attr,
            t_rli, t_rlipartition,
        )
    }

    fn from_db(mut db: Database) -> RlsResult<Self> {
        let (t_lfn, t_pfn, t_map, t_attribute, t_str_attr, t_int_attr, t_flt_attr, t_date_attr, t_rli, t_rlipartition) =
            Self::create_schema(&mut db);
        db.recover()?;
        let mut lrc = Self {
            db,
            t_lfn,
            t_pfn,
            t_map,
            t_attribute,
            t_str_attr,
            t_int_attr,
            t_flt_attr,
            t_date_attr,
            t_rli,
            t_rlipartition,
            next_obj_id: 1,
            next_attr_id: 1,
            next_rli_id: 1,
            stats: LrcStatCounters::default(),
        };
        lrc.rebuild_counters();
        Ok(lrc)
    }

    /// Creates an in-memory (non-durable) catalog.
    pub fn in_memory(profile: BackendProfile) -> Self {
        Self::from_db(Database::in_memory(profile)).expect("in-memory recovery cannot fail")
    }

    /// Opens a WAL-backed catalog, replaying any existing log.
    pub fn open(profile: BackendProfile, wal_path: impl AsRef<std::path::Path>) -> RlsResult<Self> {
        Self::from_db(Database::open(profile, wal_path)?)
    }

    fn rebuild_counters(&mut self) {
        let max_id = |t: TableId| {
            self.db
                .table(t)
                .scan()
                .map(|(_, r)| r[0].as_int())
                .max()
                .unwrap_or(0)
        };
        self.next_obj_id = max_id(self.t_lfn).max(max_id(self.t_pfn)) + 1;
        self.next_attr_id = max_id(self.t_attribute) + 1;
        self.next_rli_id = max_id(self.t_rli) + 1;
    }

    /// The underlying engine (stats, vacuum, profile access).
    pub fn engine(&self) -> &Database {
        &self.db
    }

    /// Runs VACUUM across all catalog tables; returns tuples reclaimed.
    /// (PostgreSQL-like profile; a no-op under MySQL-like semantics.)
    pub fn vacuum(&mut self) -> RlsResult<u64> {
        let tables = [
            self.t_lfn,
            self.t_pfn,
            self.t_map,
            self.t_attribute,
            self.t_str_attr,
            self.t_int_attr,
            self.t_flt_attr,
            self.t_date_attr,
            self.t_rli,
            self.t_rlipartition,
        ];
        let mut total = 0;
        for t in tables {
            total += self.db.vacuum(t)?;
        }
        Ok(total)
    }

    /// Operation counters.
    pub fn stats(&self) -> LrcStats {
        self.stats.snapshot()
    }

    /// Checkpoints the catalog to a snapshot file and truncates the WAL.
    pub fn checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> RlsResult<()> {
        crate::snapshot::save(&mut self.db, path)
    }

    /// Restores catalog state from a snapshot file.
    pub fn restore(&mut self, path: impl AsRef<std::path::Path>) -> RlsResult<u64> {
        let n = crate::snapshot::load(&mut self.db, path)?;
        self.rebuild_counters();
        Ok(n)
    }

    // --- internal lookups ---------------------------------------------------

    fn find_name_row(&self, table: TableId, name: &str) -> Option<(RowId, i64, i64)> {
        self.db
            .table(table)
            .index_lookup(IDX_NAME, &Value::str(name))
            .next()
            .map(|(rid, row)| (rid, row[0].as_int(), row[2].as_int()))
    }

    fn name_by_obj_id(&self, table: TableId, id: i64) -> Option<Arc<str>> {
        self.db
            .table(table)
            .index_lookup(IDX_ID, &Value::Int(id))
            .next()
            .map(|(_, row)| row[1].as_shared_str())
    }

    fn find_map_row(&self, lfn_id: i64, pfn_id: i64) -> Option<RowId> {
        self.db
            .table(self.t_map)
            .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            .find(|(_, row)| row[1].as_int() == pfn_id)
            .map(|(rid, _)| rid)
    }

    /// Inserts or bumps the refcount of a name row; returns (obj id, was
    /// created).
    fn upsert_name(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        name: &Arc<str>,
    ) -> RlsResult<(i64, bool)> {
        if let Some((rid, id, refs)) = self.find_name_row(table, name) {
            self.db.txn_update(
                txn,
                table,
                rid,
                vec![
                    Value::Int(id),
                    Value::shared_str(Arc::clone(name)),
                    Value::Int(refs + 1),
                ],
            )?;
            Ok((id, false))
        } else {
            let id = self.next_obj_id;
            self.next_obj_id += 1;
            self.db.txn_insert(
                txn,
                table,
                vec![
                    Value::Int(id),
                    Value::shared_str(Arc::clone(name)),
                    Value::Int(1),
                ],
            )?;
            Ok((id, true))
        }
    }

    /// Drops one reference from a name row; deletes the row (and its
    /// attribute values) when the count reaches zero. Returns true if the
    /// row was removed.
    fn release_name(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        name: &str,
    ) -> RlsResult<bool> {
        let (rid, id, refs) = self
            .find_name_row(table, name)
            .ok_or_else(|| RlsError::storage(format!("release of unknown name {name:?}")))?;
        if refs > 1 {
            self.db.txn_update(
                txn,
                table,
                rid,
                vec![Value::Int(id), Value::str(name), Value::Int(refs - 1)],
            )?;
            Ok(false)
        } else {
            self.db.txn_delete(txn, table, rid)?;
            self.delete_attr_values_for_obj(txn, id)?;
            Ok(true)
        }
    }

    fn delete_attr_values_for_obj(&mut self, txn: &mut Transaction, obj_id: i64) -> RlsResult<()> {
        for t in [
            self.t_str_attr,
            self.t_int_attr,
            self.t_flt_attr,
            self.t_date_attr,
        ] {
            let rids: Vec<RowId> = self
                .db
                .table(t)
                .index_lookup(ATTRV_IDX_OBJ, &Value::Int(obj_id))
                .map(|(rid, _)| rid)
                .collect();
            for rid in rids {
                self.db.txn_delete(txn, t, rid)?;
            }
        }
        Ok(())
    }

    // --- mapping management (Table 1: "Mapping management") -----------------

    /// Validates and stages one `create` against the state the transaction
    /// has already applied (ops apply eagerly, so earlier staged items are
    /// visible). A validation failure stages nothing, which is what lets a
    /// failed bulk item skip its slot without aborting the batch.
    fn stage_create_mapping(
        &mut self,
        txn: &mut Transaction,
        m: &Mapping,
    ) -> RlsResult<MappingChange> {
        if self.find_name_row(self.t_lfn, m.logical.as_str()).is_some() {
            return Err(RlsError::new(
                ErrorCode::MappingExists,
                format!("logical name {} already registered", m.logical),
            ));
        }
        let (lfn_id, _) = self.upsert_name(txn, self.t_lfn, &m.logical.shared())?;
        let (pfn_id, _) = self.upsert_name(txn, self.t_pfn, &m.target.shared())?;
        self.db
            .txn_insert(txn, self.t_map, vec![Value::Int(lfn_id), Value::Int(pfn_id)])?;
        Ok(MappingChange {
            lfn_created: true,
            lfn_deleted: false,
        })
    }

    /// Validates and stages one `add` (see [`Self::stage_create_mapping`]).
    fn stage_add_mapping(&mut self, txn: &mut Transaction, m: &Mapping) -> RlsResult<MappingChange> {
        let Some((_, lfn_id, _)) = self.find_name_row(self.t_lfn, m.logical.as_str()) else {
            return Err(RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("logical name {} not registered", m.logical),
            ));
        };
        if let Some((_, pfn_id, _)) = self.find_name_row(self.t_pfn, m.target.as_str()) {
            if self.find_map_row(lfn_id, pfn_id).is_some() {
                return Err(RlsError::new(
                    ErrorCode::MappingExists,
                    format!("mapping {m} already exists"),
                ));
            }
        }
        // Bump the lfn refcount for the extra mapping.
        let (lfn_id, created) = self.upsert_name(txn, self.t_lfn, &m.logical.shared())?;
        debug_assert!(!created);
        let (pfn_id, _) = self.upsert_name(txn, self.t_pfn, &m.target.shared())?;
        self.db
            .txn_insert(txn, self.t_map, vec![Value::Int(lfn_id), Value::Int(pfn_id)])?;
        Ok(MappingChange::default())
    }

    /// `create`: registers a brand-new logical name with its first mapping.
    ///
    /// # Errors
    /// [`ErrorCode::LogicalNameNotFound`]'s dual: fails with
    /// [`ErrorCode::MappingExists`] if the logical name is already
    /// registered (use [`Self::add_mapping`] to add replicas).
    pub fn create_mapping(&mut self, m: &Mapping) -> RlsResult<MappingChange> {
        let mut txn = Transaction::new();
        let change = self.stage_create_mapping(&mut txn, m)?;
        self.db.commit(txn)?;
        self.stats.adds.fetch_add(1, Ordering::Relaxed);
        Ok(change)
    }

    /// `add`: adds a replica mapping to an *existing* logical name.
    pub fn add_mapping(&mut self, m: &Mapping) -> RlsResult<MappingChange> {
        let mut txn = Transaction::new();
        let change = self.stage_add_mapping(&mut txn, m)?;
        self.db.commit(txn)?;
        self.stats.adds.fetch_add(1, Ordering::Relaxed);
        Ok(change)
    }

    /// Registers a mapping, creating the logical name if needed — the
    /// common client convenience path (`create` falling back to `add`).
    pub fn put_mapping(&mut self, m: &Mapping) -> RlsResult<MappingChange> {
        if self.find_name_row(self.t_lfn, m.logical.as_str()).is_some() {
            self.add_mapping(m)
        } else {
            self.create_mapping(m)
        }
    }

    /// Validates and stages one `delete` (see [`Self::stage_create_mapping`]).
    fn stage_delete_mapping(
        &mut self,
        txn: &mut Transaction,
        m: &Mapping,
    ) -> RlsResult<MappingChange> {
        let Some((_, lfn_id, _)) = self.find_name_row(self.t_lfn, m.logical.as_str()) else {
            return Err(RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("logical name {} not registered", m.logical),
            ));
        };
        let Some((_, pfn_id, _)) = self.find_name_row(self.t_pfn, m.target.as_str()) else {
            return Err(RlsError::new(
                ErrorCode::MappingNotFound,
                format!("no mapping {m}"),
            ));
        };
        let Some(map_rid) = self.find_map_row(lfn_id, pfn_id) else {
            return Err(RlsError::new(
                ErrorCode::MappingNotFound,
                format!("no mapping {m}"),
            ));
        };
        self.db.txn_delete(txn, self.t_map, map_rid)?;
        let lfn_deleted = self.release_name(txn, self.t_lfn, m.logical.as_str())?;
        self.release_name(txn, self.t_pfn, m.target.as_str())?;
        Ok(MappingChange {
            lfn_created: false,
            lfn_deleted,
        })
    }

    /// `delete`: removes one replica mapping. Removes the logical/target
    /// name rows (and attributes) when their last mapping goes away.
    pub fn delete_mapping(&mut self, m: &Mapping) -> RlsResult<MappingChange> {
        let mut txn = Transaction::new();
        let change = self.stage_delete_mapping(&mut txn, m)?;
        self.db.commit(txn)?;
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(change)
    }

    /// Applies a batch of same-verb mapping mutations as **one**
    /// transaction: each item is validated against the catalog state left
    /// by the items before it (a duplicate within a batch fails exactly
    /// like a duplicate across requests), successful items stage into one
    /// shared transaction, and the whole batch group-commits — one WAL
    /// record, one flush (Fig. 11). A failed item occupies its `Err` slot
    /// and neither aborts nor un-syncs the rest; because it stages
    /// nothing, crash recovery replays exactly the successful items.
    pub fn bulk_mappings(
        &mut self,
        op: BulkMappingOp,
        items: &[Mapping],
    ) -> RlsResult<Vec<Result<MappingChange, RlsError>>> {
        self.bulk_mappings_impl(op, items.iter())
    }

    /// Like [`Self::bulk_mappings`], but over the subset of `items`
    /// selected by `idx` (in `idx` order). This is the shard router's
    /// fan-out path: each shard stages only its own items straight from the
    /// request slice, without cloning them into a per-shard batch. Results
    /// align with `idx`, not with `items`.
    pub fn bulk_mappings_indexed(
        &mut self,
        op: BulkMappingOp,
        items: &[Mapping],
        idx: &[usize],
    ) -> RlsResult<Vec<Result<MappingChange, RlsError>>> {
        self.bulk_mappings_impl(op, idx.iter().map(|&i| &items[i]))
    }

    fn bulk_mappings_impl<'a>(
        &mut self,
        op: BulkMappingOp,
        items: impl ExactSizeIterator<Item = &'a Mapping>,
    ) -> RlsResult<Vec<Result<MappingChange, RlsError>>> {
        let mut txn = Transaction::new();
        let mut results = Vec::with_capacity(items.len());
        let (mut adds, mut deletes) = (0u64, 0u64);
        for m in items {
            let r = match op {
                BulkMappingOp::Create => self.stage_create_mapping(&mut txn, m),
                BulkMappingOp::Add => self.stage_add_mapping(&mut txn, m),
                BulkMappingOp::Delete => self.stage_delete_mapping(&mut txn, m),
            };
            if r.is_ok() {
                match op {
                    BulkMappingOp::Create | BulkMappingOp::Add => adds += 1,
                    BulkMappingOp::Delete => deletes += 1,
                }
            }
            results.push(r);
        }
        self.db.bulk_commit(txn)?;
        self.stats.adds.fetch_add(adds, Ordering::Relaxed);
        self.stats.deletes.fetch_add(deletes, Ordering::Relaxed);
        Ok(results)
    }

    // --- queries (Table 1: "Query operations") -------------------------------

    /// Replicas of a logical name.
    pub fn query_lfn(&self, lfn: &str) -> RlsResult<Vec<TargetName>> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let Some((_, lfn_id, _)) = self.find_name_row(self.t_lfn, lfn) else {
            return Err(RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("logical name {lfn:?} not registered"),
            ));
        };
        let targets = self
            .db
            .table(self.t_map)
            .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            .filter_map(|(_, row)| self.name_by_obj_id(self.t_pfn, row[1].as_int()))
            .map(TargetName::new_unchecked)
            .collect();
        Ok(targets)
    }

    /// Logical names mapped to a target name (reverse query).
    pub fn query_pfn(&self, pfn: &str) -> RlsResult<Vec<LogicalName>> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let Some((_, pfn_id, _)) = self.find_name_row(self.t_pfn, pfn) else {
            return Err(RlsError::new(
                ErrorCode::TargetNameNotFound,
                format!("target name {pfn:?} not registered"),
            ));
        };
        let logicals = self
            .db
            .table(self.t_map)
            .index_lookup(MAP_IDX_PFN, &Value::Int(pfn_id))
            .filter_map(|(_, row)| self.name_by_obj_id(self.t_lfn, row[0].as_int()))
            .map(LogicalName::new_unchecked)
            .collect();
        Ok(logicals)
    }

    /// Wildcard query over logical names: all mappings whose LFN matches
    /// the glob, up to `limit`.
    pub fn wildcard_query_lfn(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<Mapping>> {
        self.stats.wildcard_queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        let prefix = glob.literal_prefix().to_owned();
        let lfn_rows: Vec<(i64, Arc<str>)> = self
            .db
            .table(self.t_lfn)
            .index_prefix_scan(IDX_NAME, &prefix)
            .filter(|(_, row)| glob.matches(row[1].as_str()))
            .map(|(_, row)| (row[0].as_int(), row[1].as_shared_str()))
            .collect();
        'outer: for (lfn_id, lfn_name) in lfn_rows {
            for (_, map_row) in self
                .db
                .table(self.t_map)
                .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            {
                if let Some(pfn) = self.name_by_obj_id(self.t_pfn, map_row[1].as_int()) {
                    out.push(Mapping {
                        logical: LogicalName::new_unchecked(&lfn_name),
                        target: TargetName::new_unchecked(pfn),
                    });
                    if out.len() >= limit {
                        break 'outer;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Wildcard query over target names.
    pub fn wildcard_query_pfn(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<Mapping>> {
        self.stats.wildcard_queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        let prefix = glob.literal_prefix().to_owned();
        let pfn_rows: Vec<(i64, Arc<str>)> = self
            .db
            .table(self.t_pfn)
            .index_prefix_scan(IDX_NAME, &prefix)
            .filter(|(_, row)| glob.matches(row[1].as_str()))
            .map(|(_, row)| (row[0].as_int(), row[1].as_shared_str()))
            .collect();
        'outer: for (pfn_id, pfn_name) in pfn_rows {
            for (_, map_row) in self
                .db
                .table(self.t_map)
                .index_lookup(MAP_IDX_PFN, &Value::Int(pfn_id))
            {
                if let Some(lfn) = self.name_by_obj_id(self.t_lfn, map_row[0].as_int()) {
                    out.push(Mapping {
                        logical: LogicalName::new_unchecked(lfn),
                        target: TargetName::new_unchecked(&pfn_name),
                    });
                    if out.len() >= limit {
                        break 'outer;
                    }
                }
            }
        }
        Ok(out)
    }

    /// True if the logical name is registered.
    pub fn lfn_exists(&self, lfn: &str) -> bool {
        self.find_name_row(self.t_lfn, lfn).is_some()
    }

    /// True if the exact mapping is registered.
    pub fn mapping_exists(&self, m: &Mapping) -> bool {
        let Some((_, lfn_id, _)) = self.find_name_row(self.t_lfn, m.logical.as_str()) else {
            return false;
        };
        let Some((_, pfn_id, _)) = self.find_name_row(self.t_pfn, m.target.as_str()) else {
            return false;
        };
        self.find_map_row(lfn_id, pfn_id).is_some()
    }

    /// Number of registered logical names.
    pub fn lfn_count(&self) -> u64 {
        self.db.table(self.t_lfn).len()
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> u64 {
        self.db.table(self.t_map).len()
    }

    /// All logical names, in index order — the payload of an uncompressed
    /// full soft-state update.
    pub fn all_lfns(&self) -> Vec<Arc<str>> {
        self.db
            .table(self.t_lfn)
            .index_prefix_scan(IDX_NAME, "")
            .map(|(_, row)| row[1].as_shared_str())
            .collect()
    }

    /// Visits every logical name without materializing the list.
    pub fn for_each_lfn(&self, mut f: impl FnMut(&str)) {
        for (_, row) in self.db.table(self.t_lfn).index_prefix_scan(IDX_NAME, "") {
            f(row[1].as_str());
        }
    }

    // --- attribute management (Table 1: "Attribute management") -------------

    fn attr_value_table(&self, vt: AttrValueType) -> TableId {
        match vt {
            AttrValueType::Str => self.t_str_attr,
            AttrValueType::Int => self.t_int_attr,
            AttrValueType::Float => self.t_flt_attr,
            AttrValueType::Date => self.t_date_attr,
        }
    }

    fn find_attr_def(&self, name: &str, objtype: ObjectType) -> Option<(RowId, i64, AttrValueType)> {
        self.db
            .table(self.t_attribute)
            .index_lookup(IDX_NAME, &Value::str(name))
            .find(|(_, row)| row[2].as_int() == objtype as i64)
            .map(|(rid, row)| {
                let vt = AttrValueType::from_u8(row[3].as_int() as u8)
                    .expect("attr type validated at define time");
                (rid, row[0].as_int(), vt)
            })
    }

    fn obj_id_for(&self, obj: &str, objtype: ObjectType) -> RlsResult<i64> {
        let (table, code) = match objtype {
            ObjectType::Logical => (self.t_lfn, ErrorCode::LogicalNameNotFound),
            ObjectType::Target => (self.t_pfn, ErrorCode::TargetNameNotFound),
        };
        self.find_name_row(table, obj)
            .map(|(_, id, _)| id)
            .ok_or_else(|| RlsError::new(code, format!("{objtype} name {obj:?} not registered")))
    }

    /// Defines a new attribute (`t_attribute` row).
    pub fn define_attribute(&mut self, def: &AttributeDef) -> RlsResult<()> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        if self.find_attr_def(&def.name, def.object_type).is_some() {
            return Err(RlsError::new(
                ErrorCode::AttributeExists,
                format!("attribute {:?} already defined", def.name),
            ));
        }
        let id = self.next_attr_id;
        self.next_attr_id += 1;
        let mut txn = Transaction::new();
        self.db.txn_insert(
            &mut txn,
            self.t_attribute,
            vec![
                Value::Int(id),
                Value::str(&def.name),
                Value::Int(def.object_type as i64),
                Value::Int(def.value_type as i64),
            ],
        )?;
        self.db.commit(txn)?;
        Ok(())
    }

    /// Removes an attribute definition. With `clear_values`, also deletes
    /// every stored value; otherwise fails if values exist.
    pub fn undefine_attribute(
        &mut self,
        name: &str,
        objtype: ObjectType,
        clear_values: bool,
    ) -> RlsResult<()> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let Some((rid, attr_id, vt)) = self.find_attr_def(name, objtype) else {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {name:?} not defined"),
            ));
        };
        let vtable = self.attr_value_table(vt);
        let value_rids: Vec<RowId> = self
            .db
            .table(vtable)
            .index_lookup(ATTRV_IDX_ATTR, &Value::Int(attr_id))
            .map(|(rid, _)| rid)
            .collect();
        if !value_rids.is_empty() && !clear_values {
            return Err(RlsError::new(
                ErrorCode::AttributeValueExists,
                format!("attribute {name:?} still has {} values", value_rids.len()),
            ));
        }
        let mut txn = Transaction::new();
        for vrid in value_rids {
            self.db.txn_delete(&mut txn, vtable, vrid)?;
        }
        self.db.txn_delete(&mut txn, self.t_attribute, rid)?;
        self.db.commit(txn)
    }

    /// Lists attribute definitions for an object type (or all).
    pub fn list_attribute_defs(&self, objtype: Option<ObjectType>) -> Vec<AttributeDef> {
        self.db
            .table(self.t_attribute)
            .scan()
            .filter(|(_, row)| objtype.is_none_or(|ot| row[2].as_int() == ot as i64))
            .map(|(_, row)| AttributeDef {
                name: row[1].as_str().to_owned(),
                object_type: ObjectType::from_u8(row[2].as_int() as u8).expect("validated"),
                value_type: AttrValueType::from_u8(row[3].as_int() as u8).expect("validated"),
            })
            .collect()
    }

    fn attr_value_to_engine(v: &AttrValue) -> Value {
        match v {
            AttrValue::Str(s) => Value::str(s),
            AttrValue::Int(i) => Value::Int(*i),
            AttrValue::Float(f) => Value::Float(*f),
            AttrValue::Date(t) => Value::Time(*t),
        }
    }

    fn engine_to_attr_value(v: &Value) -> AttrValue {
        match v {
            Value::Str(s) => AttrValue::Str(s.to_string()),
            Value::Int(i) => AttrValue::Int(*i),
            Value::Float(f) => AttrValue::Float(*f),
            Value::Time(t) => AttrValue::Date(*t),
        }
    }

    fn find_attr_value_row(&self, vtable: TableId, obj_id: i64, attr_id: i64) -> Option<RowId> {
        self.db
            .table(vtable)
            .index_lookup(ATTRV_IDX_OBJ, &Value::Int(obj_id))
            .find(|(_, row)| row[1].as_int() == attr_id)
            .map(|(rid, _)| rid)
    }

    /// Validates and stages one attribute attach (no staging on failure,
    /// same contract as [`Self::stage_create_mapping`]).
    fn stage_add_attribute(
        &mut self,
        txn: &mut Transaction,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        let Some((_, attr_id, vt)) = self.find_attr_def(attr_name, objtype) else {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {attr_name:?} not defined"),
            ));
        };
        if value.value_type() != vt {
            return Err(RlsError::new(
                ErrorCode::AttributeTypeMismatch,
                format!("attribute {attr_name:?} expects {vt}, got {}", value.value_type()),
            ));
        }
        let obj_id = self.obj_id_for(obj, objtype)?;
        let vtable = self.attr_value_table(vt);
        if self.find_attr_value_row(vtable, obj_id, attr_id).is_some() {
            return Err(RlsError::new(
                ErrorCode::AttributeValueExists,
                format!("object {obj:?} already has attribute {attr_name:?}"),
            ));
        }
        self.db.txn_insert(
            txn,
            vtable,
            vec![
                Value::Int(obj_id),
                Value::Int(attr_id),
                Self::attr_value_to_engine(value),
            ],
        )?;
        Ok(())
    }

    /// Validates and stages one attribute replace.
    fn stage_modify_attribute(
        &mut self,
        txn: &mut Transaction,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        let Some((_, attr_id, vt)) = self.find_attr_def(attr_name, objtype) else {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {attr_name:?} not defined"),
            ));
        };
        if value.value_type() != vt {
            return Err(RlsError::new(
                ErrorCode::AttributeTypeMismatch,
                format!("attribute {attr_name:?} expects {vt}, got {}", value.value_type()),
            ));
        }
        let obj_id = self.obj_id_for(obj, objtype)?;
        let vtable = self.attr_value_table(vt);
        let Some(rid) = self.find_attr_value_row(vtable, obj_id, attr_id) else {
            return Err(RlsError::new(
                ErrorCode::AttributeValueNotFound,
                format!("object {obj:?} has no value for attribute {attr_name:?}"),
            ));
        };
        self.db.txn_update(
            txn,
            vtable,
            rid,
            vec![
                Value::Int(obj_id),
                Value::Int(attr_id),
                Self::attr_value_to_engine(value),
            ],
        )?;
        Ok(())
    }

    /// Validates and stages one attribute detach.
    fn stage_remove_attribute(
        &mut self,
        txn: &mut Transaction,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
    ) -> RlsResult<()> {
        let Some((_, attr_id, vt)) = self.find_attr_def(attr_name, objtype) else {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {attr_name:?} not defined"),
            ));
        };
        let obj_id = self.obj_id_for(obj, objtype)?;
        let vtable = self.attr_value_table(vt);
        let Some(rid) = self.find_attr_value_row(vtable, obj_id, attr_id) else {
            return Err(RlsError::new(
                ErrorCode::AttributeValueNotFound,
                format!("object {obj:?} has no value for attribute {attr_name:?}"),
            ));
        };
        self.db.txn_delete(txn, vtable, rid)?;
        Ok(())
    }

    /// Attaches an attribute value to an object.
    pub fn add_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let mut txn = Transaction::new();
        self.stage_add_attribute(&mut txn, obj, objtype, attr_name, value)?;
        self.db.commit(txn)
    }

    /// Replaces an existing attribute value.
    pub fn modify_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let mut txn = Transaction::new();
        self.stage_modify_attribute(&mut txn, obj, objtype, attr_name, value)?;
        self.db.commit(txn)
    }

    /// Detaches an attribute value from an object.
    pub fn remove_attribute(
        &mut self,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
    ) -> RlsResult<()> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let mut txn = Transaction::new();
        self.stage_remove_attribute(&mut txn, obj, objtype, attr_name)?;
        self.db.commit(txn)
    }

    /// Applies a batch of attribute mutations (possibly mixed verbs) as
    /// one group-committed transaction — the attribute-side counterpart of
    /// [`Self::bulk_mappings`], with the same per-item failure contract.
    pub fn bulk_attributes(
        &mut self,
        items: &[BulkAttrOp<'_>],
    ) -> RlsResult<Vec<Result<(), RlsError>>> {
        self.stats
            .attribute_ops
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut txn = Transaction::new();
        let mut results = Vec::with_capacity(items.len());
        for item in items {
            let r = match *item {
                BulkAttrOp::Add {
                    obj,
                    objtype,
                    name,
                    value,
                } => self.stage_add_attribute(&mut txn, obj, objtype, name, value),
                BulkAttrOp::Modify {
                    obj,
                    objtype,
                    name,
                    value,
                } => self.stage_modify_attribute(&mut txn, obj, objtype, name, value),
                BulkAttrOp::Remove { obj, objtype, name } => {
                    self.stage_remove_attribute(&mut txn, obj, objtype, name)
                }
            };
            results.push(r);
        }
        self.db.bulk_commit(txn)?;
        Ok(results)
    }

    /// All attribute values attached to an object (optionally one named
    /// attribute).
    pub fn get_attributes(
        &self,
        obj: &str,
        objtype: ObjectType,
        name_filter: Option<&str>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let obj_id = self.obj_id_for(obj, objtype)?;
        let mut out = Vec::new();
        for (_, def_row) in self.db.table(self.t_attribute).scan() {
            if def_row[2].as_int() != objtype as i64 {
                continue;
            }
            let name = def_row[1].as_str();
            if let Some(filter) = name_filter {
                if filter != name {
                    continue;
                }
            }
            let attr_id = def_row[0].as_int();
            let vt = AttrValueType::from_u8(def_row[3].as_int() as u8).expect("validated");
            let vtable = self.attr_value_table(vt);
            if let Some(rid) = self.find_attr_value_row(vtable, obj_id, attr_id) {
                let row = self.db.table(vtable).get(rid).expect("live row");
                out.push((name.to_owned(), Self::engine_to_attr_value(&row[2])));
            }
        }
        Ok(out)
    }

    /// Attribute search (`query based on attribute names or values`):
    /// objects whose value for `attr_name` satisfies `op value`.
    pub fn search_attribute(
        &self,
        attr_name: &str,
        objtype: ObjectType,
        op: AttrCompare,
        operand: Option<&AttrValue>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        self.stats.attribute_ops.fetch_add(1, Ordering::Relaxed);
        let Some((_, attr_id, vt)) = self.find_attr_def(attr_name, objtype) else {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {attr_name:?} not defined"),
            ));
        };
        if op != AttrCompare::All {
            match operand {
                Some(v) if v.value_type() == vt => {}
                Some(v) => {
                    return Err(RlsError::new(
                        ErrorCode::AttributeTypeMismatch,
                        format!("operand type {} != attribute type {vt}", v.value_type()),
                    ))
                }
                None => {
                    return Err(RlsError::bad_request(
                        "attribute comparison requires an operand",
                    ))
                }
            }
        }
        let vtable = self.attr_value_table(vt);
        let obj_table = match objtype {
            ObjectType::Logical => self.t_lfn,
            ObjectType::Target => self.t_pfn,
        };
        let mut out = Vec::new();
        for (_, row) in self
            .db
            .table(vtable)
            .index_lookup(ATTRV_IDX_ATTR, &Value::Int(attr_id))
        {
            let value = Self::engine_to_attr_value(&row[2]);
            let keep = match operand {
                Some(v) => op.eval(&value, v),
                None => true,
            };
            if keep {
                if let Some(name) = self.name_by_obj_id(obj_table, row[0].as_int()) {
                    out.push((name.to_string(), value));
                }
            }
        }
        Ok(out)
    }

    // --- LRC management (Table 1: "LRC management") --------------------------

    /// Adds an RLI to this LRC's update list (with optional partition
    /// patterns, validated as regexes here).
    pub fn add_rli(&mut self, name: &str, flags: i64, patterns: &[String]) -> RlsResult<()> {
        if self
            .db
            .table(self.t_rli)
            .index_lookup(1, &Value::str(name))
            .next()
            .is_some()
        {
            return Err(RlsError::new(
                ErrorCode::RliExists,
                format!("RLI {name:?} already on update list"),
            ));
        }
        for p in patterns {
            Regex::new(p)?; // validate
        }
        let id = self.next_rli_id;
        self.next_rli_id += 1;
        let mut txn = Transaction::new();
        self.db.txn_insert(
            &mut txn,
            self.t_rli,
            vec![Value::Int(id), Value::Int(flags), Value::str(name)],
        )?;
        for p in patterns {
            self.db.txn_insert(
                &mut txn,
                self.t_rlipartition,
                vec![Value::Int(id), Value::str(p)],
            )?;
        }
        self.db.commit(txn)
    }

    /// Removes an RLI (and its partition rules) from the update list.
    pub fn remove_rli(&mut self, name: &str) -> RlsResult<()> {
        let Some((rid, rli_id)) = self
            .db
            .table(self.t_rli)
            .index_lookup(1, &Value::str(name))
            .next()
            .map(|(rid, row)| (rid, row[0].as_int()))
        else {
            return Err(RlsError::new(
                ErrorCode::RliNotFound,
                format!("RLI {name:?} not on update list"),
            ));
        };
        let part_rids: Vec<RowId> = self
            .db
            .table(self.t_rlipartition)
            .index_lookup(0, &Value::Int(rli_id))
            .map(|(rid, _)| rid)
            .collect();
        let mut txn = Transaction::new();
        for prid in part_rids {
            self.db.txn_delete(&mut txn, self.t_rlipartition, prid)?;
        }
        self.db.txn_delete(&mut txn, self.t_rli, rid)?;
        self.db.commit(txn)
    }

    /// The RLIs this LRC updates ("Query RLIs updated by this LRC").
    pub fn list_rlis(&self) -> Vec<RliTarget> {
        self.db
            .table(self.t_rli)
            .scan()
            .map(|(_, row)| {
                let rli_id = row[0].as_int();
                let patterns = self
                    .db
                    .table(self.t_rlipartition)
                    .index_lookup(0, &Value::Int(rli_id))
                    .map(|(_, prow)| prow[1].as_str().to_owned())
                    .collect();
                RliTarget {
                    name: row[2].as_str().to_owned(),
                    flags: row[1].as_int(),
                    patterns,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lrc() -> LrcDatabase {
        LrcDatabase::in_memory(BackendProfile::default())
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    #[test]
    fn create_add_query_delete_lifecycle() {
        let mut c = lrc();
        let ch = c.create_mapping(&m("lfn://f1", "pfn://a/f1")).unwrap();
        assert!(ch.lfn_created);
        c.add_mapping(&m("lfn://f1", "pfn://b/f1")).unwrap();
        let mut targets: Vec<String> = c
            .query_lfn("lfn://f1")
            .unwrap()
            .iter()
            .map(|t| t.to_string())
            .collect();
        targets.sort();
        assert_eq!(targets, vec!["pfn://a/f1", "pfn://b/f1"]);
        let ch = c.delete_mapping(&m("lfn://f1", "pfn://a/f1")).unwrap();
        assert!(!ch.lfn_deleted);
        let ch = c.delete_mapping(&m("lfn://f1", "pfn://b/f1")).unwrap();
        assert!(ch.lfn_deleted);
        assert!(!c.lfn_exists("lfn://f1"));
        assert_eq!(c.mapping_count(), 0);
        assert_eq!(c.lfn_count(), 0);
    }

    #[test]
    fn create_duplicate_rejected() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://x", "pfn://x")).unwrap();
        let e = c.create_mapping(&m("lfn://x", "pfn://y")).unwrap_err();
        assert_eq!(e.code(), ErrorCode::MappingExists);
    }

    #[test]
    fn add_to_missing_lfn_rejected() {
        let mut c = lrc();
        let e = c.add_mapping(&m("lfn://nope", "pfn://x")).unwrap_err();
        assert_eq!(e.code(), ErrorCode::LogicalNameNotFound);
    }

    #[test]
    fn add_duplicate_mapping_rejected() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://x", "pfn://x")).unwrap();
        let e = c.add_mapping(&m("lfn://x", "pfn://x")).unwrap_err();
        assert_eq!(e.code(), ErrorCode::MappingExists);
    }

    #[test]
    fn delete_missing_mapping_rejected() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://x", "pfn://x")).unwrap();
        let e = c.delete_mapping(&m("lfn://x", "pfn://other")).unwrap_err();
        assert_eq!(e.code(), ErrorCode::MappingNotFound);
        let e = c.delete_mapping(&m("lfn://zz", "pfn://x")).unwrap_err();
        assert_eq!(e.code(), ErrorCode::LogicalNameNotFound);
    }

    #[test]
    fn put_mapping_creates_or_adds() {
        let mut c = lrc();
        let ch = c.put_mapping(&m("lfn://p", "pfn://1")).unwrap();
        assert!(ch.lfn_created);
        let ch = c.put_mapping(&m("lfn://p", "pfn://2")).unwrap();
        assert!(!ch.lfn_created);
        assert_eq!(c.query_lfn("lfn://p").unwrap().len(), 2);
    }

    #[test]
    fn shared_pfn_refcounting() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://a", "pfn://shared")).unwrap();
        c.create_mapping(&m("lfn://b", "pfn://shared")).unwrap();
        c.delete_mapping(&m("lfn://a", "pfn://shared")).unwrap();
        // pfn://shared still referenced by lfn://b.
        assert_eq!(c.query_pfn("pfn://shared").unwrap().len(), 1);
        c.delete_mapping(&m("lfn://b", "pfn://shared")).unwrap();
        assert!(c.query_pfn("pfn://shared").is_err());
    }

    #[test]
    fn reverse_query() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://a", "pfn://site/a")).unwrap();
        c.create_mapping(&m("lfn://b", "pfn://site/a2")).unwrap();
        let ls = c.query_pfn("pfn://site/a").unwrap();
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].as_str(), "lfn://a");
    }

    #[test]
    fn wildcard_queries() {
        let mut c = lrc();
        for i in 0..20 {
            c.create_mapping(&m(
                &format!("lfn://run7/file{i:02}"),
                &format!("pfn://site/f{i:02}"),
            ))
            .unwrap();
        }
        c.create_mapping(&m("lfn://run8/file00", "pfn://site/g0"))
            .unwrap();
        let g = Glob::new("lfn://run7/*").unwrap();
        let hits = c.wildcard_query_lfn(&g, 1000).unwrap();
        assert_eq!(hits.len(), 20);
        // Limit honoured.
        let hits = c.wildcard_query_lfn(&g, 5).unwrap();
        assert_eq!(hits.len(), 5);
        // PFN-side wildcard.
        let g = Glob::new("pfn://site/g*").unwrap();
        let hits = c.wildcard_query_pfn(&g, 1000).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].logical.as_str(), "lfn://run8/file00");
    }

    #[test]
    fn all_lfns_sorted() {
        let mut c = lrc();
        for name in ["lfn://c", "lfn://a", "lfn://b"] {
            c.create_mapping(&m(name, &format!("pfn{name}"))).unwrap();
        }
        let names: Vec<String> = c.all_lfns().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["lfn://a", "lfn://b", "lfn://c"]);
        let mut visited = 0;
        c.for_each_lfn(|_| visited += 1);
        assert_eq!(visited, 3);
    }

    #[test]
    fn attribute_lifecycle() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://f", "pfn://f")).unwrap();
        let def = AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap();
        c.define_attribute(&def).unwrap();
        c.add_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Int(1024))
            .unwrap();
        let attrs = c
            .get_attributes("pfn://f", ObjectType::Target, None)
            .unwrap();
        assert_eq!(attrs, vec![("size".to_owned(), AttrValue::Int(1024))]);
        c.modify_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Int(2048))
            .unwrap();
        let attrs = c
            .get_attributes("pfn://f", ObjectType::Target, Some("size"))
            .unwrap();
        assert_eq!(attrs[0].1, AttrValue::Int(2048));
        c.remove_attribute("pfn://f", ObjectType::Target, "size")
            .unwrap();
        assert!(c
            .get_attributes("pfn://f", ObjectType::Target, None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn attribute_errors() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://f", "pfn://f")).unwrap();
        let def = AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap();
        c.define_attribute(&def).unwrap();
        assert_eq!(
            c.define_attribute(&def).unwrap_err().code(),
            ErrorCode::AttributeExists
        );
        assert_eq!(
            c.add_attribute("pfn://f", ObjectType::Target, "nope", &AttrValue::Int(1))
                .unwrap_err()
                .code(),
            ErrorCode::AttributeNotFound
        );
        assert_eq!(
            c.add_attribute(
                "pfn://f",
                ObjectType::Target,
                "size",
                &AttrValue::Str("big".into())
            )
            .unwrap_err()
            .code(),
            ErrorCode::AttributeTypeMismatch
        );
        c.add_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Int(1))
            .unwrap();
        assert_eq!(
            c.add_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Int(2))
                .unwrap_err()
                .code(),
            ErrorCode::AttributeValueExists
        );
        assert_eq!(
            c.add_attribute("pfn://zz", ObjectType::Target, "size", &AttrValue::Int(2))
                .unwrap_err()
                .code(),
            ErrorCode::TargetNameNotFound
        );
        assert_eq!(
            c.modify_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Str("s".into()))
                .unwrap_err()
                .code(),
            ErrorCode::AttributeTypeMismatch
        );
        // Undefine with values fails unless clear_values.
        assert_eq!(
            c.undefine_attribute("size", ObjectType::Target, false)
                .unwrap_err()
                .code(),
            ErrorCode::AttributeValueExists
        );
        c.undefine_attribute("size", ObjectType::Target, true)
            .unwrap();
        assert!(c.list_attribute_defs(None).is_empty());
    }

    #[test]
    fn attribute_search() {
        let mut c = lrc();
        for i in 0..5 {
            c.create_mapping(&m(&format!("lfn://f{i}"), &format!("pfn://f{i}")))
                .unwrap();
        }
        let def = AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap();
        c.define_attribute(&def).unwrap();
        for i in 0..5 {
            c.add_attribute(
                &format!("pfn://f{i}"),
                ObjectType::Target,
                "size",
                &AttrValue::Int(i * 100),
            )
            .unwrap();
        }
        let hits = c
            .search_attribute(
                "size",
                ObjectType::Target,
                AttrCompare::Ge,
                Some(&AttrValue::Int(300)),
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        let all = c
            .search_attribute("size", ObjectType::Target, AttrCompare::All, None)
            .unwrap();
        assert_eq!(all.len(), 5);
        // Missing operand for a comparison is a bad request.
        assert!(c
            .search_attribute("size", ObjectType::Target, AttrCompare::Gt, None)
            .is_err());
    }

    #[test]
    fn attributes_die_with_their_object() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://f", "pfn://f")).unwrap();
        let def = AttributeDef::new("owner", ObjectType::Logical, AttrValueType::Str).unwrap();
        c.define_attribute(&def).unwrap();
        c.add_attribute("lfn://f", ObjectType::Logical, "owner", &"alice".into())
            .unwrap();
        c.delete_mapping(&m("lfn://f", "pfn://f")).unwrap();
        // Re-register the same name: old attribute must not resurface.
        c.create_mapping(&m("lfn://f", "pfn://f")).unwrap();
        assert!(c
            .get_attributes("lfn://f", ObjectType::Logical, None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rli_update_list() {
        let mut c = lrc();
        c.add_rli("rli-east:39281", 0, &[]).unwrap();
        c.add_rli(
            "rli-west:39281",
            1,
            &["^lfn://ligo/.*".to_owned(), "^lfn://sdss/.*".to_owned()],
        )
        .unwrap();
        let mut rlis = c.list_rlis();
        rlis.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(rlis.len(), 2);
        assert_eq!(rlis[0].name, "rli-east:39281");
        assert!(rlis[0].patterns.is_empty());
        assert_eq!(rlis[1].patterns.len(), 2);
        assert_eq!(rlis[1].flags, 1);
        // Duplicates and bad patterns rejected.
        assert_eq!(
            c.add_rli("rli-east:39281", 0, &[]).unwrap_err().code(),
            ErrorCode::RliExists
        );
        assert_eq!(
            c.add_rli("rli-x", 0, &["(".to_owned()]).unwrap_err().code(),
            ErrorCode::InvalidPattern
        );
        c.remove_rli("rli-west:39281").unwrap();
        assert_eq!(c.list_rlis().len(), 1);
        assert_eq!(
            c.remove_rli("rli-west:39281").unwrap_err().code(),
            ErrorCode::RliNotFound
        );
    }

    #[test]
    fn bulk_create_shares_one_commit() {
        let dir = std::env::temp_dir().join(format!("rls-bulk1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("bulk1.wal");
        let _ = std::fs::remove_file(&wal);
        let mut c = LrcDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
        let items: Vec<Mapping> = (0..100)
            .map(|i| m(&format!("lfn://b/{i}"), &format!("pfn://b/{i}")))
            .collect();
        let results = c.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(c.lfn_count(), 100);
        // The whole batch is one WAL record, one commit, one group commit —
        // not 100 of each.
        assert_eq!(c.engine().wal_records(), 1);
        assert_eq!(c.engine().stats().commits, 1);
        assert_eq!(c.engine().stats().group_commits, 1);
        assert_eq!(c.stats().adds, 100);
    }

    #[test]
    fn bulk_failures_do_not_abort_the_batch() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://dup", "pfn://dup")).unwrap();
        let items = vec![
            m("lfn://ok1", "pfn://1"),
            m("lfn://dup", "pfn://2"),  // exists before the batch
            m("lfn://ok2", "pfn://3"),
            m("lfn://ok1", "pfn://4"),  // duplicate *within* the batch
        ];
        let results = c.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
        assert!(results[0].is_ok() && results[2].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().code(), ErrorCode::MappingExists);
        assert_eq!(results[3].as_ref().unwrap_err().code(), ErrorCode::MappingExists);
        // Successes landed; failures left no trace.
        assert!(c.mapping_exists(&m("lfn://ok1", "pfn://1")));
        assert!(c.mapping_exists(&m("lfn://ok2", "pfn://3")));
        assert!(!c.mapping_exists(&m("lfn://dup", "pfn://2")));
        assert!(!c.mapping_exists(&m("lfn://ok1", "pfn://4")));
        assert_eq!(c.stats().adds, 1 + 2);
    }

    #[test]
    fn bulk_batch_recovers_exactly_the_successful_items() {
        let dir = std::env::temp_dir().join(format!("rls-bulk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("bulk2.wal");
        let _ = std::fs::remove_file(&wal);
        {
            let mut c = LrcDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
            c.create_mapping(&m("lfn://pre", "pfn://pre")).unwrap();
            let items = vec![
                m("lfn://g/0", "pfn://g/0"),
                m("lfn://pre", "pfn://clash"), // fails: already registered
                m("lfn://g/1", "pfn://g/1"),
            ];
            let results = c.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
            assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 2);
            // Mixed delete batch in the same group-commit style.
            let dels = vec![
                m("lfn://g/0", "pfn://g/0"),
                m("lfn://gone", "pfn://gone"), // fails: never existed
            ];
            let results = c.bulk_mappings(BulkMappingOp::Delete, &dels).unwrap();
            assert!(results[0].is_ok() && results[1].is_err());
            assert_eq!(c.engine().stats().group_commits, 2);
            // No explicit sync: PerCommit flushed each group commit already.
        }
        let c = LrcDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
        // Replay restores exactly the per-item-successful mutations.
        assert!(c.lfn_exists("lfn://pre"));
        assert!(c.lfn_exists("lfn://g/1"));
        assert!(!c.lfn_exists("lfn://g/0"));
        assert!(!c.mapping_exists(&m("lfn://pre", "pfn://clash")));
        assert_eq!(c.lfn_count(), 2);
        assert_eq!(c.mapping_count(), 2);
    }

    #[test]
    fn bulk_attributes_mixed_verbs_one_commit() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://f", "pfn://f")).unwrap();
        let def = AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap();
        c.define_attribute(&def).unwrap();
        c.add_attribute("pfn://f", ObjectType::Target, "size", &AttrValue::Int(1))
            .unwrap();
        let commits_before = c.engine().stats().commits;
        let v = AttrValue::Int(7);
        let items = vec![
            BulkAttrOp::Modify {
                obj: "pfn://f",
                objtype: ObjectType::Target,
                name: "size",
                value: &v,
            },
            BulkAttrOp::Add {
                obj: "pfn://f",
                objtype: ObjectType::Target,
                name: "size",
                value: &v, // fails: value exists (just modified)
            },
            BulkAttrOp::Remove {
                obj: "pfn://missing",
                objtype: ObjectType::Target,
                name: "size", // fails: object unknown
            },
        ];
        let results = c.bulk_attributes(&items).unwrap();
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err().code(),
            ErrorCode::AttributeValueExists
        );
        assert_eq!(
            results[2].as_ref().unwrap_err().code(),
            ErrorCode::TargetNameNotFound
        );
        assert_eq!(c.engine().stats().commits, commits_before + 1);
        assert_eq!(c.engine().stats().group_commits, 1);
        let attrs = c.get_attributes("pfn://f", ObjectType::Target, None).unwrap();
        assert_eq!(attrs, vec![("size".to_owned(), AttrValue::Int(7))]);
    }

    #[test]
    fn empty_bulk_is_free() {
        let mut c = lrc();
        let results = c.bulk_mappings(BulkMappingOp::Create, &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(c.engine().stats().commits, 0);
        assert_eq!(c.engine().stats().group_commits, 0);
    }

    #[test]
    fn durable_catalog_recovers() {
        let dir = std::env::temp_dir().join(format!("rls-lrcdb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("lrc.wal");
        let _ = std::fs::remove_file(&wal);
        {
            let mut c = LrcDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
            c.create_mapping(&m("lfn://durable", "pfn://d1")).unwrap();
            c.add_mapping(&m("lfn://durable", "pfn://d2")).unwrap();
            c.add_rli("rli:1", 0, &[]).unwrap();
        }
        let mut c = LrcDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
        assert_eq!(c.query_lfn("lfn://durable").unwrap().len(), 2);
        assert_eq!(c.list_rlis().len(), 1);
        // Counters continue without id collisions.
        c.create_mapping(&m("lfn://after", "pfn://a")).unwrap();
        assert_eq!(c.lfn_count(), 2);
    }

    #[test]
    fn checkpoint_and_restore() {
        let dir = std::env::temp_dir().join(format!("rls-lrcsnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("lrc.snap");
        let mut c = lrc();
        for i in 0..50 {
            c.create_mapping(&m(&format!("lfn://s/{i}"), &format!("pfn://s/{i}")))
                .unwrap();
        }
        c.checkpoint(&snap).unwrap();
        let mut c2 = lrc();
        let n = c2.restore(&snap).unwrap();
        assert!(n >= 150); // 50 lfns + 50 pfns + 50 maps
        assert_eq!(c2.lfn_count(), 50);
        assert_eq!(c2.query_lfn("lfn://s/7").unwrap().len(), 1);
        // New ids don't collide after restore.
        c2.create_mapping(&m("lfn://fresh", "pfn://fresh")).unwrap();
        assert_eq!(c2.query_lfn("lfn://fresh").unwrap().len(), 1);
    }

    #[test]
    fn stats_count_operations() {
        let mut c = lrc();
        c.create_mapping(&m("lfn://a", "pfn://a")).unwrap();
        c.query_lfn("lfn://a").unwrap();
        let _ = c.query_lfn("lfn://missing");
        c.wildcard_query_lfn(&Glob::new("lfn://*").unwrap(), 10)
            .unwrap();
        c.delete_mapping(&m("lfn://a", "pfn://a")).unwrap();
        let s = c.stats();
        assert_eq!(s.adds, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.queries, 2);
        assert_eq!(s.wildcard_queries, 1);
    }
}
