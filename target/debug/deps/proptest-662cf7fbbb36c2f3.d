/root/repo/target/debug/deps/proptest-662cf7fbbb36c2f3.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-662cf7fbbb36c2f3.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-662cf7fbbb36c2f3.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
