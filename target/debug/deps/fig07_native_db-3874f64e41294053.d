/root/repo/target/debug/deps/fig07_native_db-3874f64e41294053.d: crates/bench/benches/fig07_native_db.rs

/root/repo/target/debug/deps/fig07_native_db-3874f64e41294053: crates/bench/benches/fig07_native_db.rs

crates/bench/benches/fig07_native_db.rs:
