/root/repo/target/release/deps/micro_softstate-8d188d736bfefdf8.d: crates/bench/benches/micro_softstate.rs

/root/repo/target/release/deps/micro_softstate-8d188d736bfefdf8: crates/bench/benches/micro_softstate.rs

crates/bench/benches/micro_softstate.rs:
