/root/repo/target/debug/deps/rls_workload-39e1134d0c260d58.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/rls_workload-39e1134d0c260d58: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
