//! Configuration-file parsing.
//!
//! The original server reads a flat `rls-server.conf`; we accept the same
//! style — `key value` lines, `#` comments — with keys mirroring the
//! documented Globus options where they exist and namespaced extensions
//! where this implementation adds knobs:
//!
//! ```text
//! # roles
//! lrc_server        true
//! rli_server        true
//!
//! # identity / bind
//! server_name       lrc-isi
//! bind              127.0.0.1:39281
//!
//! # storage backend
//! db_vendor         mysql          # mysql | postgres
//! db_flush          disabled       # enabled | disabled | none
//! db_wal            /var/lib/rls/lrc.wal
//! group_commit      true           # bulk requests share one WAL flush
//! shards            4              # LFN-hash catalog shards (1 = single engine)
//!
//! # soft-state updates (choose one mode)
//! update_mode       bloom          # none | full | immediate | bloom
//! update_interval   300            # seconds
//! update_immediate_threshold 100
//! update_bloom_bits_per_entry 10
//! update_bloom_hashes 3
//! update_rli        rli-east.example.org:39281
//! update_rli        rli-west.example.org:39281 bloom ^lfn://ligo/.*
//!
//! # RLI expiry + sharding
//! rli_expire_int    60
//! rli_expire_stale  1800
//! rli_shards        4              # LFN-hash RLI index shards (1 = single engine)
//!
//! # update resilience (see docs/FAULTS.md)
//! retry_max         3              # extra attempts per update call
//! backoff_base_ms   25             # exponential backoff base
//! connect_timeout_ms 2000          # dial timeout; 0 = block forever
//!
//! # connection handling
//! max_connections   512            # admission cap; over-cap connects get Busy
//! worker_threads    8              # request-handler pool; 0 = size from cores
//! idle_timeout_ms   300000         # reap idle admitted connections; 0 = never
//!
//! # observability
//! slow_op_threshold_ms 250        # 0 disables the slow-op log
//! log_level         info           # error | warn | info | debug | trace
//! log_format        text           # text (key=value) | json
//! trace_journal_capacity 4096     # spans retained; 0 disables retention
//! telemetry_interval_ms 1000      # flight-recorder cadence; 0 disables the sampler
//! telemetry_ring_capacity 512     # samples retained in the telemetry ring
//!
//! # security
//! acl_enabled       true
//! gridmap           "/O=Grid/OU=ISI/CN=Ann Chervenak" ann
//! acl               dn:/O=Grid/OU=ISI/.* lrc_read,lrc_write
//! acl               user:ann admin
//! ```
//!
//! `update_rli` lines are applied to the LRC's update list after startup
//! (they are catalog state in the original too — the `t_rli` table).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use rls_bloom::BloomParams;
use rls_storage::{BackendProfile, FlushMode, Vendor};
use rls_types::{AclEntry, AclSubject, Privilege, RlsError, RlsResult};

use crate::config::{AuthConfig, LrcConfig, RliConfig, ServerConfig, UpdateConfig, UpdateMode};

/// An `update_rli` directive: target plus mode flag and partition patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateRliDirective {
    /// RLI address.
    pub name: String,
    /// Request Bloom-compressed updates.
    pub bloom: bool,
    /// Partition patterns.
    pub patterns: Vec<String>,
}

/// A parsed configuration file: the server config plus directives that
/// apply to catalog state.
#[derive(Debug)]
pub struct ParsedConfig {
    /// The server configuration.
    pub server: ServerConfig,
    /// RLIs to register on the LRC's update list at startup.
    pub update_rlis: Vec<UpdateRliDirective>,
}

/// Splits one line into whitespace-separated fields, honouring
/// double-quoted strings (DNs contain spaces).
fn split_fields(line: &str) -> RlsResult<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    fields.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(RlsError::bad_request("unterminated quote in config line"));
    }
    if !cur.is_empty() {
        fields.push(cur);
    }
    Ok(fields)
}

fn parse_bool(key: &str, v: &str) -> RlsResult<bool> {
    match v {
        "true" | "yes" | "1" | "on" => Ok(true),
        "false" | "no" | "0" | "off" => Ok(false),
        other => Err(RlsError::bad_request(format!(
            "{key}: expected boolean, got {other:?}"
        ))),
    }
}

fn parse_secs(key: &str, v: &str) -> RlsResult<Duration> {
    v.parse::<u64>()
        .map(Duration::from_secs)
        .map_err(|_| RlsError::bad_request(format!("{key}: expected seconds, got {v:?}")))
}

/// Parses configuration text into a [`ParsedConfig`].
pub fn parse_config(text: &str) -> RlsResult<ParsedConfig> {
    let mut is_lrc = false;
    let mut is_rli = false;
    let mut name = String::new();
    let mut bind: Option<std::net::SocketAddr> = None;
    let mut vendor = Vendor::MySqlLike;
    let mut flush = FlushMode::Buffered;
    let mut wal: Option<PathBuf> = None;
    let mut group_commit = true;
    let mut shards = 1usize;
    let mut update_mode = "none".to_owned();
    let mut update_interval = Duration::from_secs(300);
    let mut immediate_threshold = 100usize;
    let mut bloom_bits = 10u32;
    let mut bloom_hashes = 3u32;
    let mut rli_expire_int = Duration::from_secs(60);
    let mut rli_expire_stale = Duration::from_secs(1800);
    let mut rli_shards = 1usize;
    let mut retry_max: Option<u32> = None;
    let mut backoff_base_ms: Option<u64> = None;
    let mut connect_timeout_ms: Option<u64> = None;
    let mut max_connections: Option<usize> = None;
    let mut worker_threads = 0usize;
    let mut idle_timeout: Option<Duration> = None;
    let mut slow_op_threshold: Option<Duration> = None;
    let mut log_level = rls_trace::Level::Info;
    let mut log_format = rls_trace::LogFormat::Text;
    let mut trace_journal_capacity = 4096usize;
    let mut telemetry_interval = Duration::from_secs(1);
    let mut telemetry_ring_capacity = 512usize;
    let mut acl_enabled = false;
    let mut gridmap: HashMap<String, String> = HashMap::new();
    let mut acl: Vec<AclEntry> = Vec::new();
    let mut update_rlis: Vec<UpdateRliDirective> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields = split_fields(line)
            .map_err(|e| e.context(format!("config line {}", lineno + 1)))?;
        let key = fields[0].as_str();
        let args = &fields[1..];
        let one = || -> RlsResult<&str> {
            args.first().map(String::as_str).ok_or_else(|| {
                RlsError::bad_request(format!("line {}: {key} needs a value", lineno + 1))
            })
        };
        match key {
            "lrc_server" => is_lrc = parse_bool(key, one()?)?,
            "rli_server" => is_rli = parse_bool(key, one()?)?,
            "server_name" => name = one()?.to_owned(),
            "bind" => {
                bind = Some(one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!("line {}: invalid bind address", lineno + 1))
                })?)
            }
            "db_vendor" => {
                vendor = match one()? {
                    "mysql" => Vendor::MySqlLike,
                    "postgres" | "postgresql" => Vendor::PostgresLike,
                    other => {
                        return Err(RlsError::bad_request(format!(
                            "line {}: unknown db_vendor {other:?}",
                            lineno + 1
                        )))
                    }
                }
            }
            "db_flush" => {
                flush = match one()? {
                    "enabled" => FlushMode::PerCommit,
                    "disabled" => FlushMode::Buffered,
                    "none" => FlushMode::None,
                    other => {
                        return Err(RlsError::bad_request(format!(
                            "line {}: unknown db_flush {other:?}",
                            lineno + 1
                        )))
                    }
                }
            }
            "db_wal" => wal = Some(PathBuf::from(one()?)),
            "group_commit" => group_commit = parse_bool(key, one()?)?,
            "shards" => {
                shards = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a shard count",
                        lineno + 1
                    ))
                })?
            }
            "update_mode" => update_mode = one()?.to_owned(),
            "update_interval" => update_interval = parse_secs(key, one()?)?,
            "update_immediate_threshold" => {
                immediate_threshold = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!("line {}: bad threshold", lineno + 1))
                })?
            }
            "update_bloom_bits_per_entry" => {
                bloom_bits = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!("line {}: bad bits per entry", lineno + 1))
                })?
            }
            "update_bloom_hashes" => {
                bloom_hashes = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!("line {}: bad hash count", lineno + 1))
                })?
            }
            "update_rli" => {
                let mut it = args.iter();
                let name = it
                    .next()
                    .ok_or_else(|| {
                        RlsError::bad_request(format!(
                            "line {}: update_rli needs an address",
                            lineno + 1
                        ))
                    })?
                    .clone();
                let mut bloom = false;
                let mut patterns = Vec::new();
                for extra in it {
                    if extra == "bloom" {
                        bloom = true;
                    } else {
                        rls_types::Regex::new(extra)
                            .map_err(|e| e.context(format!("config line {}", lineno + 1)))?;
                        patterns.push(extra.clone());
                    }
                }
                update_rlis.push(UpdateRliDirective {
                    name,
                    bloom,
                    patterns,
                });
            }
            "rli_expire_int" => rli_expire_int = parse_secs(key, one()?)?,
            "rli_expire_stale" => rli_expire_stale = parse_secs(key, one()?)?,
            "rli_shards" => {
                rli_shards = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a shard count",
                        lineno + 1
                    ))
                })?
            }
            "retry_max" => {
                retry_max = Some(one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!("line {}: bad retry count", lineno + 1))
                })?)
            }
            "backoff_base_ms" => {
                backoff_base_ms = Some(one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected milliseconds, got {:?}",
                        lineno + 1,
                        args.first().map(String::as_str).unwrap_or("")
                    ))
                })?)
            }
            "connect_timeout_ms" => {
                connect_timeout_ms = Some(one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected milliseconds, got {:?}",
                        lineno + 1,
                        args.first().map(String::as_str).unwrap_or("")
                    ))
                })?)
            }
            "max_connections" => {
                max_connections = Some(one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a connection count",
                        lineno + 1
                    ))
                })?)
            }
            "worker_threads" => {
                worker_threads = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a thread count",
                        lineno + 1
                    ))
                })?
            }
            "idle_timeout_ms" => {
                let ms: u64 = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected milliseconds, got {:?}",
                        lineno + 1,
                        args.first().map(String::as_str).unwrap_or("")
                    ))
                })?;
                idle_timeout = Some(Duration::from_millis(ms));
            }
            "slow_op_threshold_ms" => {
                let ms: u64 = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected milliseconds, got {:?}",
                        lineno + 1,
                        args.first().map(String::as_str).unwrap_or("")
                    ))
                })?;
                slow_op_threshold = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "log_level" => {
                log_level = one()?.parse().map_err(|e: String| {
                    RlsError::bad_request(format!("line {}: {e}", lineno + 1))
                })?
            }
            "log_format" => {
                log_format = one()?.parse().map_err(|e: String| {
                    RlsError::bad_request(format!("line {}: {e}", lineno + 1))
                })?
            }
            "trace_journal_capacity" => {
                trace_journal_capacity = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a span count",
                        lineno + 1
                    ))
                })?
            }
            "telemetry_interval_ms" => {
                let ms: u64 = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected milliseconds, got {:?}",
                        lineno + 1,
                        args.first().map(String::as_str).unwrap_or("")
                    ))
                })?;
                telemetry_interval = Duration::from_millis(ms);
            }
            "telemetry_ring_capacity" => {
                telemetry_ring_capacity = one()?.parse().map_err(|_| {
                    RlsError::bad_request(format!(
                        "line {}: expected a sample count",
                        lineno + 1
                    ))
                })?
            }
            "acl_enabled" => acl_enabled = parse_bool(key, one()?)?,
            "gridmap" => {
                if args.len() != 2 {
                    return Err(RlsError::bad_request(format!(
                        "line {}: gridmap needs \"DN\" localuser",
                        lineno + 1
                    )));
                }
                gridmap.insert(args[0].clone(), args[1].clone());
            }
            "acl" => {
                if args.len() != 2 {
                    return Err(RlsError::bad_request(format!(
                        "line {}: acl needs subject:pattern privileges",
                        lineno + 1
                    )));
                }
                let (subject, pattern) = args[0].split_once(':').ok_or_else(|| {
                    RlsError::bad_request(format!(
                        "line {}: acl subject must be dn:<re> or user:<re>",
                        lineno + 1
                    ))
                })?;
                let subject = match subject {
                    "dn" => AclSubject::Dn,
                    "user" => AclSubject::LocalUser,
                    other => {
                        return Err(RlsError::bad_request(format!(
                            "line {}: unknown acl subject {other:?}",
                            lineno + 1
                        )))
                    }
                };
                let privileges: Vec<Privilege> = args[1]
                    .split(',')
                    .map(|p| {
                        Privilege::from_config_str(p.trim()).ok_or_else(|| {
                            RlsError::bad_request(format!(
                                "line {}: unknown privilege {p:?}",
                                lineno + 1
                            ))
                        })
                    })
                    .collect::<RlsResult<_>>()?;
                acl.push(
                    AclEntry::new(subject, pattern, privileges)
                        .map_err(|e| e.context(format!("config line {}", lineno + 1)))?,
                );
            }
            other => {
                return Err(RlsError::bad_request(format!(
                    "line {}: unknown configuration key {other:?}",
                    lineno + 1
                )))
            }
        }
    }

    if !is_lrc && !is_rli {
        return Err(RlsError::bad_request(
            "config must enable lrc_server and/or rli_server",
        ));
    }
    let profile = BackendProfile {
        vendor,
        flush,
        ..match vendor {
            Vendor::MySqlLike => BackendProfile::mysql_buffered(),
            Vendor::PostgresLike => BackendProfile::postgres_buffered(),
        }
    };
    let mode = match update_mode.as_str() {
        "none" => UpdateMode::None,
        "full" => UpdateMode::Full {
            interval: update_interval,
        },
        "immediate" => UpdateMode::Immediate {
            delta_interval: Duration::from_secs(30),
            delta_threshold: immediate_threshold,
            full_interval: update_interval,
        },
        "bloom" => UpdateMode::Bloom {
            interval: update_interval,
            params: BloomParams {
                bits_per_entry: bloom_bits,
                hashes: bloom_hashes,
            },
        },
        other => {
            return Err(RlsError::bad_request(format!(
                "unknown update_mode {other:?}"
            )))
        }
    };
    // Any resilience key switches the update plane from fail-fast to the
    // retrying defaults, with the named knobs overridden.
    let mut retry = rls_net::RetryPolicy::none();
    if retry_max.is_some() || backoff_base_ms.is_some() || connect_timeout_ms.is_some() {
        retry = rls_net::RetryPolicy::updater_default();
        if let Some(n) = retry_max {
            retry.max_retries = n;
        }
        if let Some(ms) = backoff_base_ms {
            retry.backoff_base = Duration::from_millis(ms);
        }
        if let Some(ms) = connect_timeout_ms {
            retry.connect_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
    }
    let server = ServerConfig {
        name,
        bind: bind.unwrap_or_else(|| "127.0.0.1:0".parse().expect("literal")),
        lrc: is_lrc.then(|| LrcConfig {
            profile,
            wal_path: wal.clone(),
            update: UpdateConfig {
                mode,
                auto: true,
                retry,
                ..Default::default()
            },
            group_commit,
            shards,
        }),
        rli: is_rli.then_some(RliConfig {
            profile,
            wal_path: None,
            expire_timeout: rli_expire_stale,
            expire_interval: rli_expire_int,
            auto_expire: true,
            shards: rli_shards,
        }),
        auth: AuthConfig {
            enabled: acl_enabled,
            gridmap,
            acl,
        },
        max_connections: max_connections.unwrap_or(512),
        worker_threads,
        idle_timeout: idle_timeout.unwrap_or_else(|| Duration::from_secs(300)),
        slow_op_threshold,
        log_level,
        log_format,
        trace_journal_capacity,
        telemetry_interval,
        telemetry_ring_capacity,
        ..ServerConfig::default()
    };
    Ok(ParsedConfig {
        server,
        update_rlis,
    })
}

/// Reads and parses a configuration file.
pub fn load_config(path: impl AsRef<std::path::Path>) -> RlsResult<ParsedConfig> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| RlsError::new(rls_types::ErrorCode::Io, format!("read config: {e}")))?;
    parse_config(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# sample config
lrc_server   true
rli_server   true
server_name  lrc-isi
bind         127.0.0.1:0

db_vendor    postgres
db_flush     disabled

update_mode     bloom
update_interval 120
update_bloom_bits_per_entry 12
update_bloom_hashes 4
update_rli      rli-east:39281
update_rli      rli-west:39281 bloom ^lfn://ligo/.*

rli_expire_int   30
rli_expire_stale 900

acl_enabled  true
gridmap      "/O=Grid/OU=ISI/CN=Ann Chervenak" ann
acl          dn:/O=Grid/OU=ISI/.* lrc_read,lrc_write
acl          user:ann admin
"#;

    #[test]
    fn sample_parses_fully() {
        let parsed = parse_config(SAMPLE).unwrap();
        let s = &parsed.server;
        assert_eq!(s.name, "lrc-isi");
        let lrc = s.lrc.as_ref().unwrap();
        assert_eq!(lrc.profile.vendor, Vendor::PostgresLike);
        assert_eq!(lrc.profile.flush, FlushMode::Buffered);
        let UpdateMode::Bloom { interval, params } = &lrc.update.mode else {
            panic!("expected bloom mode");
        };
        assert_eq!(*interval, Duration::from_secs(120));
        assert_eq!(params.bits_per_entry, 12);
        assert_eq!(params.hashes, 4);
        let rli = s.rli.as_ref().unwrap();
        assert_eq!(rli.expire_interval, Duration::from_secs(30));
        assert_eq!(rli.expire_timeout, Duration::from_secs(900));
        assert!(rli.auto_expire);
        assert!(s.auth.enabled);
        assert_eq!(
            s.auth.gridmap.get("/O=Grid/OU=ISI/CN=Ann Chervenak"),
            Some(&"ann".to_owned())
        );
        assert_eq!(s.auth.acl.len(), 2);
        assert_eq!(parsed.update_rlis.len(), 2);
        assert_eq!(
            parsed.update_rlis[1],
            UpdateRliDirective {
                name: "rli-west:39281".into(),
                bloom: true,
                patterns: vec!["^lfn://ligo/.*".into()],
            }
        );
    }

    #[test]
    fn minimal_configs() {
        let p = parse_config("lrc_server true").unwrap();
        assert!(p.server.lrc.is_some());
        assert!(p.server.rli.is_none());
        let p = parse_config("rli_server yes").unwrap();
        assert!(p.server.rli.is_some());
    }

    #[test]
    fn error_cases() {
        assert!(parse_config("").is_err()); // no role
        assert!(parse_config("lrc_server maybe").is_err());
        assert!(parse_config("lrc_server true\nunknown_key 1").is_err());
        assert!(parse_config("lrc_server true\nbind not-an-addr").is_err());
        assert!(parse_config("lrc_server true\nacl nocolon lrc_read").is_err());
        assert!(parse_config("lrc_server true\nacl dn:.* not_a_priv").is_err());
        assert!(parse_config("lrc_server true\ngridmap onlyone").is_err());
        assert!(parse_config("lrc_server true\nupdate_mode warp").is_err());
        assert!(parse_config("lrc_server true\nupdate_rli x bad[pattern").is_err());
        assert!(parse_config("lrc_server true\ngridmap \"unterminated x").is_err());
    }

    #[test]
    fn group_commit_key_parses() {
        // Default: bulk requests group-commit.
        let p = parse_config("lrc_server true").unwrap();
        assert!(p.server.lrc.as_ref().unwrap().group_commit);
        let p = parse_config("lrc_server true\ngroup_commit off").unwrap();
        assert!(!p.server.lrc.as_ref().unwrap().group_commit);
        assert!(parse_config("lrc_server true\ngroup_commit sometimes").is_err());
    }

    #[test]
    fn shards_key_parses() {
        // Default: one shard, the classic single engine.
        let p = parse_config("lrc_server true").unwrap();
        assert_eq!(p.server.lrc.as_ref().unwrap().shards, 1);
        let p = parse_config("lrc_server true\nshards 8").unwrap();
        assert_eq!(p.server.lrc.as_ref().unwrap().shards, 8);
        assert!(parse_config("lrc_server true\nshards many").is_err());
    }

    #[test]
    fn rli_shards_key_parses() {
        // Default: one shard, the classic single-lock index.
        let p = parse_config("rli_server true").unwrap();
        assert_eq!(p.server.rli.as_ref().unwrap().shards, 1);
        let p = parse_config("rli_server true\nrli_shards 8").unwrap();
        assert_eq!(p.server.rli.as_ref().unwrap().shards, 8);
        assert!(parse_config("rli_server true\nrli_shards many").is_err());
    }

    #[test]
    fn slow_op_threshold_parses() {
        let p = parse_config("lrc_server true\nslow_op_threshold_ms 250").unwrap();
        assert_eq!(
            p.server.slow_op_threshold,
            Some(Duration::from_millis(250))
        );
        // 0 disables the slow-op log.
        let p = parse_config("lrc_server true\nslow_op_threshold_ms 0").unwrap();
        assert_eq!(p.server.slow_op_threshold, None);
        assert!(parse_config("lrc_server true\nslow_op_threshold_ms fast").is_err());
    }

    #[test]
    fn logging_and_trace_keys_parse() {
        let p = parse_config(
            "lrc_server true\nlog_level debug\nlog_format json\ntrace_journal_capacity 128",
        )
        .unwrap();
        assert_eq!(p.server.log_level, rls_trace::Level::Debug);
        assert_eq!(p.server.log_format, rls_trace::LogFormat::Json);
        assert_eq!(p.server.trace_journal_capacity, 128);
        // Defaults.
        let p = parse_config("lrc_server true").unwrap();
        assert_eq!(p.server.log_level, rls_trace::Level::Info);
        assert_eq!(p.server.log_format, rls_trace::LogFormat::Text);
        assert_eq!(p.server.trace_journal_capacity, 4096);
        // 0 disables retention but still parses.
        let p = parse_config("lrc_server true\ntrace_journal_capacity 0").unwrap();
        assert_eq!(p.server.trace_journal_capacity, 0);
        assert!(parse_config("lrc_server true\nlog_level loud").is_err());
        assert!(parse_config("lrc_server true\nlog_format xml").is_err());
        assert!(parse_config("lrc_server true\ntrace_journal_capacity many").is_err());
    }

    #[test]
    fn telemetry_keys_parse() {
        let p = parse_config(
            "lrc_server true\ntelemetry_interval_ms 250\ntelemetry_ring_capacity 64",
        )
        .unwrap();
        assert_eq!(p.server.telemetry_interval, Duration::from_millis(250));
        assert_eq!(p.server.telemetry_ring_capacity, 64);
        // Defaults: 1 s cadence, 512 samples.
        let p = parse_config("lrc_server true").unwrap();
        assert_eq!(p.server.telemetry_interval, Duration::from_secs(1));
        assert_eq!(p.server.telemetry_ring_capacity, 512);
        // 0 disables the sampler thread but still parses.
        let p = parse_config("lrc_server true\ntelemetry_interval_ms 0").unwrap();
        assert_eq!(p.server.telemetry_interval, Duration::ZERO);
        assert!(parse_config("lrc_server true\ntelemetry_interval_ms soon").is_err());
        assert!(parse_config("lrc_server true\ntelemetry_ring_capacity lots").is_err());
    }

    #[test]
    fn retry_keys_parse() {
        use rls_net::RetryPolicy;
        // Absent keys leave the update plane fail-fast.
        let p = parse_config("lrc_server true").unwrap();
        let lrc = p.server.lrc.as_ref().unwrap();
        assert_eq!(lrc.update.retry, RetryPolicy::none());
        assert!(!lrc.update.retry.retries_enabled());
        // Any resilience key enables the retrying defaults + overrides.
        let p = parse_config(
            "lrc_server true\nretry_max 5\nbackoff_base_ms 10\nconnect_timeout_ms 1500",
        )
        .unwrap();
        let r = p.server.lrc.as_ref().unwrap().update.retry;
        assert_eq!(r.max_retries, 5);
        assert_eq!(r.backoff_base, Duration::from_millis(10));
        assert_eq!(r.connect_timeout, Some(Duration::from_millis(1500)));
        assert!(r.retries_enabled());
        // connect_timeout_ms 0 means "block forever" (no dial timeout).
        let p = parse_config("lrc_server true\nretry_max 1\nconnect_timeout_ms 0").unwrap();
        assert_eq!(
            p.server.lrc.as_ref().unwrap().update.retry.connect_timeout,
            None
        );
        assert!(parse_config("lrc_server true\nretry_max lots").is_err());
        assert!(parse_config("lrc_server true\nbackoff_base_ms soon").is_err());
        assert!(parse_config("lrc_server true\nconnect_timeout_ms never").is_err());
    }

    #[test]
    fn connection_keys_parse() {
        let p = parse_config(
            "lrc_server true\nmax_connections 64\nworker_threads 4\nidle_timeout_ms 15000",
        )
        .unwrap();
        assert_eq!(p.server.max_connections, 64);
        assert_eq!(p.server.worker_threads, 4);
        assert_eq!(p.server.idle_timeout, Duration::from_millis(15_000));
        // Defaults: 512 slots, auto-sized pool, 5-minute reap.
        let p = parse_config("lrc_server true").unwrap();
        assert_eq!(p.server.max_connections, 512);
        assert_eq!(p.server.worker_threads, 0);
        assert_eq!(p.server.idle_timeout, Duration::from_secs(300));
        // idle_timeout_ms 0 disables reaping.
        let p = parse_config("lrc_server true\nidle_timeout_ms 0").unwrap();
        assert_eq!(p.server.idle_timeout, Duration::ZERO);
        assert!(parse_config("lrc_server true\nmax_connections lots").is_err());
        assert!(parse_config("lrc_server true\nworker_threads some").is_err());
        assert!(parse_config("lrc_server true\nidle_timeout_ms later").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_config("# comment\n\nlrc_server true # trailing\n").unwrap();
        assert!(p.server.lrc.is_some());
    }

    #[test]
    fn quoted_fields_keep_spaces() {
        let fields = split_fields(r#"gridmap "/O=Grid/CN=A B C" abc"#).unwrap();
        assert_eq!(fields, vec!["gridmap", "/O=Grid/CN=A B C", "abc"]);
    }

    #[test]
    fn parsed_config_starts_a_server() {
        let parsed = parse_config(
            "lrc_server true\nrli_server true\nserver_name conf-test\nbind 127.0.0.1:0",
        )
        .unwrap();
        let server = crate::server::Server::start(parsed.server).unwrap();
        assert_eq!(server.name(), "conf-test");
        let mut c =
            crate::client::RlsClient::connect(server.addr(), &rls_types::Dn::anonymous())
                .unwrap();
        c.ping().unwrap();
    }
}
