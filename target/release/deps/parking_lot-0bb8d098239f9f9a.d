/root/repo/target/release/deps/parking_lot-0bb8d098239f9f9a.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0bb8d098239f9f9a.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0bb8d098239f9f9a.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
