//! # `rls-net`
//!
//! The transport layer: framed connections over TCP, plus the **link
//! shaper** that stands in for the paper's physical testbeds (DESIGN.md §2).
//!
//! The paper measures two environments:
//!
//! * a 100 Mbit/s LAN (most single-server experiments, Fig. 4–12);
//! * a WAN between Los Angeles and Chicago with a 63.8 ms mean RTT
//!   (Bloom-filter update experiments, Table 3 / Fig. 13).
//!
//! [`LinkProfile`] reproduces both: each frame a [`Conn`] sends or receives
//! is charged half the RTT plus `bytes × 8 / bandwidth` of serialization
//! delay, metered against a per-connection cursor so back-to-back frames
//! queue behind each other as they would on a real link.
//!
//! [`SharedIngress`] models the *server's* access link: every shaped
//! connection pointed at the same server shares one bandwidth pool, so
//! concurrent soft-state updates contend — the mechanism behind the rise in
//! per-client update time beyond ~7 concurrent LRCs in Fig. 13.

//!
//! Two resilience surfaces ride on the same layer:
//!
//! * [`FaultHook`] — injection points consulted at connect/send/recv so a
//!   deterministic fault plan (the `rls-faults` crate) can script refused
//!   connections, mid-frame disconnects, read stalls and slow links;
//! * [`RetryPolicy`] — exponential backoff with deterministic jitter and
//!   per-attempt timeouts, consumed by the client layer's retry loops.

pub mod conn;
pub mod fault;
pub mod pipeline;
pub mod retry;
pub mod shaper;

pub use conn::{
    connect, connect_with, Conn, ConnMeter, ConnectOptions, Listener, Readiness, RecvHalf,
    SendHalf, TryRecv, TryRecvRef, RX_RETAIN_CAP,
};
pub use fault::{FaultDecision, FaultHook};
pub use pipeline::Pipeline;
pub use retry::{splitmix64, RetryPolicy};
pub use shaper::{LinkProfile, SharedIngress};
