/root/repo/target/debug/deps/rls_bloom-4c426580a98dab2d.d: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/debug/deps/librls_bloom-4c426580a98dab2d.rlib: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/debug/deps/librls_bloom-4c426580a98dab2d.rmeta: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

crates/bloom/src/lib.rs:
crates/bloom/src/counting.rs:
crates/bloom/src/filter.rs:
crates/bloom/src/hash.rs:
crates/bloom/src/params.rs:
