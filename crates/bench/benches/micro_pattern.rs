//! Criterion micro-benches: the pattern engine on the request hot path
//! (ACL checks per operation; partition matching per updated name).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rls_types::{Glob, Regex};

fn bench_regex(c: &mut Criterion) {
    let acl = Regex::new("^/O=Grid/OU=ISI/CN=.*$").unwrap();
    let dn_hit = "/O=Grid/OU=ISI/CN=Ann Chervenak";
    let dn_miss = "/O=Grid/OU=UCLA/CN=Someone Else Entirely";
    let mut g = c.benchmark_group("pattern/regex");
    g.throughput(Throughput::Elements(1));
    g.bench_function("acl_hit", |b| b.iter(|| acl.is_full_match(dn_hit)));
    g.bench_function("acl_miss", |b| b.iter(|| acl.is_full_match(dn_miss)));
    let partition = Regex::new("^lfn://ligo/(h1|l1|h2)/run[0-9]+/.*").unwrap();
    let lfn = "lfn://ligo/h1/run042/frame-000123456.gwf";
    g.bench_function("partition_match", |b| b.iter(|| partition.is_match(lfn)));
    // Pathological input a backtracking engine would choke on.
    let evil = Regex::new("(a*)*b").unwrap();
    let hay = "a".repeat(64);
    g.bench_function("pathological_linear", |b| b.iter(|| evil.is_match(&hay)));
    g.finish();
}

fn bench_glob(c: &mut Criterion) {
    let glob = Glob::new("lfn://ligo/*/run*/frame-*.gwf").unwrap();
    let hit = "lfn://ligo/h1/run042/frame-000123456.gwf";
    let miss = "lfn://sdss/plate/0042/spec-000123456.fits";
    let mut g = c.benchmark_group("pattern/glob");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit", |b| b.iter(|| glob.matches(hit)));
    g.bench_function("miss", |b| b.iter(|| glob.matches(miss)));
    g.bench_function("compile", |b| {
        b.iter(|| Glob::new("lfn://ligo/*/run*/frame-*.gwf").unwrap())
    });
    g.finish();
}

fn bench_regex_compile(c: &mut Criterion) {
    c.bench_function("pattern/regex_compile", |b| {
        b.iter(|| Regex::new("^lfn://ligo/(h1|l1|h2)/run[0-9]+/.*").unwrap())
    });
}

criterion_group!(benches, bench_regex, bench_glob, bench_regex_compile);
criterion_main!(benches);
