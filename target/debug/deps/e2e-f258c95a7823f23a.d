/root/repo/target/debug/deps/e2e-f258c95a7823f23a.d: crates/core/tests/e2e.rs

/root/repo/target/debug/deps/libe2e-f258c95a7823f23a.rmeta: crates/core/tests/e2e.rs

crates/core/tests/e2e.rs:
