/root/repo/target/debug/deps/proptest-4fae94779d297870.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4fae94779d297870.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
