//! Transactions: mutation buffers that become one atomic WAL record.
//!
//! The engine uses *validate-then-mutate* discipline: callers perform all
//! existence/uniqueness checks against committed state first, then apply
//! mutations through a [`Transaction`]. Mutations apply to the in-memory
//! tables eagerly (so later steps of the same transaction observe earlier
//! ones — bulk operations need this) and are recorded in the transaction;
//! [`Database::commit`](crate::Database::commit) writes them to the WAL as
//! one record. A transaction dropped without commit leaves the in-memory
//! state mutated but unlogged — engine-layer callers must uphold the
//! validate-then-mutate contract so that cannot happen on error paths.

use crate::wal::WalOp;

/// A buffered transaction.
#[derive(Debug, Default)]
pub struct Transaction {
    pub(crate) ops: Vec<WalOp>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}
