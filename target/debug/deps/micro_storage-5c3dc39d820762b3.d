/root/repo/target/debug/deps/micro_storage-5c3dc39d820762b3.d: crates/bench/benches/micro_storage.rs

/root/repo/target/debug/deps/libmicro_storage-5c3dc39d820762b3.rmeta: crates/bench/benches/micro_storage.rs

crates/bench/benches/micro_storage.rs:
