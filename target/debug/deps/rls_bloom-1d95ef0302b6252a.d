/root/repo/target/debug/deps/rls_bloom-1d95ef0302b6252a.d: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs Cargo.toml

/root/repo/target/debug/deps/librls_bloom-1d95ef0302b6252a.rmeta: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs Cargo.toml

crates/bloom/src/lib.rs:
crates/bloom/src/counting.rs:
crates/bloom/src/filter.rs:
crates/bloom/src/hash.rs:
crates/bloom/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
