//! Request/response message types covering every operation of the paper's
//! Table 1, the soft-state update protocol, and server administration.

use rls_bloom::{BloomFilter, BloomParams};
use rls_metrics::{HistogramSnapshot, TelemetrySample, BUCKET_COUNT};
use rls_types::{
    AttrCompare, AttrValue, AttributeDef, Dn, Mapping, ObjectType, RlsError, RlsResult,
};

use crate::codec::{Reader, Writer};

/// Protocol version tag carried in the Hello handshake.
pub type ProtocolVersion = u16;

/// Baseline protocol version: lockstep request/response, no request-ID
/// envelope. A `pipeline_depth = 1` client handshakes with this version so
/// its wire bytes are identical to pre-pipelining builds.
pub const PROTOCOL_VERSION: ProtocolVersion = 1;

/// Pipelined protocol version: request frames may carry a request-ID
/// envelope ([`REQUEST_ID_ENVELOPE_OPCODE`]), responses echo the ID, and
/// the server may answer one connection's requests out of order. Clients
/// offer this version in `Hello` only when they intend to pipeline;
/// servers accept both versions and echo the negotiated one in
/// `HelloAck::protocol`.
pub const PROTOCOL_VERSION_PIPELINED: ProtocolVersion = 2;

/// Reserved opcode marking a request frame that starts with a trace
/// envelope: `[u16 0xFFFE][u32 n][n × u64 trace IDs]` followed by the
/// ordinary `[u16 opcode][body]`. Frames without the envelope decode with an
/// empty trace-ID list, so pre-tracing peers interoperate unchanged; a
/// batched soft-state delta carries the IDs of every originating operation.
pub const TRACE_ENVELOPE_OPCODE: u16 = 0xFFFE;

/// Reserved opcode marking a freshness-stamp envelope on soft-state request
/// frames: `[u16 0xFFFD][u64 commit_seq][u64 commit_unix_micros]` followed
/// by the rest of the frame (either the trace envelope or the ordinary
/// `[u16 opcode][body]`). The sending LRC stamps each update with the
/// catalog commit sequence it covers and the wall-clock time that state was
/// current; the receiving RLI subtracts to get its update lag
/// (`rli.update_lag` / `rli.update_lag_ms.<lrc>` in the staleness plane).
/// Frames without the envelope decode with no stamp, so older peers
/// interoperate unchanged.
pub const LAG_ENVELOPE_OPCODE: u16 = 0xFFFD;

/// Reserved opcode marking a request-ID envelope on pipelined frames:
/// `[u16 0xFFFC][u64 id]` followed by the rest of the frame (further
/// envelopes or the ordinary `[u16 opcode][body]`). A pipelining client
/// stamps every request with a per-connection ID; the server echoes the
/// same envelope on the matching response so the client can retire
/// out-of-order completions. Frames without the envelope keep strict
/// in-order semantics, so version-1 peers interoperate unchanged.
pub const REQUEST_ID_ENVELOPE_OPCODE: u16 = 0xFFFC;

/// A soft-state freshness stamp carried in the [`LAG_ENVELOPE_OPCODE`]
/// envelope (see there for semantics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LagStamp {
    /// LRC catalog commit sequence this update covers (its `commit_seq()`
    /// at snapshot/flush time).
    pub commit_seq: u64,
    /// Wall-clock microseconds since the Unix epoch at which the shipped
    /// state was current on the LRC.
    pub commit_unix_micros: u64,
}

/// Everything a request frame carries besides the request itself: trace
/// IDs from the trace envelope and the optional soft-state freshness
/// stamp. Produced by [`Request::decode_framed`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Trace IDs of the originating operations (empty for untraced frames).
    pub trace_ids: Vec<u64>,
    /// Soft-state freshness stamp, if the sender attached one.
    pub lag: Option<LagStamp>,
    /// Pipelining request ID, if the sender attached one (see
    /// [`REQUEST_ID_ENVELOPE_OPCODE`]). The response must echo it.
    pub request_id: Option<u64>,
}

/// An attribute attachment: object, attribute name, value.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrAssignment {
    /// The object (logical or target name) to attach to.
    pub obj: String,
    /// Which namespace the object lives in.
    pub objtype: ObjectType,
    /// Attribute name.
    pub name: String,
    /// The value.
    pub value: AttrValue,
}

/// An RLI on an LRC's update list, as reported by `ListRlis`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RliTargetWire {
    /// RLI address.
    pub name: String,
    /// Update flags (bit 0: Bloom-filter updates).
    pub flags: i64,
    /// Partition patterns.
    pub patterns: Vec<String>,
}

/// One RLI query hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RliHit {
    /// LRC address believed to hold the mapping.
    pub lrc: String,
    /// Microseconds-since-epoch of the asserting update (0 for Bloom mode,
    /// which keeps no per-name timestamps).
    pub updated_micros: u64,
}

/// Server statistics snapshot.
///
/// The fixed counters below predate the metrics registry and stay for
/// compatibility; `op_latencies` and `counters` carry the open-ended
/// observability snapshot (see `docs/OBSERVABILITY.md` for the catalog).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsWire {
    /// Server acts as an LRC.
    pub is_lrc: bool,
    /// Server acts as an RLI.
    pub is_rli: bool,
    /// Logical names in the LRC catalog.
    pub lrc_lfn_count: u64,
    /// Mappings in the LRC catalog.
    pub lrc_mapping_count: u64,
    /// Associations in the RLI relational store.
    pub rli_association_count: u64,
    /// Bloom filters held in RLI memory.
    pub rli_bloom_filters: u64,
    /// Successful add/create operations.
    pub adds: u64,
    /// Successful deletes.
    pub deletes: u64,
    /// Queries served (LRC + RLI).
    pub queries: u64,
    /// Soft-state updates received (RLI role).
    pub updates_received: u64,
    /// Associations discarded by the expire thread.
    pub expired: u64,
    /// Latency histograms, `(metric name, snapshot)` sorted by name:
    /// per-operation dispatch timings (`op.*`) plus storage, soft-state,
    /// and RLI apply/expire durations.
    pub op_latencies: Vec<(String, HistogramSnapshot)>,
    /// Labeled counters and gauges, `(metric name, value)` sorted by name:
    /// transport bytes/frames, engine counters, Bloom-filter state, queue
    /// depths. Fractional values use scaled-integer names (`*_ppm`).
    pub counters: Vec<(String, u64)>,
}

/// Flight-recorder history snapshot, as returned by `StatsHistory`.
///
/// Samples are cumulative registry snapshots ([`TelemetrySample`], the same
/// shape the server's `TelemetryRing` retains); clients derive rates and
/// per-window percentiles by diffing consecutive samples with the
/// `rls_metrics` delta helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsHistoryWire {
    /// Configured sampler cadence in microseconds (0 = sampler disabled;
    /// the ring then only grows through forced samples).
    pub interval_micros: u64,
    /// Ring capacity in samples.
    pub ring_capacity: u64,
    /// Lifetime count of samples captured (including evicted ones).
    pub samples_total: u64,
    /// Retained samples matching the query, oldest first.
    pub samples: Vec<TelemetrySample>,
}

/// One finished span from a server's trace journal, as returned by
/// `TraceQuery`. Mirrors `rls_trace::SpanRecord`; kept separate so the wire
/// format is owned by this crate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanWire {
    /// Trace the span belongs to (nonzero).
    pub trace_id: u64,
    /// Journal-local span identity.
    pub span_id: u64,
    /// Enclosing span's `span_id`, or 0 for a root span.
    pub parent_span: u64,
    /// Span name (`op.add`, `lrc.commit`, `softstate.delta_send`, ...).
    pub op: String,
    /// Start offset in microseconds since the journal was created.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub duration_micros: u64,
    /// Whether the work succeeded.
    pub ok: bool,
    /// Free-form annotation (error code, target server, counts).
    pub detail: String,
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    // -- connection --
    /// Authentication handshake; must be the first frame.
    Hello {
        /// Client distinguished name (stands in for the X.509 certificate).
        dn: Dn,
        /// Protocol version.
        version: ProtocolVersion,
    },
    /// Liveness check.
    Ping,

    // -- LRC mapping management --
    /// Register a new logical name with its first mapping.
    Create(Mapping),
    /// Add a replica mapping to an existing logical name.
    Add(Mapping),
    /// Delete one mapping.
    Delete(Mapping),
    /// Bulk create; per-item status response.
    BulkCreate(Vec<Mapping>),
    /// Bulk add.
    BulkAdd(Vec<Mapping>),
    /// Bulk delete.
    BulkDelete(Vec<Mapping>),

    // -- LRC queries --
    /// Replicas of one logical name.
    QueryLfn(String),
    /// Logical names for one target name.
    QueryPfn(String),
    /// Bulk logical-name query.
    BulkQueryLfn(Vec<String>),
    /// Wildcard query over logical names.
    WildcardQueryLfn {
        /// Glob pattern.
        pattern: String,
        /// Result cap.
        limit: u32,
    },
    /// Wildcard query over target names.
    WildcardQueryPfn {
        /// Glob pattern.
        pattern: String,
        /// Result cap.
        limit: u32,
    },

    // -- LRC attribute management --
    /// Define an attribute.
    DefineAttr(AttributeDef),
    /// Remove an attribute definition.
    UndefineAttr {
        /// Attribute name.
        name: String,
        /// Namespace.
        objtype: ObjectType,
        /// Also delete stored values.
        clear_values: bool,
    },
    /// Attach a value.
    AddAttr(AttrAssignment),
    /// Replace a value.
    ModifyAttr(AttrAssignment),
    /// Detach a value.
    RemoveAttr {
        /// Object name.
        obj: String,
        /// Namespace.
        objtype: ObjectType,
        /// Attribute name.
        name: String,
    },
    /// Read attributes of an object.
    GetAttrs {
        /// Object name.
        obj: String,
        /// Namespace.
        objtype: ObjectType,
        /// Restrict to one attribute.
        name: Option<String>,
    },
    /// Search objects by attribute value.
    SearchAttr {
        /// Attribute name.
        name: String,
        /// Namespace.
        objtype: ObjectType,
        /// Comparison operator.
        op: AttrCompare,
        /// Operand (absent for `All`).
        operand: Option<AttrValue>,
    },
    /// Bulk attribute attach.
    BulkAddAttr(Vec<AttrAssignment>),
    /// Bulk attribute replace.
    BulkModifyAttr(Vec<AttrAssignment>),
    /// Bulk attribute detach: `(obj, objtype, attr name)` triples.
    BulkRemoveAttr(Vec<(String, ObjectType, String)>),

    // -- LRC management --
    /// Add an RLI to the update list.
    AddRli {
        /// RLI address.
        name: String,
        /// Update flags (bit 0: Bloom).
        flags: i64,
        /// Partition patterns.
        patterns: Vec<String>,
    },
    /// Remove an RLI from the update list.
    RemoveRli {
        /// RLI address.
        name: String,
    },
    /// Query RLIs updated by this LRC.
    ListRlis,

    // -- RLI operations --
    /// Which LRCs hold mappings for a logical name.
    RliQueryLfn(String),
    /// Bulk RLI query.
    RliBulkQueryLfn(Vec<String>),
    /// Wildcard RLI query (uncompressed mode only).
    RliWildcardQuery {
        /// Glob pattern.
        pattern: String,
        /// Result cap.
        limit: u32,
    },
    /// Query LRCs that update this RLI.
    RliListLrcs,

    // -- soft-state updates (LRC → RLI) --
    /// One chunk of an uncompressed full update.
    SoftStateFull {
        /// Sending LRC's address.
        lrc: String,
        /// Identifies the update this chunk belongs to.
        update_id: u64,
        /// Chunk sequence number.
        seq: u32,
        /// True on the final chunk.
        last: bool,
        /// Logical names in this chunk.
        lfns: Vec<String>,
    },
    /// Incremental (immediate-mode) update.
    SoftStateDelta {
        /// Sending LRC's address.
        lrc: String,
        /// Newly registered logical names.
        added: Vec<String>,
        /// Logical names whose last mapping was removed.
        removed: Vec<String>,
    },
    /// Bloom-filter update: the complete summary bitmap.
    SoftStateBloom {
        /// Sending LRC's address.
        lrc: String,
        /// Filter parameters.
        params: BloomParams,
        /// Filter size in bits.
        bits: u64,
        /// The bitmap, little-endian u64 words as bytes.
        words: Vec<u8>,
        /// Approximate entry count.
        entries: u64,
    },

    // -- administration --
    /// Server statistics.
    Stats,
    /// Flight-recorder telemetry history: retained registry samples with
    /// `seq > since_seq` (admin privilege, like `Stats`).
    StatsHistory {
        /// Return only samples with a larger sequence number (0 = from
        /// the oldest retained sample).
        since_seq: u64,
        /// Result cap; the *newest* matches win (0 = server default).
        limit: u32,
    },
    /// Query the server's span journal (requires `lrc_read` or `rli_read`).
    TraceQuery {
        /// Exact trace ID, or 0 to match any trace.
        trace_id: u64,
        /// Span-name prefix filter (empty matches every op).
        op_prefix: String,
        /// Minimum span duration in microseconds.
        min_duration_micros: u64,
        /// Result cap (0 means server default).
        limit: u32,
    },
}

/// A server response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloAck {
        /// Server software version.
        server_version: String,
        /// Server acts as an LRC.
        is_lrc: bool,
        /// Server acts as an RLI.
        is_rli: bool,
        /// Negotiated protocol version. Encoded as a trailing `u16` only
        /// when ≥ 2: version-1 clients never offer 2, so they never see
        /// the extra field and their strict trailing-bytes check passes.
        protocol: ProtocolVersion,
    },
    /// Ping reply.
    Pong,
    /// Generic success.
    Ok,
    /// Operation failed.
    Error(RlsError),
    /// Replica targets (LRC `QueryLfn`).
    Targets(Vec<String>),
    /// Logical names (LRC `QueryPfn`).
    Logicals(Vec<String>),
    /// Mappings (wildcard queries).
    Mappings(Vec<Mapping>),
    /// Per-item failures of a bulk operation: `(index, error)` pairs.
    /// An empty list means every item succeeded.
    BulkStatus(Vec<(u32, RlsError)>),
    /// Bulk LFN query results: per name, targets or the error.
    BulkLfnResults(Vec<(String, Result<Vec<String>, RlsError>)>),
    /// Attribute values (`GetAttrs` / `SearchAttr`): `(name, value)` where
    /// name is the attribute (GetAttrs) or object (SearchAttr).
    Attrs(Vec<(String, AttrValue)>),
    /// RLIs on the update list.
    Rlis(Vec<RliTargetWire>),
    /// RLI query hits.
    RliHits(Vec<RliHit>),
    /// RLI bulk query results.
    RliBulkResults(Vec<(String, Result<Vec<RliHit>, RlsError>)>),
    /// `(lfn, lrc)` pairs from an RLI wildcard query.
    RliPairs(Vec<(String, String)>),
    /// Plain name list (`RliListLrcs`).
    Names(Vec<String>),
    /// Statistics snapshot.
    StatsReport(ServerStatsWire),
    /// Span journal query results, newest first.
    Spans(Vec<SpanWire>),
    /// Flight-recorder history (`StatsHistory`).
    StatsHistoryReport(StatsHistoryWire),
}

// --- encoding ---------------------------------------------------------------

fn w_mapping(w: &mut Writer, m: &Mapping) {
    w.str(m.logical.as_str());
    w.str(m.target.as_str());
}

fn r_mapping(r: &mut Reader<'_>) -> RlsResult<Mapping> {
    let l = r.str()?;
    let t = r.str()?;
    Mapping::new(l, t)
}

/// Encodes a histogram snapshot sparsely: totals first, then only the
/// non-empty buckets as `(index, count)` pairs. Most histograms have a
/// handful of occupied buckets, so this beats shipping all 32 counters.
fn w_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.u64(h.count);
    w.u64(h.sum_micros);
    w.u64(h.max_micros);
    let occupied = h.buckets.iter().filter(|&&c| c != 0).count() as u32;
    w.u32(occupied);
    for (i, &c) in h.buckets.iter().enumerate() {
        if c != 0 {
            w.u8(i as u8);
            w.u64(c);
        }
    }
}

fn r_histogram(r: &mut Reader<'_>) -> RlsResult<HistogramSnapshot> {
    let count = r.u64()?;
    let sum_micros = r.u64()?;
    let max_micros = r.u64()?;
    let occupied = r.u32()? as usize;
    if occupied > BUCKET_COUNT {
        return Err(RlsError::protocol("histogram bucket count out of range"));
    }
    let mut buckets = [0u64; BUCKET_COUNT];
    for _ in 0..occupied {
        let idx = r.u8()? as usize;
        if idx >= BUCKET_COUNT {
            return Err(RlsError::protocol("histogram bucket index out of range"));
        }
        buckets[idx] = r.u64()?;
    }
    Ok(HistogramSnapshot {
        buckets,
        count,
        sum_micros,
        max_micros,
    })
}

/// Encodes one telemetry sample: header, then the counter and histogram
/// registries (histograms reuse the sparse bucket encoding).
fn w_sample(w: &mut Writer, s: &TelemetrySample) {
    w.u64(s.seq);
    w.u64(s.at_unix_micros);
    w.u64(s.uptime_micros);
    w.list(&s.counters, |w, (name, v)| {
        w.str(name);
        w.u64(*v);
    });
    w.list(&s.histograms, |w, (name, h)| {
        w.str(name);
        w_histogram(w, h);
    });
}

fn r_sample(r: &mut Reader<'_>) -> RlsResult<TelemetrySample> {
    Ok(TelemetrySample {
        seq: r.u64()?,
        at_unix_micros: r.u64()?,
        uptime_micros: r.u64()?,
        counters: r.list(|r| Ok((r.str()?, r.u64()?)))?,
        histograms: r.list(|r| {
            let name = r.str()?;
            let h = r_histogram(r)?;
            Ok((name, h))
        })?,
    })
}

fn w_assignment(w: &mut Writer, a: &AttrAssignment) {
    w.str(&a.obj);
    w.u8(a.objtype as u8);
    w.str(&a.name);
    w.attr_value(&a.value);
}

fn r_assignment(r: &mut Reader<'_>) -> RlsResult<AttrAssignment> {
    Ok(AttrAssignment {
        obj: r.str()?,
        objtype: r.object_type()?,
        name: r.str()?,
        value: r.attr_value()?,
    })
}

impl Request {
    /// Stable metric name for per-operation latency histograms, one per
    /// variant (`"op.create"`, `"op.soft_state_bloom"`, …). Dispatch
    /// records each request's service time under this key; the names are
    /// part of the operator interface documented in `docs/OBSERVABILITY.md`.
    pub fn op_name(&self) -> &'static str {
        match self {
            Self::Hello { .. } => "op.hello",
            Self::Ping => "op.ping",
            Self::Create(_) => "op.create",
            Self::Add(_) => "op.add",
            Self::Delete(_) => "op.delete",
            Self::BulkCreate(_) => "op.bulk_create",
            Self::BulkAdd(_) => "op.bulk_add",
            Self::BulkDelete(_) => "op.bulk_delete",
            Self::QueryLfn(_) => "op.query_lfn",
            Self::QueryPfn(_) => "op.query_pfn",
            Self::BulkQueryLfn(_) => "op.bulk_query_lfn",
            Self::WildcardQueryLfn { .. } => "op.wildcard_query_lfn",
            Self::WildcardQueryPfn { .. } => "op.wildcard_query_pfn",
            Self::DefineAttr(_) => "op.define_attr",
            Self::UndefineAttr { .. } => "op.undefine_attr",
            Self::AddAttr(_) => "op.add_attr",
            Self::ModifyAttr(_) => "op.modify_attr",
            Self::RemoveAttr { .. } => "op.remove_attr",
            Self::GetAttrs { .. } => "op.get_attrs",
            Self::SearchAttr { .. } => "op.search_attr",
            Self::BulkAddAttr(_) => "op.bulk_add_attr",
            Self::BulkModifyAttr(_) => "op.bulk_modify_attr",
            Self::BulkRemoveAttr(_) => "op.bulk_remove_attr",
            Self::AddRli { .. } => "op.add_rli",
            Self::RemoveRli { .. } => "op.remove_rli",
            Self::ListRlis => "op.list_rlis",
            Self::RliQueryLfn(_) => "op.rli_query_lfn",
            Self::RliBulkQueryLfn(_) => "op.rli_bulk_query_lfn",
            Self::RliWildcardQuery { .. } => "op.rli_wildcard_query",
            Self::RliListLrcs => "op.rli_list_lrcs",
            Self::SoftStateFull { .. } => "op.soft_state_full",
            Self::SoftStateDelta { .. } => "op.soft_state_delta",
            Self::SoftStateBloom { .. } => "op.soft_state_bloom",
            Self::Stats => "op.stats",
            Self::StatsHistory { .. } => "op.stats_history",
            Self::TraceQuery { .. } => "op.trace_query",
        }
    }

    /// Encodes the request (opcode + body) with no trace envelope.
    pub fn encode(&self) -> Writer {
        self.encode_traced(&[])
    }

    /// Encodes the request, prefixing a trace envelope when any nonzero
    /// trace IDs are supplied (see [`TRACE_ENVELOPE_OPCODE`]).
    pub fn encode_traced(&self, trace_ids: &[u64]) -> Writer {
        self.encode_framed(trace_ids, None)
    }

    /// Encodes the request with the full envelope set: a trace envelope
    /// when any nonzero trace IDs are supplied, and a freshness-stamp
    /// envelope when `stamp` is present (see [`LAG_ENVELOPE_OPCODE`]).
    pub fn encode_framed(&self, trace_ids: &[u64], stamp: Option<LagStamp>) -> Writer {
        self.encode_framed_with_id(trace_ids, stamp, None)
    }

    /// Encodes the request with every envelope the protocol knows: the
    /// request-ID envelope first when `request_id` is present (see
    /// [`REQUEST_ID_ENVELOPE_OPCODE`]), then the trace and freshness
    /// envelopes as in [`Request::encode_framed`]. `request_id: None`
    /// produces bytes identical to the version-1 encoding.
    pub fn encode_framed_with_id(
        &self,
        trace_ids: &[u64],
        stamp: Option<LagStamp>,
        request_id: Option<u64>,
    ) -> Writer {
        let mut w = Writer::with_capacity(64);
        if let Some(id) = request_id {
            w.u16(REQUEST_ID_ENVELOPE_OPCODE);
            w.u64(id);
        }
        let ids: Vec<u64> = trace_ids.iter().copied().filter(|&t| t != 0).collect();
        if !ids.is_empty() {
            w.u16(TRACE_ENVELOPE_OPCODE);
            w.u32(ids.len() as u32);
            for id in &ids {
                w.u64(*id);
            }
        }
        if let Some(stamp) = stamp {
            w.u16(LAG_ENVELOPE_OPCODE);
            w.u64(stamp.commit_seq);
            w.u64(stamp.commit_unix_micros);
        }
        self.encode_body(&mut w);
        w
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Self::Hello { dn, version } => {
                w.u16(1);
                w.dn(dn);
                w.u16(*version);
            }
            Self::Ping => w.u16(2),
            Self::Create(m) => {
                w.u16(10);
                w_mapping(w, m);
            }
            Self::Add(m) => {
                w.u16(11);
                w_mapping(w, m);
            }
            Self::Delete(m) => {
                w.u16(12);
                w_mapping(w, m);
            }
            Self::BulkCreate(ms) => {
                w.u16(13);
                w.list(ms, w_mapping);
            }
            Self::BulkAdd(ms) => {
                w.u16(14);
                w.list(ms, w_mapping);
            }
            Self::BulkDelete(ms) => {
                w.u16(15);
                w.list(ms, w_mapping);
            }
            Self::QueryLfn(s) => {
                w.u16(20);
                w.str(s);
            }
            Self::QueryPfn(s) => {
                w.u16(21);
                w.str(s);
            }
            Self::BulkQueryLfn(names) => {
                w.u16(22);
                w.list(names, |w, s| w.str(s));
            }
            Self::WildcardQueryLfn { pattern, limit } => {
                w.u16(23);
                w.str(pattern);
                w.u32(*limit);
            }
            Self::WildcardQueryPfn { pattern, limit } => {
                w.u16(24);
                w.str(pattern);
                w.u32(*limit);
            }
            Self::DefineAttr(def) => {
                w.u16(30);
                w.attr_def(def);
            }
            Self::UndefineAttr {
                name,
                objtype,
                clear_values,
            } => {
                w.u16(31);
                w.str(name);
                w.u8(*objtype as u8);
                w.bool(*clear_values);
            }
            Self::AddAttr(a) => {
                w.u16(32);
                w_assignment(w, a);
            }
            Self::ModifyAttr(a) => {
                w.u16(33);
                w_assignment(w, a);
            }
            Self::RemoveAttr { obj, objtype, name } => {
                w.u16(34);
                w.str(obj);
                w.u8(*objtype as u8);
                w.str(name);
            }
            Self::GetAttrs { obj, objtype, name } => {
                w.u16(35);
                w.str(obj);
                w.u8(*objtype as u8);
                w.option(name.as_ref(), |w, s| w.str(s));
            }
            Self::SearchAttr {
                name,
                objtype,
                op,
                operand,
            } => {
                w.u16(36);
                w.str(name);
                w.u8(*objtype as u8);
                w.u8(*op as u8);
                w.option(operand.as_ref(), |w, v| w.attr_value(v));
            }
            Self::BulkAddAttr(items) => {
                w.u16(37);
                w.list(items, w_assignment);
            }
            Self::BulkModifyAttr(items) => {
                w.u16(38);
                w.list(items, w_assignment);
            }
            Self::BulkRemoveAttr(items) => {
                w.u16(39);
                w.list(items, |w, (obj, objtype, name)| {
                    w.str(obj);
                    w.u8(*objtype as u8);
                    w.str(name);
                });
            }
            Self::AddRli {
                name,
                flags,
                patterns,
            } => {
                w.u16(40);
                w.str(name);
                w.i64(*flags);
                w.list(patterns, |w, s| w.str(s));
            }
            Self::RemoveRli { name } => {
                w.u16(41);
                w.str(name);
            }
            Self::ListRlis => w.u16(42),
            Self::RliQueryLfn(s) => {
                w.u16(50);
                w.str(s);
            }
            Self::RliBulkQueryLfn(names) => {
                w.u16(51);
                w.list(names, |w, s| w.str(s));
            }
            Self::RliWildcardQuery { pattern, limit } => {
                w.u16(52);
                w.str(pattern);
                w.u32(*limit);
            }
            Self::RliListLrcs => w.u16(53),
            Self::SoftStateFull {
                lrc,
                update_id,
                seq,
                last,
                lfns,
            } => {
                w.u16(60);
                w.str(lrc);
                w.u64(*update_id);
                w.u32(*seq);
                w.bool(*last);
                w.list(lfns, |w, s| w.str(s));
            }
            Self::SoftStateDelta {
                lrc,
                added,
                removed,
            } => {
                w.u16(61);
                w.str(lrc);
                w.list(added, |w, s| w.str(s));
                w.list(removed, |w, s| w.str(s));
            }
            Self::SoftStateBloom {
                lrc,
                params,
                bits,
                words,
                entries,
            } => {
                w.u16(62);
                w.str(lrc);
                w.bloom_params(*params);
                w.u64(*bits);
                w.u64(*entries);
                w.bytes(words);
            }
            Self::Stats => w.u16(70),
            Self::StatsHistory { since_seq, limit } => {
                w.u16(72);
                w.u64(*since_seq);
                w.u32(*limit);
            }
            Self::TraceQuery {
                trace_id,
                op_prefix,
                min_duration_micros,
                limit,
            } => {
                w.u16(71);
                w.u64(*trace_id);
                w.str(op_prefix);
                w.u64(*min_duration_micros);
                w.u32(*limit);
            }
        }
    }

    /// Decodes a request frame body, discarding any trace envelope.
    pub fn decode(body: &[u8]) -> RlsResult<Self> {
        Ok(Self::decode_traced(body)?.1)
    }

    /// Decodes a request frame body plus its trace IDs. Frames without a
    /// trace envelope yield an empty ID list (the untraced legacy shape).
    pub fn decode_traced(body: &[u8]) -> RlsResult<(Vec<u64>, Self)> {
        let (meta, req) = Self::decode_framed(body)?;
        Ok((meta.trace_ids, req))
    }

    /// Decodes a request frame body plus every envelope it carries (trace
    /// IDs and the optional soft-state freshness stamp). Envelopes may
    /// appear in either order; frames without envelopes decode with an
    /// empty [`FrameMeta`].
    pub fn decode_framed(body: &[u8]) -> RlsResult<(FrameMeta, Self)> {
        let mut r = Reader::new(body);
        let mut opcode = r.u16()?;
        let mut meta = FrameMeta::default();
        loop {
            match opcode {
                TRACE_ENVELOPE_OPCODE => {
                    let n = r.u32()? as usize;
                    if n.saturating_mul(8) > r.remaining() {
                        return Err(RlsError::protocol("trace id list longer than frame"));
                    }
                    meta.trace_ids.reserve(n);
                    for _ in 0..n {
                        meta.trace_ids.push(r.u64()?);
                    }
                }
                LAG_ENVELOPE_OPCODE => {
                    meta.lag = Some(LagStamp {
                        commit_seq: r.u64()?,
                        commit_unix_micros: r.u64()?,
                    });
                }
                REQUEST_ID_ENVELOPE_OPCODE => {
                    meta.request_id = Some(r.u64()?);
                }
                _ => break,
            }
            opcode = r.u16()?;
        }
        let req = match opcode {
            1 => Self::Hello {
                dn: r.dn()?,
                version: r.u16()?,
            },
            2 => Self::Ping,
            10 => Self::Create(r_mapping(&mut r)?),
            11 => Self::Add(r_mapping(&mut r)?),
            12 => Self::Delete(r_mapping(&mut r)?),
            13 => Self::BulkCreate(r.list(r_mapping)?),
            14 => Self::BulkAdd(r.list(r_mapping)?),
            15 => Self::BulkDelete(r.list(r_mapping)?),
            20 => Self::QueryLfn(r.str()?),
            21 => Self::QueryPfn(r.str()?),
            22 => Self::BulkQueryLfn(r.list(|r| r.str())?),
            23 => Self::WildcardQueryLfn {
                pattern: r.str()?,
                limit: r.u32()?,
            },
            24 => Self::WildcardQueryPfn {
                pattern: r.str()?,
                limit: r.u32()?,
            },
            30 => Self::DefineAttr(r.attr_def()?),
            31 => Self::UndefineAttr {
                name: r.str()?,
                objtype: r.object_type()?,
                clear_values: r.bool()?,
            },
            32 => Self::AddAttr(r_assignment(&mut r)?),
            33 => Self::ModifyAttr(r_assignment(&mut r)?),
            34 => Self::RemoveAttr {
                obj: r.str()?,
                objtype: r.object_type()?,
                name: r.str()?,
            },
            35 => Self::GetAttrs {
                obj: r.str()?,
                objtype: r.object_type()?,
                name: r.option(|r| r.str())?,
            },
            36 => Self::SearchAttr {
                name: r.str()?,
                objtype: r.object_type()?,
                op: r.attr_compare()?,
                operand: r.option(|r| r.attr_value())?,
            },
            37 => Self::BulkAddAttr(r.list(r_assignment)?),
            38 => Self::BulkModifyAttr(r.list(r_assignment)?),
            39 => Self::BulkRemoveAttr(r.list(|r| {
                Ok((r.str()?, r.object_type()?, r.str()?))
            })?),
            40 => Self::AddRli {
                name: r.str()?,
                flags: r.i64()?,
                patterns: r.list(|r| r.str())?,
            },
            41 => Self::RemoveRli { name: r.str()? },
            42 => Self::ListRlis,
            50 => Self::RliQueryLfn(r.str()?),
            51 => Self::RliBulkQueryLfn(r.list(|r| r.str())?),
            52 => Self::RliWildcardQuery {
                pattern: r.str()?,
                limit: r.u32()?,
            },
            53 => Self::RliListLrcs,
            60 => Self::SoftStateFull {
                lrc: r.str()?,
                update_id: r.u64()?,
                seq: r.u32()?,
                last: r.bool()?,
                lfns: r.list(|r| r.str())?,
            },
            61 => Self::SoftStateDelta {
                lrc: r.str()?,
                added: r.list(|r| r.str())?,
                removed: r.list(|r| r.str())?,
            },
            62 => {
                let lrc = r.str()?;
                let params = r.bloom_params()?;
                let bits = r.u64()?;
                let entries = r.u64()?;
                let words = r.raw_bytes()?;
                Self::SoftStateBloom {
                    lrc,
                    params,
                    bits,
                    words,
                    entries,
                }
            }
            70 => Self::Stats,
            71 => Self::TraceQuery {
                trace_id: r.u64()?,
                op_prefix: r.str()?,
                min_duration_micros: r.u64()?,
                limit: r.u32()?,
            },
            72 => Self::StatsHistory {
                since_seq: r.u64()?,
                limit: r.u32()?,
            },
            other => {
                return Err(RlsError::bad_request(format!(
                    "unknown request opcode {other}"
                )))
            }
        };
        if !r.is_done() {
            return Err(RlsError::protocol("trailing bytes after request"));
        }
        Ok((meta, req))
    }

    /// Converts a received `SoftStateBloom` payload into a filter.
    pub fn bloom_from_wire(
        params: BloomParams,
        bits: u64,
        words: &[u8],
        entries: u64,
    ) -> RlsResult<BloomFilter> {
        if !words.len().is_multiple_of(8) {
            return Err(RlsError::protocol("bloom words not 8-byte aligned"));
        }
        let words: Vec<u64> = words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
            .collect();
        BloomFilter::from_parts(params, bits, words, entries)
    }

    /// Serializes a filter into the `SoftStateBloom` request shape.
    pub fn bloom_to_wire(lrc: &str, filter: &BloomFilter) -> Self {
        let mut bytes = Vec::with_capacity(filter.byte_len());
        for w in filter.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Self::SoftStateBloom {
            lrc: lrc.to_owned(),
            params: filter.params(),
            bits: filter.bit_len(),
            words: bytes,
            entries: filter.entries(),
        }
    }
}

impl Response {
    /// Encodes the response (opcode + body).
    pub fn encode(&self) -> Writer {
        self.encode_with_id(None)
    }

    /// Encodes the response, prefixing a request-ID envelope when `id` is
    /// present (see [`REQUEST_ID_ENVELOPE_OPCODE`]). Servers echo exactly
    /// the ID the request carried; `None` produces bytes identical to the
    /// version-1 encoding.
    pub fn encode_with_id(&self, id: Option<u64>) -> Writer {
        let mut w = Writer::with_capacity(64);
        if let Some(id) = id {
            w.u16(REQUEST_ID_ENVELOPE_OPCODE);
            w.u64(id);
        }
        match self {
            Self::HelloAck {
                server_version,
                is_lrc,
                is_rli,
                protocol,
            } => {
                w.u16(1);
                w.str(server_version);
                w.bool(*is_lrc);
                w.bool(*is_rli);
                if *protocol >= PROTOCOL_VERSION_PIPELINED {
                    w.u16(*protocol);
                }
            }
            Self::Pong => w.u16(2),
            Self::Ok => w.u16(3),
            Self::Error(e) => {
                w.u16(4);
                w.error(e);
            }
            Self::Targets(v) => {
                w.u16(10);
                w.list(v, |w, s| w.str(s));
            }
            Self::Logicals(v) => {
                w.u16(11);
                w.list(v, |w, s| w.str(s));
            }
            Self::Mappings(ms) => {
                w.u16(12);
                w.list(ms, w_mapping);
            }
            Self::BulkStatus(fails) => {
                w.u16(13);
                w.list(fails, |w, (i, e)| {
                    w.u32(*i);
                    w.error(e);
                });
            }
            Self::BulkLfnResults(items) => {
                w.u16(14);
                w.list(items, |w, (name, res)| {
                    w.str(name);
                    match res {
                        Ok(targets) => {
                            w.bool(true);
                            w.list(targets, |w, s| w.str(s));
                        }
                        Err(e) => {
                            w.bool(false);
                            w.error(e);
                        }
                    }
                });
            }
            Self::Attrs(items) => {
                w.u16(20);
                w.list(items, |w, (name, value)| {
                    w.str(name);
                    w.attr_value(value);
                });
            }
            Self::Rlis(items) => {
                w.u16(30);
                w.list(items, |w, t| {
                    w.str(&t.name);
                    w.i64(t.flags);
                    w.list(&t.patterns, |w, s| w.str(s));
                });
            }
            Self::RliHits(hits) => {
                w.u16(40);
                w.list(hits, |w, h| {
                    w.str(&h.lrc);
                    w.u64(h.updated_micros);
                });
            }
            Self::RliBulkResults(items) => {
                w.u16(41);
                w.list(items, |w, (name, res)| {
                    w.str(name);
                    match res {
                        Ok(hits) => {
                            w.bool(true);
                            w.list(hits, |w, h| {
                                w.str(&h.lrc);
                                w.u64(h.updated_micros);
                            });
                        }
                        Err(e) => {
                            w.bool(false);
                            w.error(e);
                        }
                    }
                });
            }
            Self::RliPairs(pairs) => {
                w.u16(42);
                w.list(pairs, |w, (a, b)| {
                    w.str(a);
                    w.str(b);
                });
            }
            Self::Names(v) => {
                w.u16(43);
                w.list(v, |w, s| w.str(s));
            }
            Self::StatsReport(s) => {
                w.u16(50);
                w.bool(s.is_lrc);
                w.bool(s.is_rli);
                w.u64(s.lrc_lfn_count);
                w.u64(s.lrc_mapping_count);
                w.u64(s.rli_association_count);
                w.u64(s.rli_bloom_filters);
                w.u64(s.adds);
                w.u64(s.deletes);
                w.u64(s.queries);
                w.u64(s.updates_received);
                w.u64(s.expired);
                w.list(&s.op_latencies, |w, (name, h)| {
                    w.str(name);
                    w_histogram(w, h);
                });
                w.list(&s.counters, |w, (name, v)| {
                    w.str(name);
                    w.u64(*v);
                });
            }
            Self::Spans(spans) => {
                w.u16(51);
                w.list(spans, |w, s| {
                    w.u64(s.trace_id);
                    w.u64(s.span_id);
                    w.u64(s.parent_span);
                    w.str(&s.op);
                    w.u64(s.start_micros);
                    w.u64(s.duration_micros);
                    w.bool(s.ok);
                    w.str(&s.detail);
                });
            }
            Self::StatsHistoryReport(h) => {
                w.u16(52);
                w.u64(h.interval_micros);
                w.u64(h.ring_capacity);
                w.u64(h.samples_total);
                w.list(&h.samples, w_sample);
            }
        }
        w
    }

    /// Decodes a response frame body, discarding any request-ID envelope.
    pub fn decode(body: &[u8]) -> RlsResult<Self> {
        Self::decode_framed(body).map(|(_, resp)| resp)
    }

    /// Decodes a response frame body plus the request-ID envelope, if the
    /// server attached one (pipelined connections echo the request's ID).
    pub fn decode_framed(body: &[u8]) -> RlsResult<(Option<u64>, Self)> {
        let mut r = Reader::new(body);
        let mut opcode = r.u16()?;
        let mut request_id = None;
        while opcode == REQUEST_ID_ENVELOPE_OPCODE {
            request_id = Some(r.u64()?);
            opcode = r.u16()?;
        }
        let resp = match opcode {
            1 => {
                let server_version = r.str()?;
                let is_lrc = r.bool()?;
                let is_rli = r.bool()?;
                // Version-1 servers stop here; ≥ 2 append the negotiated
                // version so pipelining clients learn what they got.
                let protocol = if r.remaining() >= 2 { r.u16()? } else { PROTOCOL_VERSION };
                Self::HelloAck {
                    server_version,
                    is_lrc,
                    is_rli,
                    protocol,
                }
            }
            2 => Self::Pong,
            3 => Self::Ok,
            4 => Self::Error(r.error()?),
            10 => Self::Targets(r.list(|r| r.str())?),
            11 => Self::Logicals(r.list(|r| r.str())?),
            12 => Self::Mappings(r.list(r_mapping)?),
            13 => Self::BulkStatus(r.list(|r| Ok((r.u32()?, r.error()?)))?),
            14 => Self::BulkLfnResults(r.list(|r| {
                let name = r.str()?;
                let ok = r.bool()?;
                let res = if ok {
                    Ok(r.list(|r| r.str())?)
                } else {
                    Err(r.error()?)
                };
                Ok((name, res))
            })?),
            20 => Self::Attrs(r.list(|r| Ok((r.str()?, r.attr_value()?)))?),
            30 => Self::Rlis(r.list(|r| {
                Ok(RliTargetWire {
                    name: r.str()?,
                    flags: r.i64()?,
                    patterns: r.list(|r| r.str())?,
                })
            })?),
            40 => Self::RliHits(r.list(|r| {
                Ok(RliHit {
                    lrc: r.str()?,
                    updated_micros: r.u64()?,
                })
            })?),
            41 => Self::RliBulkResults(r.list(|r| {
                let name = r.str()?;
                let ok = r.bool()?;
                let res = if ok {
                    Ok(r.list(|r| {
                        Ok(RliHit {
                            lrc: r.str()?,
                            updated_micros: r.u64()?,
                        })
                    })?)
                } else {
                    Err(r.error()?)
                };
                Ok((name, res))
            })?),
            42 => Self::RliPairs(r.list(|r| Ok((r.str()?, r.str()?)))?),
            43 => Self::Names(r.list(|r| r.str())?),
            50 => Self::StatsReport(ServerStatsWire {
                is_lrc: r.bool()?,
                is_rli: r.bool()?,
                lrc_lfn_count: r.u64()?,
                lrc_mapping_count: r.u64()?,
                rli_association_count: r.u64()?,
                rli_bloom_filters: r.u64()?,
                adds: r.u64()?,
                deletes: r.u64()?,
                queries: r.u64()?,
                updates_received: r.u64()?,
                expired: r.u64()?,
                op_latencies: r.list(|r| {
                    let name = r.str()?;
                    let h = r_histogram(r)?;
                    Ok((name, h))
                })?,
                counters: r.list(|r| Ok((r.str()?, r.u64()?)))?,
            }),
            51 => Self::Spans(r.list(|r| {
                Ok(SpanWire {
                    trace_id: r.u64()?,
                    span_id: r.u64()?,
                    parent_span: r.u64()?,
                    op: r.str()?,
                    start_micros: r.u64()?,
                    duration_micros: r.u64()?,
                    ok: r.bool()?,
                    detail: r.str()?,
                })
            })?),
            52 => Self::StatsHistoryReport(StatsHistoryWire {
                interval_micros: r.u64()?,
                ring_capacity: r.u64()?,
                samples_total: r.u64()?,
                samples: r.list(r_sample)?,
            }),
            other => {
                return Err(RlsError::protocol(format!(
                    "unknown response opcode {other}"
                )))
            }
        };
        if !r.is_done() {
            return Err(RlsError::protocol("trailing bytes after response"));
        }
        Ok((request_id, resp))
    }
}

/// Scans a frame body's envelopes for a request ID without decoding the
/// request (see [`REQUEST_ID_ENVELOPE_OPCODE`]). Cheap — the server's
/// dispatch path uses it to decide whether a frame belongs to a pipelined
/// connection before any real parsing. Returns `None` for frames without
/// the envelope and for truncated or garbage frames (those fail properly
/// in the full decoder later).
pub fn peek_request_id(body: &[u8]) -> Option<u64> {
    let mut r = Reader::new(body);
    loop {
        match r.u16().ok()? {
            REQUEST_ID_ENVELOPE_OPCODE => return r.u64().ok(),
            TRACE_ENVELOPE_OPCODE => {
                let n = r.u32().ok()? as usize;
                for _ in 0..n {
                    r.u64().ok()?;
                }
            }
            LAG_ENVELOPE_OPCODE => {
                r.u64().ok()?;
                r.u64().ok()?;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_types::{AttrValueType, ErrorCode, Timestamp};

    fn rt_request(req: Request) {
        let bytes = req.encode().into_bytes();
        let decoded = Request::decode(&bytes).unwrap();
        assert_eq!(req, decoded);
    }

    fn rt_response(resp: Response) {
        let bytes = resp.encode().into_bytes();
        let decoded = Response::decode(&bytes).unwrap();
        assert_eq!(resp, decoded);
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    fn sample_histogram() -> HistogramSnapshot {
        let h = rls_metrics::LatencyHistogram::new();
        h.record_micros(0);
        h.record_micros(7);
        h.record_micros(950);
        h.record_micros(u64::MAX); // saturating last bucket survives the wire
        h.snapshot()
    }

    #[test]
    fn all_request_variants_round_trip() {
        let assignment = AttrAssignment {
            obj: "pfn://x".into(),
            objtype: ObjectType::Target,
            name: "size".into(),
            value: AttrValue::Int(9),
        };
        let reqs = vec![
            Request::Hello {
                dn: Dn::new("/O=Grid/CN=a"),
                version: PROTOCOL_VERSION,
            },
            Request::Ping,
            Request::Create(m("lfn://a", "pfn://a")),
            Request::Add(m("lfn://a", "pfn://b")),
            Request::Delete(m("lfn://a", "pfn://b")),
            Request::BulkCreate(vec![m("lfn://a", "pfn://a"), m("lfn://b", "pfn://b")]),
            Request::BulkAdd(vec![m("lfn://a", "pfn://c")]),
            Request::BulkDelete(vec![]),
            Request::QueryLfn("lfn://a".into()),
            Request::QueryPfn("pfn://a".into()),
            Request::BulkQueryLfn(vec!["lfn://a".into(), "lfn://b".into()]),
            Request::WildcardQueryLfn {
                pattern: "lfn://*".into(),
                limit: 100,
            },
            Request::WildcardQueryPfn {
                pattern: "pfn://*".into(),
                limit: 10,
            },
            Request::DefineAttr(
                AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap(),
            ),
            Request::UndefineAttr {
                name: "size".into(),
                objtype: ObjectType::Target,
                clear_values: true,
            },
            Request::AddAttr(assignment.clone()),
            Request::ModifyAttr(assignment.clone()),
            Request::RemoveAttr {
                obj: "pfn://x".into(),
                objtype: ObjectType::Target,
                name: "size".into(),
            },
            Request::GetAttrs {
                obj: "pfn://x".into(),
                objtype: ObjectType::Target,
                name: Some("size".into()),
            },
            Request::GetAttrs {
                obj: "pfn://x".into(),
                objtype: ObjectType::Target,
                name: None,
            },
            Request::SearchAttr {
                name: "size".into(),
                objtype: ObjectType::Target,
                op: AttrCompare::Ge,
                operand: Some(AttrValue::Int(100)),
            },
            Request::SearchAttr {
                name: "size".into(),
                objtype: ObjectType::Target,
                op: AttrCompare::All,
                operand: None,
            },
            Request::BulkAddAttr(vec![assignment.clone()]),
            Request::BulkModifyAttr(vec![assignment]),
            Request::BulkRemoveAttr(vec![(
                "pfn://x".into(),
                ObjectType::Target,
                "size".into(),
            )]),
            Request::AddRli {
                name: "rli:39281".into(),
                flags: 1,
                patterns: vec!["^lfn://x/.*".into()],
            },
            Request::RemoveRli {
                name: "rli:39281".into(),
            },
            Request::ListRlis,
            Request::RliQueryLfn("lfn://a".into()),
            Request::RliBulkQueryLfn(vec!["lfn://a".into()]),
            Request::RliWildcardQuery {
                pattern: "lfn://*".into(),
                limit: 50,
            },
            Request::RliListLrcs,
            Request::SoftStateFull {
                lrc: "lrc:39281".into(),
                update_id: 42,
                seq: 3,
                last: true,
                lfns: vec!["lfn://a".into(), "lfn://b".into()],
            },
            Request::SoftStateDelta {
                lrc: "lrc:39281".into(),
                added: vec!["lfn://new".into()],
                removed: vec!["lfn://old".into()],
            },
            Request::SoftStateBloom {
                lrc: "lrc:39281".into(),
                params: BloomParams::PAPER,
                bits: 128,
                words: vec![0u8; 16],
                entries: 3,
            },
            Request::Stats,
            Request::StatsHistory {
                since_seq: 41,
                limit: 16,
            },
            Request::StatsHistory {
                since_seq: 0,
                limit: 0,
            },
            Request::TraceQuery {
                trace_id: 0x9f3a_11d2_0000_0001,
                op_prefix: "op.".into(),
                min_duration_micros: 250_000,
                limit: 64,
            },
        ];
        for req in reqs {
            rt_request(req);
        }
    }

    #[test]
    fn all_response_variants_round_trip() {
        let hit = RliHit {
            lrc: "lrc-1".into(),
            updated_micros: 99,
        };
        let resps = vec![
            Response::HelloAck {
                server_version: "2.0.9".into(),
                is_lrc: true,
                is_rli: false,
                protocol: PROTOCOL_VERSION,
            },
            Response::HelloAck {
                server_version: "2.0.9".into(),
                is_lrc: true,
                is_rli: false,
                protocol: PROTOCOL_VERSION_PIPELINED,
            },
            Response::Pong,
            Response::Ok,
            Response::Error(RlsError::new(ErrorCode::MappingNotFound, "nope")),
            Response::Targets(vec!["pfn://a".into()]),
            Response::Logicals(vec!["lfn://a".into(), "lfn://b".into()]),
            Response::Mappings(vec![m("lfn://a", "pfn://a")]),
            Response::BulkStatus(vec![(3, RlsError::new(ErrorCode::MappingExists, "dup"))]),
            Response::BulkStatus(vec![]),
            Response::BulkLfnResults(vec![
                ("lfn://a".into(), Ok(vec!["pfn://a".into()])),
                (
                    "lfn://b".into(),
                    Err(RlsError::new(ErrorCode::LogicalNameNotFound, "x")),
                ),
            ]),
            Response::Attrs(vec![
                ("size".into(), AttrValue::Int(5)),
                ("when".into(), AttrValue::Date(Timestamp::from_unix_secs(1))),
            ]),
            Response::Rlis(vec![RliTargetWire {
                name: "rli".into(),
                flags: 1,
                patterns: vec!["a.*".into()],
            }]),
            Response::RliHits(vec![hit.clone()]),
            Response::RliBulkResults(vec![
                ("lfn://a".into(), Ok(vec![hit])),
                (
                    "lfn://b".into(),
                    Err(RlsError::new(ErrorCode::LogicalNameNotFound, "x")),
                ),
            ]),
            Response::RliPairs(vec![("lfn://a".into(), "lrc-1".into())]),
            Response::Names(vec!["lrc-1".into()]),
            Response::StatsReport(ServerStatsWire {
                is_lrc: true,
                is_rli: true,
                lrc_lfn_count: 1,
                lrc_mapping_count: 2,
                rli_association_count: 3,
                rli_bloom_filters: 4,
                adds: 5,
                deletes: 6,
                queries: 7,
                updates_received: 8,
                expired: 9,
                op_latencies: vec![("op.query_lfn".into(), sample_histogram())],
                counters: vec![("net.bytes_in".into(), 4096)],
            }),
            Response::StatsReport(ServerStatsWire::default()),
            Response::Spans(vec![
                SpanWire {
                    trace_id: 7,
                    span_id: 2,
                    parent_span: 1,
                    op: "lrc.commit".into(),
                    start_micros: 1_000,
                    duration_micros: 85,
                    ok: true,
                    detail: "create".into(),
                },
                SpanWire::default(),
            ]),
            Response::Spans(vec![]),
            Response::StatsHistoryReport(StatsHistoryWire {
                interval_micros: 1_000_000,
                ring_capacity: 512,
                samples_total: 977,
                samples: vec![
                    TelemetrySample {
                        seq: 976,
                        at_unix_micros: 1_700_000_000_000_000,
                        uptime_micros: 975_000_000,
                        counters: vec![("net.bytes_in".into(), 123), ("srv.adds".into(), 7)],
                        histograms: vec![("op.add".into(), sample_histogram())],
                    },
                    TelemetrySample::default(),
                ],
            }),
            Response::StatsHistoryReport(StatsHistoryWire::default()),
        ];
        for resp in resps {
            rt_response(resp);
        }
    }

    #[test]
    fn trace_envelope_round_trips_and_plain_frames_stay_compatible() {
        let req = Request::SoftStateDelta {
            lrc: "lrc:39281".into(),
            added: vec!["lfn://new".into()],
            removed: vec![],
        };
        // Traced frame: IDs survive, zero IDs are dropped.
        let bytes = req.encode_traced(&[11, 0, 22]).into_bytes();
        let (ids, decoded) = Request::decode_traced(&bytes).unwrap();
        assert_eq!(ids, vec![11, 22]);
        assert_eq!(decoded, req);
        // decode() on a traced frame discards the envelope.
        assert_eq!(Request::decode(&bytes).unwrap(), req);

        // Plain (pre-tracing) frame: decode_traced yields an empty ID list.
        let plain = req.encode().into_bytes();
        let (ids, decoded) = Request::decode_traced(&plain).unwrap();
        assert!(ids.is_empty());
        assert_eq!(decoded, req);
        // No envelope is emitted for an empty or all-zero ID list.
        assert_eq!(req.encode_traced(&[]).into_bytes(), plain);
        assert_eq!(req.encode_traced(&[0, 0]).into_bytes(), plain);
    }

    #[test]
    fn lag_envelope_round_trips_in_any_order_and_plain_frames_stay_compatible() {
        let req = Request::SoftStateDelta {
            lrc: "lrc:39281".into(),
            added: vec!["lfn://new".into()],
            removed: vec![],
        };
        let stamp = LagStamp {
            commit_seq: 420,
            commit_unix_micros: 1_700_000_000_000_000,
        };
        // Stamp alone.
        let bytes = req.encode_framed(&[], Some(stamp)).into_bytes();
        let (meta, decoded) = Request::decode_framed(&bytes).unwrap();
        assert_eq!(meta.lag, Some(stamp));
        assert!(meta.trace_ids.is_empty());
        assert_eq!(decoded, req);
        // decode()/decode_traced() on a stamped frame just drop the stamp.
        assert_eq!(Request::decode(&bytes).unwrap(), req);
        assert_eq!(Request::decode_traced(&bytes).unwrap().1, req);

        // Stamp + trace envelope together (encoder order: trace first).
        let bytes = req.encode_framed(&[11, 22], Some(stamp)).into_bytes();
        let (meta, decoded) = Request::decode_framed(&bytes).unwrap();
        assert_eq!(meta.trace_ids, vec![11, 22]);
        assert_eq!(meta.lag, Some(stamp));
        assert_eq!(decoded, req);

        // Decoder accepts the opposite envelope order too.
        let mut w = Writer::with_capacity(64);
        w.u16(LAG_ENVELOPE_OPCODE);
        w.u64(stamp.commit_seq);
        w.u64(stamp.commit_unix_micros);
        w.u16(TRACE_ENVELOPE_OPCODE);
        w.u32(1);
        w.u64(33);
        req.encode_body(&mut w);
        let (meta, decoded) = Request::decode_framed(&w.into_bytes()).unwrap();
        assert_eq!(meta.trace_ids, vec![33]);
        assert_eq!(meta.lag, Some(stamp));
        assert_eq!(decoded, req);

        // No stamp → byte-identical to the legacy encoding.
        assert_eq!(
            req.encode_framed(&[], None).into_bytes(),
            req.encode().into_bytes()
        );
        let (meta, _) = Request::decode_framed(&req.encode().into_bytes()).unwrap();
        assert_eq!(meta, FrameMeta::default());
    }

    #[test]
    fn truncated_lag_envelope_rejected() {
        let mut w = Writer::with_capacity(8);
        w.u16(LAG_ENVELOPE_OPCODE);
        w.u64(1); // commit_seq present, commit time and request body missing
        assert!(Request::decode_framed(&w.into_bytes()).is_err());
    }

    #[test]
    fn request_id_envelope_round_trips_and_plain_frames_stay_compatible() {
        let req = Request::QueryLfn("lfn://a".into());
        let bytes = req.encode_framed_with_id(&[7], None, Some(42)).into_bytes();
        let (meta, decoded) = Request::decode_framed(&bytes).unwrap();
        assert_eq!(meta.request_id, Some(42));
        assert_eq!(meta.trace_ids, vec![7]);
        assert_eq!(decoded, req);
        assert_eq!(peek_request_id(&bytes), Some(42));
        // decode()/decode_traced() on an ID-stamped frame just drop the ID.
        assert_eq!(Request::decode(&bytes).unwrap(), req);

        // No ID → byte-identical to the legacy encoding, and peek sees none.
        let plain = req.encode_framed_with_id(&[], None, None).into_bytes();
        assert_eq!(plain, req.encode().into_bytes());
        assert_eq!(peek_request_id(&plain), None);
        let (meta, _) = Request::decode_framed(&plain).unwrap();
        assert_eq!(meta.request_id, None);

        // peek skips leading trace/lag envelopes to find the ID.
        let mut w = Writer::with_capacity(64);
        w.u16(TRACE_ENVELOPE_OPCODE);
        w.u32(2);
        w.u64(1);
        w.u64(2);
        w.u16(LAG_ENVELOPE_OPCODE);
        w.u64(9);
        w.u64(10);
        w.u16(REQUEST_ID_ENVELOPE_OPCODE);
        w.u64(77);
        req.encode_body(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(peek_request_id(&bytes), Some(77));
        let (meta, decoded) = Request::decode_framed(&bytes).unwrap();
        assert_eq!(meta.request_id, Some(77));
        assert_eq!(decoded, req);
    }

    #[test]
    fn response_id_echo_round_trips_and_plain_frames_stay_compatible() {
        let resp = Response::Targets(vec!["pfn://a".into()]);
        let bytes = resp.encode_with_id(Some(42)).into_bytes();
        let (id, decoded) = Response::decode_framed(&bytes).unwrap();
        assert_eq!(id, Some(42));
        assert_eq!(decoded, resp);
        // decode() on an ID-stamped response just drops the ID.
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
        // No ID → byte-identical to the legacy encoding.
        let plain = resp.encode_with_id(None).into_bytes();
        assert_eq!(plain, resp.encode().into_bytes());
        assert_eq!(Response::decode_framed(&plain).unwrap(), (None, resp));
    }

    #[test]
    fn peek_request_id_tolerates_garbage() {
        assert_eq!(peek_request_id(&[]), None);
        assert_eq!(peek_request_id(&[0xFC]), None);
        // Truncated ID envelope: opcode present, ID bytes missing.
        let mut w = Writer::with_capacity(4);
        w.u16(REQUEST_ID_ENVELOPE_OPCODE);
        w.u8(1);
        assert_eq!(peek_request_id(&w.into_bytes()), None);
        // Trace envelope claiming more IDs than the frame holds.
        let mut w = Writer::with_capacity(8);
        w.u16(TRACE_ENVELOPE_OPCODE);
        w.u32(u32::MAX);
        w.u64(5);
        assert_eq!(peek_request_id(&w.into_bytes()), None);
    }

    #[test]
    fn hello_ack_negotiation_field_is_versioned() {
        // A version-1 ack carries no trailing version field — byte-compat
        // with pre-negotiation peers whose decoder rejects trailing bytes.
        let v1 = Response::HelloAck {
            server_version: "2.0.9".into(),
            is_lrc: true,
            is_rli: false,
            protocol: PROTOCOL_VERSION,
        };
        let mut legacy = Writer::with_capacity(16);
        legacy.u16(1);
        legacy.str("2.0.9");
        legacy.bool(true);
        legacy.bool(false);
        let legacy = legacy.into_bytes();
        assert_eq!(v1.encode().into_bytes(), legacy);
        // Decoding the legacy shape infers version 1.
        assert_eq!(Response::decode(&legacy).unwrap(), v1);

        // A negotiated-v2 ack round-trips the version.
        let v2 = Response::HelloAck {
            server_version: "2.0.9".into(),
            is_lrc: true,
            is_rli: false,
            protocol: PROTOCOL_VERSION_PIPELINED,
        };
        assert_eq!(Response::decode(&v2.encode().into_bytes()).unwrap(), v2);
    }

    #[test]
    fn stats_history_truncation_fuzz_never_panics() {
        // Every prefix of a real StatsHistoryReport frame must decode to a
        // clean error, never a panic or a bogus success.
        let resp = Response::StatsHistoryReport(StatsHistoryWire {
            interval_micros: 250_000,
            ring_capacity: 4,
            samples_total: 9,
            samples: vec![TelemetrySample {
                seq: 9,
                at_unix_micros: 1_700_000_000_000_000,
                uptime_micros: 2_250_000,
                counters: vec![("telemetry.samples".into(), 9)],
                histograms: vec![("op.query_lfn".into(), sample_histogram())],
            }],
        });
        let bytes = resp.encode().into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        // And corrupting the sample's histogram bucket index is rejected
        // through the shared r_histogram bounds check.
        let mut w = Writer::with_capacity(96);
        w.u16(52);
        w.u64(0); // interval
        w.u64(1); // capacity
        w.u64(1); // total
        w.u32(1); // one sample
        w.u64(1); // seq
        w.u64(2); // at
        w.u64(3); // uptime
        w.u32(0); // no counters
        w.u32(1); // one histogram
        w.str("op.bad");
        w.u64(1); // count
        w.u64(1); // sum
        w.u64(1); // max
        w.u32(1); // one occupied bucket...
        w.u8(BUCKET_COUNT as u8); // ...out of range
        w.u64(1);
        let e = Response::decode(&w.into_bytes()).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn stats_history_request_with_trailing_bytes_rejected() {
        let mut bytes = Request::StatsHistory {
            since_seq: 1,
            limit: 2,
        }
        .encode()
        .into_bytes()
        .to_vec();
        bytes.push(0xAA);
        let e = Request::decode(&bytes).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn trace_envelope_id_count_exceeding_frame_rejected() {
        let mut w = Writer::with_capacity(16);
        w.u16(TRACE_ENVELOPE_OPCODE);
        w.u32(u32::MAX); // claims ~4 billion IDs in a tiny frame
        w.u64(1);
        let e = Request::decode_traced(&w.into_bytes()).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn traced_frame_with_trailing_bytes_rejected() {
        let mut bytes = Request::Ping.encode_traced(&[5]).into_bytes().to_vec();
        bytes.push(0);
        assert!(Request::decode_traced(&bytes).is_err());
    }

    #[test]
    fn extended_stats_snapshot_round_trips() {
        // A realistic multi-metric snapshot: quantiles must survive the
        // sparse bucket encoding exactly.
        let hist = sample_histogram();
        let stats = ServerStatsWire {
            is_lrc: true,
            queries: 4,
            op_latencies: vec![
                ("op.create".into(), HistogramSnapshot::default()),
                ("op.query_lfn".into(), hist),
                ("storage.commit".into(), sample_histogram()),
            ],
            counters: vec![
                ("lrc.engine.inserts".into(), 12),
                ("net.bytes_out".into(), u64::MAX),
                ("softstate.bloom_fpp_ppm".into(), 420),
            ],
            ..ServerStatsWire::default()
        };
        let bytes = Response::StatsReport(stats.clone()).encode().into_bytes();
        let Response::StatsReport(decoded) = Response::decode(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(decoded, stats);
        let (_, h) = &decoded.op_latencies[1];
        assert_eq!(h.count, 4);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_bucket_index_out_of_range_rejected() {
        // Hand-encode a StatsReport whose histogram names bucket 32.
        let mut w = Writer::with_capacity(128);
        w.u16(50);
        w.bool(false);
        w.bool(false);
        for _ in 0..9 {
            w.u64(0);
        }
        w.u32(1); // one histogram
        w.str("op.bad");
        w.u64(1); // count
        w.u64(1); // sum
        w.u64(1); // max
        w.u32(1); // one occupied bucket...
        w.u8(BUCKET_COUNT as u8); // ...with an out-of-range index
        w.u64(1);
        w.u32(0); // no counters
        let e = Response::decode(&w.into_bytes()).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn unknown_opcodes_rejected() {
        let mut w = Writer::with_capacity(4);
        w.u16(9999);
        let bytes = w.into_bytes();
        assert!(Request::decode(&bytes).is_err());
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.encode().into_bytes().to_vec();
        bytes.push(0);
        let e = Request::decode(&bytes).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn invalid_mapping_in_request_rejected() {
        // Hand-encode a Create with an empty logical name.
        let mut w = Writer::with_capacity(16);
        w.u16(10);
        w.str("");
        w.str("pfn://x");
        let e = Request::decode(&w.into_bytes()).unwrap_err();
        assert_eq!(e.code(), ErrorCode::InvalidName);
    }

    #[test]
    fn bloom_wire_round_trip() {
        let mut f = BloomFilter::with_capacity(BloomParams::PAPER, 100);
        for i in 0..100 {
            f.insert(&format!("lfn://b/{i}"));
        }
        let req = Request::bloom_to_wire("lrc-1", &f);
        let bytes = req.encode().into_bytes();
        let decoded = Request::decode(&bytes).unwrap();
        let Request::SoftStateBloom {
            lrc,
            params,
            bits,
            words,
            entries,
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert_eq!(lrc, "lrc-1");
        let g = Request::bloom_from_wire(params, bits, &words, entries).unwrap();
        assert_eq!(g, f);
        for i in 0..100 {
            assert!(g.contains(&format!("lfn://b/{i}")));
        }
    }

    #[test]
    fn bloom_wire_misaligned_rejected() {
        let e = Request::bloom_from_wire(BloomParams::PAPER, 64, &[0u8; 7], 0).unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }
}
