/root/repo/target/release/deps/fig05_lrc_query_flush-cd7b89c71844ef01.d: crates/bench/benches/fig05_lrc_query_flush.rs

/root/repo/target/release/deps/fig05_lrc_query_flush-cd7b89c71844ef01: crates/bench/benches/fig05_lrc_query_flush.rs

crates/bench/benches/fig05_lrc_query_flush.rs:
