/root/repo/target/debug/deps/micro_softstate-f35419ec4115dc66.d: crates/bench/benches/micro_softstate.rs

/root/repo/target/debug/deps/libmicro_softstate-f35419ec4115dc66.rmeta: crates/bench/benches/micro_softstate.rs

crates/bench/benches/micro_softstate.rs:
