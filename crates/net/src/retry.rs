//! Retry/backoff policy for transport clients.
//!
//! The policy itself is pure data plus deterministic arithmetic: the
//! backoff for attempt `n` is `base × 2ⁿ` capped at `backoff_max`, with a
//! *deterministic* jitter derived from a caller-supplied seed (no clock,
//! no RNG) so a seeded test run produces the same sleep schedule every
//! time. The retry *loop* lives in the client that owns the connection
//! (`rls-core`'s `RlsClient`); this module only answers "how long until
//! attempt n+1".

use std::time::Duration;

use rls_types::ErrorCode;

/// SplitMix64: the one-instruction-wide mixer used for deterministic
/// jitter (same construction as `rls-trace`'s ID minting).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a client retries failed connects and calls.
///
/// `max_retries` counts *additional* attempts after the first: a policy
/// with `max_retries = 3` tries an operation at most four times. A policy
/// of [`RetryPolicy::none`] preserves fail-fast semantics exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// Portion of each backoff randomized (0–100). The jitter window is
    /// centred on the exponential value: `50` yields sleeps in
    /// `[0.75×, 1.25×]` of the nominal backoff.
    pub jitter_pct: u32,
    /// TCP connect timeout; `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// Per-attempt read timeout on responses; `None` blocks indefinitely.
    pub request_timeout: Option<Duration>,
}

impl RetryPolicy {
    /// No retries, no timeouts: the historical fail-fast behaviour.
    pub const fn none() -> Self {
        Self {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
            jitter_pct: 0,
            connect_timeout: None,
            request_timeout: None,
        }
    }

    /// Defaults for the LRC's soft-state updater: a few quick retries with
    /// a bounded connect timeout, so one dead RLI delays but never stalls
    /// an update cycle.
    pub const fn updater_default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
            jitter_pct: 50,
            connect_timeout: Some(Duration::from_secs(2)),
            request_timeout: None,
        }
    }

    /// True if any retry would be attempted.
    pub fn retries_enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// True for error codes worth retrying with backoff: transport-level
    /// failures (the connection may heal, the peer may restart) and the
    /// server's [`ErrorCode::Busy`] admission rejection, which is an
    /// explicit "come back shortly" rather than a verdict on the request.
    /// Everything else — caller mistakes, storage faults, shutdown — fails
    /// immediately no matter the policy.
    pub fn is_retryable(code: ErrorCode) -> bool {
        matches!(
            code,
            ErrorCode::Io | ErrorCode::Timeout | ErrorCode::Protocol | ErrorCode::Busy
        )
    }

    /// Backoff before retry number `attempt` (0-based), with deterministic
    /// jitter derived from `seed`. The same `(policy, attempt, seed)`
    /// always yields the same duration.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let shift = attempt.min(20);
        let nominal = self
            .backoff_base
            .saturating_mul(1u32 << shift.min(31))
            .min(if self.backoff_max.is_zero() {
                Duration::MAX
            } else {
                self.backoff_max
            });
        let jitter_pct = self.jitter_pct.min(100) as u64;
        if jitter_pct == 0 || nominal.is_zero() {
            return nominal;
        }
        let nominal_ns = nominal.as_nanos().min(u128::from(u64::MAX)) as u64;
        let span = nominal_ns / 100 * jitter_pct;
        let r = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x0065_F35E)) % (span + 1);
        Duration::from_nanos(nominal_ns.saturating_sub(span / 2).saturating_add(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_is_fail_fast() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        assert_eq!(p.backoff(0, 42), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            jitter_pct: 0,
            connect_timeout: None,
            request_timeout: None,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(10));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(20));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(40));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(80));
        assert_eq!(p.backoff(4, 0), Duration::from_millis(100)); // capped
        assert_eq!(p.backoff(63, 0), Duration::from_millis(100)); // no overflow
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter_pct: 50,
            ..RetryPolicy::updater_default()
        };
        for attempt in 0..4 {
            let a = p.backoff(attempt, 7);
            let b = p.backoff(attempt, 7);
            assert_eq!(a, b, "same seed must give same jitter");
            let nominal = p.backoff(
                attempt,
                0, /* any seed */
            );
            // Window: centred on the nominal value, ±25% for jitter_pct=50.
            let lo = p
                .backoff_base
                .saturating_mul(1 << attempt)
                .min(p.backoff_max)
                .mul_f64(0.74);
            let hi = p
                .backoff_base
                .saturating_mul(1 << attempt)
                .min(p.backoff_max)
                .mul_f64(1.26);
            assert!(a >= lo && a <= hi, "attempt {attempt}: {a:?} vs {nominal:?}");
        }
        // Different seeds should (almost always) give different jitter.
        assert_ne!(p.backoff(0, 1), p.backoff(0, 2));
    }

    #[test]
    fn retryable_codes() {
        for code in [
            ErrorCode::Io,
            ErrorCode::Timeout,
            ErrorCode::Protocol,
            ErrorCode::Busy,
        ] {
            assert!(RetryPolicy::is_retryable(code), "{code} should retry");
        }
        for code in [
            ErrorCode::MappingExists,
            ErrorCode::PermissionDenied,
            ErrorCode::Shutdown,
            ErrorCode::Storage,
            ErrorCode::ResourceLimit,
        ] {
            assert!(!RetryPolicy::is_retryable(code), "{code} must not retry");
        }
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_eq!(splitmix64(99), splitmix64(99));
    }
}
