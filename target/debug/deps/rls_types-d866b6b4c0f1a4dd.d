/root/repo/target/debug/deps/rls_types-d866b6b4c0f1a4dd.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/debug/deps/librls_types-d866b6b4c0f1a4dd.rlib: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/debug/deps/librls_types-d866b6b4c0f1a4dd.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/auth.rs:
crates/types/src/error.rs:
crates/types/src/names.rs:
crates/types/src/pattern.rs:
crates/types/src/time.rs:
