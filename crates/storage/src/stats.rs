//! Engine operation counters.

/// Monotonic counters exposed for benchmarks and the server's stats RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Rows updated.
    pub updates: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Commits that group-committed a multi-item bulk request: the whole
    /// batch reached the WAL as one record and paid one `fdatasync`
    /// (Fig. 11's bulk-operation advantage).
    pub group_commits: u64,
    /// Vacuum passes executed.
    pub vacuums: u64,
    /// Dead tuples reclaimed by vacuums.
    pub tuples_reclaimed: u64,
    /// Cumulative microseconds spent in [`commit`](crate::Database::commit)
    /// (WAL append + flush) — the cost the paper toggles with "database
    /// flush enabled/disabled" (Fig. 4–5).
    pub commit_micros: u64,
    /// Cumulative microseconds spent in vacuum passes (the dips of the
    /// PostgreSQL saw-tooth, Fig. 8).
    pub vacuum_micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.inserts + s.deletes + s.updates + s.commits, 0);
    }
}
