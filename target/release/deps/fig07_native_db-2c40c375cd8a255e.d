/root/repo/target/release/deps/fig07_native_db-2c40c375cd8a255e.d: crates/bench/benches/fig07_native_db.rs

/root/repo/target/release/deps/fig07_native_db-2c40c375cd8a255e: crates/bench/benches/fig07_native_db.rs

crates/bench/benches/fig07_native_db.rs:
