/root/repo/target/debug/deps/rls_cli-cc15783736d6aef6.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/librls_cli-cc15783736d6aef6.rmeta: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
