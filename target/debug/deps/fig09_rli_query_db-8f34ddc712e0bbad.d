/root/repo/target/debug/deps/fig09_rli_query_db-8f34ddc712e0bbad.d: crates/bench/benches/fig09_rli_query_db.rs

/root/repo/target/debug/deps/libfig09_rli_query_db-8f34ddc712e0bbad.rmeta: crates/bench/benches/fig09_rli_query_db.rs

crates/bench/benches/fig09_rli_query_db.rs:
