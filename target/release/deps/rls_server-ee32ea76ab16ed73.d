/root/repo/target/release/deps/rls_server-ee32ea76ab16ed73.d: src/bin/rls-server.rs

/root/repo/target/release/deps/rls_server-ee32ea76ab16ed73: src/bin/rls-server.rs

src/bin/rls-server.rs:
