//! Property-based tests for the Bloom filter invariants the RLS relies on.

use proptest::collection::{hash_set, vec};
use proptest::prelude::*;

use rls_bloom::{BloomFilter, BloomParams, CountingBloomFilter};

fn arb_key() -> impl Strategy<Value = String> {
    "[a-z0-9/:_.-]{1,40}"
}

proptest! {
    /// Any inserted key must test positive (no false negatives) — the
    /// property that makes Bloom-compressed RLIs sound: an RLI may point a
    /// client at an LRC that lacks the mapping (false positive), but must
    /// never hide an LRC that has it.
    #[test]
    fn no_false_negatives(keys in vec(arb_key(), 1..300)) {
        let mut f = BloomFilter::with_capacity(BloomParams::PAPER, keys.len() as u64);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// The counting filter's exported bitmap equals a plain filter built
    /// from the same *surviving* key multiset, for any interleaving of
    /// inserts and removes (absent counter saturation, which needs ≥15
    /// collisions on one counter — unreachable at these sizes).
    #[test]
    fn counting_filter_tracks_survivors(
        keys in hash_set(arb_key(), 1..100),
        remove_mask in vec(any::<bool>(), 100),
    ) {
        let keys: Vec<String> = keys.into_iter().collect();
        let mut c = CountingBloomFilter::with_capacity(BloomParams::PAPER, 1000);
        for k in &keys {
            c.insert(k);
        }
        let mut survivors = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                c.remove(k);
            } else {
                survivors.push(k.clone());
            }
        }
        let mut expect = BloomFilter::with_bits(BloomParams::PAPER, c.bit_len());
        for k in &survivors {
            expect.insert(k);
        }
        let exported = c.to_bitmap();
        prop_assert_eq!(exported.words(), expect.words());
    }

    /// Union is commutative and contains everything either side contains.
    #[test]
    fn union_is_superset_and_commutative(
        a_keys in vec(arb_key(), 0..100),
        b_keys in vec(arb_key(), 0..100),
    ) {
        let mk = |keys: &[String]| {
            let mut f = BloomFilter::with_bits(BloomParams::PAPER, 4096);
            for k in keys {
                f.insert(k);
            }
            f
        };
        let a = mk(&a_keys);
        let b = mk(&b_keys);
        let mut ab = a.clone();
        ab.union_with(&b).unwrap();
        let mut ba = b.clone();
        ba.union_with(&a).unwrap();
        prop_assert_eq!(ab.words(), ba.words());
        for k in a_keys.iter().chain(&b_keys) {
            prop_assert!(ab.contains(k));
        }
    }

    /// Serialization round-trip via raw parts preserves behaviour.
    #[test]
    fn parts_round_trip(keys in vec(arb_key(), 0..100)) {
        let mut f = BloomFilter::with_bits(BloomParams::PAPER, 2048);
        for k in &keys {
            f.insert(k);
        }
        let g = BloomFilter::from_parts(
            f.params(), f.bit_len(), f.words().to_vec(), f.entries(),
        ).unwrap();
        prop_assert_eq!(&f, &g);
        for k in &keys {
            prop_assert!(g.contains(k));
        }
    }

    /// Probe indexes are deterministic and in-bounds for any key and size.
    #[test]
    fn probe_bounds(key in arb_key(), m in 1u64..1_000_000) {
        for idx in rls_bloom::bloom_indexes(key.as_bytes(), 3, m) {
            prop_assert!(idx < m);
        }
        let a: Vec<u64> = rls_bloom::bloom_indexes(key.as_bytes(), 3, m).collect();
        let b: Vec<u64> = rls_bloom::bloom_indexes(key.as_bytes(), 3, m).collect();
        prop_assert_eq!(a, b);
    }
}
