/root/repo/target/release/deps/micro_pattern-b2d5228f455e1272.d: crates/bench/benches/micro_pattern.rs

/root/repo/target/release/deps/micro_pattern-b2d5228f455e1272: crates/bench/benches/micro_pattern.rs

crates/bench/benches/micro_pattern.rs:
