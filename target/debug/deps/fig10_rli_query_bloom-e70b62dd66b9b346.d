/root/repo/target/debug/deps/fig10_rli_query_bloom-e70b62dd66b9b346.d: crates/bench/benches/fig10_rli_query_bloom.rs

/root/repo/target/debug/deps/libfig10_rli_query_bloom-e70b62dd66b9b346.rmeta: crates/bench/benches/fig10_rli_query_bloom.rs

crates/bench/benches/fig10_rli_query_bloom.rs:
