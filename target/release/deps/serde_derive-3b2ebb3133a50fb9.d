/root/repo/target/release/deps/serde_derive-3b2ebb3133a50fb9.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-3b2ebb3133a50fb9.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
