//! **Figure 9** — RLI full-LFN query rate, 1 million mappings in a MySQL
//! back end, multiple clients with 3 threads per client.
//!
//! Paper result: ≈3000 queries/s for an RLI serving from its relational
//! store (uncompressed-update mode) — compare with Figure 10's much higher
//! Bloom-mode rates.

use rls_bench::{banner, header, row, start_rli, Scale};
use rls_types::Timestamp;
use rls_workload::{drive, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 9",
        "RLI query rates, relational store (uncompressed updates)",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let queries_per_trial = scale.pick(5_000, 20_000) as usize;
    println!("    RLI preloaded with {entries} {{LFN, LRC}} associations");
    header(&["clients", "threads", "query/s"]);

    let server = start_rli();
    let gen = NameGen::new("fig09");
    {
        // Preload the relational store in process, as one big past update.
        let rli = server.rli().expect("rli role");
        let now = Timestamp::now();
        let names: Vec<String> = (0..entries).map(|i| gen.lfn(i)).collect();
        for chunk in names.chunks(10_000) {
            rli.apply_full_chunk("lrc-0", chunk, now).expect("preload");
        }
    }

    for clients in 1..=10usize {
        let threads = clients * 3;
        let per_thread = queries_per_trial.div_ceil(threads);
        let mut trials = Trials::new();
        for trial in 0..scale.trials {
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                |c, t, i| {
                    let idx = ((t + trial) as u64)
                        .wrapping_mul(7919)
                        .wrapping_add(i as u64)
                        % entries;
                    c.rli_query_lfn(&gen.lfn(idx)).map(|_| ())
                },
            )
            .expect("queries");
            assert_eq!(report.errors, 0);
            trials.push(&report);
        }
        row(&[
            clients.to_string(),
            threads.to_string(),
            format!("{:.0}", trials.mean_rate()),
        ]);
    }
    println!("\n    compare with Figure 10: Bloom-mode queries should be several times faster");
}
