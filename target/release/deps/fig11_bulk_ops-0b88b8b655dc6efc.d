/root/repo/target/release/deps/fig11_bulk_ops-0b88b8b655dc6efc.d: crates/bench/benches/fig11_bulk_ops.rs

/root/repo/target/release/deps/fig11_bulk_ops-0b88b8b655dc6efc: crates/bench/benches/fig11_bulk_ops.rs

crates/bench/benches/fig11_bulk_ops.rs:
