/root/repo/target/debug/deps/fig05_lrc_query_flush-16dd43e4f1dc28b4.d: crates/bench/benches/fig05_lrc_query_flush.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_lrc_query_flush-16dd43e4f1dc28b4.rmeta: crates/bench/benches/fig05_lrc_query_flush.rs Cargo.toml

crates/bench/benches/fig05_lrc_query_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
