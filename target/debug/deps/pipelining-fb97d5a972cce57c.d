/root/repo/target/debug/deps/pipelining-fb97d5a972cce57c.d: crates/net/tests/pipelining.rs

/root/repo/target/debug/deps/pipelining-fb97d5a972cce57c: crates/net/tests/pipelining.rs

crates/net/tests/pipelining.rs:
