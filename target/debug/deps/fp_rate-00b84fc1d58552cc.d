/root/repo/target/debug/deps/fp_rate-00b84fc1d58552cc.d: crates/bloom/tests/fp_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfp_rate-00b84fc1d58552cc.rmeta: crates/bloom/tests/fp_rate.rs Cargo.toml

crates/bloom/tests/fp_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
