(function() {
    const implementors = Object.fromEntries([["rls_storage",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"enum\" href=\"rls_storage/index/enum.PostingsIter.html\" title=\"enum rls_storage::index::PostingsIter\">PostingsIter</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[350]}