/root/repo/target/release/deps/rls_cli-1287fcaa338345e8.d: src/bin/rls-cli.rs

/root/repo/target/release/deps/rls_cli-1287fcaa338345e8: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
