//! The common LRC/RLI server (§3.1).
//!
//! A multi-threaded, connection-oriented server: an accept loop hands each
//! connection to its own handler thread (the original is a multi-threaded C
//! server over `globus_io`), bounded by `max_connections`. Background
//! threads drive the soft-state update schedule (LRC role) and the expire
//! pass (RLI role).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rls_net::{Conn, Listener};
use rls_proto::{Request, Response, PROTOCOL_VERSION};
use rls_trace::TraceJournal;
use rls_types::{RlsError, RlsResult, Timestamp};

use crate::auth::Authorizer;
use crate::config::{ServerConfig, UpdateMode};
use crate::dispatch::{handle_request_traced, ServerState};
use crate::lrc::LrcService;
use crate::rli::RliService;
use crate::softstate::{Updater, UpdateOutcome};

/// Version string advertised in handshakes: the RLS release this repo
/// reproduces.
pub const SERVER_VERSION: &str = "2.0.9-rust";

/// A running RLS server.
pub struct Server {
    state: Arc<ServerState>,
    config: ServerConfig,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    active_conns: Arc<AtomicUsize>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("name", &self.state.name)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, builds the configured services, and starts the accept loop
    /// plus background threads.
    pub fn start(mut config: ServerConfig) -> RlsResult<Self> {
        let listener = Listener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        if config.name.is_empty() {
            config.name = addr.to_string();
        }
        let lrc = match &config.lrc {
            Some(lrc_cfg) => Some(Arc::new(LrcService::new(lrc_cfg.clone())?)),
            None => None,
        };
        let rli = match &config.rli {
            Some(rli_cfg) => Some(Arc::new(RliService::new(rli_cfg.clone())?)),
            None => None,
        };
        if lrc.is_none() && rli.is_none() {
            return Err(RlsError::bad_request(
                "server must be configured as an LRC, an RLI, or both",
            ));
        }
        let state = Arc::new(ServerState {
            name: config.name.clone(),
            version: SERVER_VERSION.to_owned(),
            lrc,
            rli,
            authorizer: Authorizer::new(config.auth.clone()),
            metrics: Arc::new(rls_metrics::Registry::new()),
            net: Arc::new(rls_net::ConnMeter::new()),
            journal: Arc::new(TraceJournal::new(config.trace_journal_capacity)),
            slow_op_threshold: config.slow_op_threshold,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let active_conns = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();

        // Accept loop.
        {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active_conns);
            let max_conns = config.max_connections;
            let mut listener = listener;
            listener.set_max_frame(config.max_frame);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rls-accept-{addr}"))
                    .spawn(move || accept_loop(listener, state, shutdown, active, max_conns))
                    .expect("spawn accept thread"),
            );
        }

        // Expire thread (RLI role).
        if let (Some(rli), Some(rli_cfg)) = (&state.rli, &config.rli) {
            if rli_cfg.auto_expire {
                let rli = Arc::clone(rli);
                let journal = Arc::clone(&state.journal);
                let shutdown = Arc::clone(&shutdown);
                let interval = rli_cfg.expire_interval;
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("rls-expire-{addr}"))
                        .spawn(move || expire_loop(rli, journal, shutdown, interval))
                        .expect("spawn expire thread"),
                );
            }
        }

        // Update thread (LRC role).
        if let (Some(lrc), Some(lrc_cfg)) = (&state.lrc, &config.lrc) {
            if lrc_cfg.update.auto && !matches!(lrc_cfg.update.mode, UpdateMode::None) {
                let mut updater = Updater::new(
                    config.name.clone(),
                    config.dn.clone(),
                    Arc::clone(lrc),
                    &lrc_cfg.update,
                );
                updater.set_journal(Arc::clone(&state.journal));
                let mode = lrc_cfg.update.mode.clone();
                let shutdown = Arc::clone(&shutdown);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("rls-update-{addr}"))
                        .spawn(move || update_loop(updater, mode, shutdown))
                        .expect("spawn update thread"),
                );
            }
        }

        Ok(Self {
            state,
            config,
            addr,
            shutdown,
            threads: Mutex::new(threads),
            active_conns,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The advertised server name (LRC identity in updates).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The server configuration (post-bind, with the resolved name).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Shared state (services, authorizer).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The LRC service, if configured.
    pub fn lrc(&self) -> Option<&Arc<LrcService>> {
        self.state.lrc.as_ref()
    }

    /// The RLI service, if configured.
    pub fn rli(&self) -> Option<&Arc<RliService>> {
        self.state.rli.as_ref()
    }

    /// Currently active client connections.
    pub fn active_connections(&self) -> usize {
        self.active_conns.load(Ordering::Relaxed)
    }

    /// Runs one synchronous update cycle (tests/benches); requires the LRC
    /// role.
    pub fn run_update_cycle(&self) -> RlsResult<Vec<RlsResult<UpdateOutcome>>> {
        let lrc = self
            .state
            .lrc
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no LRC role"))?;
        let lrc_cfg = self.config.lrc.as_ref().expect("lrc config present");
        let mut updater = Updater::new(
            self.state.name.clone(),
            self.config.dn.clone(),
            Arc::clone(lrc),
            &lrc_cfg.update,
        );
        updater.set_journal(Arc::clone(&self.state.journal));
        Ok(updater.run_cycle())
    }

    /// Runs one synchronous delta flush (immediate mode).
    pub fn flush_deltas(&self) -> RlsResult<Vec<UpdateOutcome>> {
        let lrc = self
            .state
            .lrc
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no LRC role"))?;
        let lrc_cfg = self.config.lrc.as_ref().expect("lrc config present");
        let mut updater = Updater::new(
            self.state.name.clone(),
            self.config.dn.clone(),
            Arc::clone(lrc),
            &lrc_cfg.update,
        );
        updater.set_journal(Arc::clone(&self.state.journal));
        let targets = updater.targets();
        updater.flush_deltas(&targets)
    }

    /// Runs one synchronous expire pass; requires the RLI role.
    pub fn run_expire(&self) -> RlsResult<u64> {
        let rli = self
            .state
            .rli
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no RLI role"))?;
        run_traced_expire(rli, &self.state.journal)
    }

    /// Stops the accept loop and background threads, then joins them.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = std::net::TcpStream::connect(self.addr);
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: Listener,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    max_conns: usize,
) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if active.load(Ordering::Relaxed) >= max_conns {
            // Connection cap: refuse politely by dropping; the client sees
            // EOF before HelloAck and can retry.
            drop(conn);
            continue;
        }
        active.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(&state);
        let active = Arc::clone(&active);
        let shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name("rls-conn".to_owned())
            .spawn(move || {
                let _ = serve_connection(conn, &state, &shutdown);
                active.fetch_sub(1, Ordering::Relaxed);
            });
    }
}

fn serve_connection(
    mut conn: Conn,
    state: &ServerState,
    shutdown: &AtomicBool,
) -> RlsResult<()> {
    // Account wire traffic for this connection on the server-wide meter.
    conn.set_meter(Arc::clone(&state.net));
    // Handshake: first frame must be Hello.
    let Some(first) = conn.recv()? else {
        return Ok(());
    };
    let identity = match Request::decode(&first) {
        Ok(Request::Hello { dn, version }) if version == PROTOCOL_VERSION => {
            state.authorizer.authenticate(dn)
        }
        Ok(Request::Hello { version, .. }) => {
            let resp = Response::Error(RlsError::protocol(format!(
                "unsupported protocol version {version}"
            )));
            conn.send(&resp.encode().into_bytes())?;
            return Ok(());
        }
        Ok(_) => {
            let resp = Response::Error(RlsError::bad_request(
                "first frame must be Hello",
            ));
            conn.send(&resp.encode().into_bytes())?;
            return Ok(());
        }
        Err(e) => {
            let resp = Response::Error(e);
            conn.send(&resp.encode().into_bytes())?;
            return Ok(());
        }
    };
    let ack = Response::HelloAck {
        server_version: state.version.clone(),
        is_lrc: state.lrc.is_some(),
        is_rli: state.rli.is_some(),
    };
    conn.send(&ack.encode().into_bytes())?;

    // Request loop. Frames may carry a trace envelope; propagated IDs are
    // threaded into dispatch so spans land under the client's trace.
    while !shutdown.load(Ordering::SeqCst) {
        let Some(frame) = conn.recv()? else {
            return Ok(()); // clean close
        };
        // Re-check after the (blocking) read: a server that shut down
        // while this frame was in flight must act crashed — drop the
        // request unanswered so the client sees a dead connection rather
        // than a reply computed against torn-down state. The chaos tests
        // rely on this for crash/restart fidelity.
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let response = match Request::decode_traced(&frame) {
            Ok((trace_ids, req)) => handle_request_traced(state, &identity, req, &trace_ids),
            Err(e) => Response::Error(e),
        };
        conn.send(&response.encode().into_bytes())?;
    }
    Ok(())
}

/// One expire pass recorded as an `rli.expire_sweep` span under a fresh
/// server-minted trace ID (reclamation is server-originated work).
fn run_traced_expire(rli: &Arc<RliService>, journal: &Arc<TraceJournal>) -> RlsResult<u64> {
    let span = journal.begin(journal.mint_trace_id(), 0, "rli.expire_sweep");
    let result = rli.expire(Timestamp::now());
    match &result {
        Ok(n) => span.finish(true, format!("expired={n}")),
        Err(e) => span.finish(false, format!("error: {:?}", e.code())),
    }
    result
}

fn expire_loop(
    rli: Arc<RliService>,
    journal: Arc<TraceJournal>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) {
    let mut next = Instant::now() + interval;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        if Instant::now() >= next {
            if let Err(e) = run_traced_expire(&rli, &journal) {
                rls_trace::warn!("server", "expire pass failed", error = e);
            }
            next = Instant::now() + interval;
        }
    }
}

fn update_loop(mut updater: Updater, mode: UpdateMode, shutdown: Arc<AtomicBool>) {
    let tick = Duration::from_millis(20);
    let now = Instant::now();
    let (mut next_full, mut next_delta) = match &mode {
        UpdateMode::None => return,
        UpdateMode::Full { interval } => (Some(now + *interval), None),
        UpdateMode::Immediate {
            delta_interval,
            full_interval,
            ..
        } => (Some(now + *full_interval), Some(now + *delta_interval)),
        UpdateMode::Bloom { interval, .. } => (Some(now + *interval), None),
    };
    let delta_threshold = match &mode {
        UpdateMode::Immediate {
            delta_threshold, ..
        } => *delta_threshold,
        _ => usize::MAX,
    };
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let now = Instant::now();
        // Threshold-triggered delta flush ("after a specified number of LRC
        // updates have occurred", §3.3).
        let threshold_hit = updater_pending(&updater) >= delta_threshold;
        if let Some(t) = next_delta {
            if now >= t || threshold_hit {
                let targets = updater.targets();
                if let Err(e) = updater.flush_deltas(&targets) {
                    rls_trace::warn!("server", "delta flush failed", error = e);
                }
                if let UpdateMode::Immediate { delta_interval, .. } = &mode {
                    next_delta = Some(Instant::now() + *delta_interval);
                }
            }
        } else if threshold_hit {
            let targets = updater.targets();
            if let Err(e) = updater.flush_deltas(&targets) {
                rls_trace::warn!("server", "delta flush failed", error = e);
            }
        }
        if let Some(t) = next_full {
            if now >= t {
                for r in updater.run_cycle() {
                    if let Err(e) = r {
                        rls_trace::warn!("server", "update cycle send failed", error = e);
                    }
                }
                match &mode {
                    UpdateMode::Full { interval } | UpdateMode::Bloom { interval, .. } => {
                        next_full = Some(Instant::now() + *interval);
                    }
                    UpdateMode::Immediate { full_interval, .. } => {
                        next_full = Some(Instant::now() + *full_interval);
                    }
                    UpdateMode::None => unreachable!("returned above"),
                }
            }
        }
    }
}

fn updater_pending(updater: &Updater) -> usize {
    // Pending delta count lives on the service; reach through the updater.
    updater_lrc(updater).pending_deltas()
}

fn updater_lrc(updater: &Updater) -> Arc<LrcService> {
    updater.lrc_handle()
}
