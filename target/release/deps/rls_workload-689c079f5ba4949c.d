/root/repo/target/release/deps/rls_workload-689c079f5ba4949c.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-689c079f5ba4949c.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-689c079f5ba4949c.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
