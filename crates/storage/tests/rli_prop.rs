//! Model-based property tests for the RLI relational store: upserts,
//! removals and expiry against a reference map of `{lfn, lrc} → timestamp`.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;

use rls_storage::{BackendProfile, RliDatabase};
use rls_types::Timestamp;

#[derive(Clone, Debug)]
enum Op {
    Upsert(u8, u8, u16),
    Remove(u8, u8),
    Query(u8),
    Expire(u16, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u16>())
            .prop_map(|(l, c, t)| Op::Upsert(l % 20, c % 5, t)),
        (any::<u8>(), any::<u8>()).prop_map(|(l, c)| Op::Remove(l % 20, c % 5)),
        any::<u8>().prop_map(|l| Op::Query(l % 20)),
        (any::<u16>(), any::<u16>()).prop_map(|(now, tmo)| Op::Expire(now, tmo)),
    ]
}

fn lfn(i: u8) -> String {
    format!("lfn://rli/{i}")
}
fn lrc(i: u8) -> String {
    format!("lrc-{i}:39281")
}
fn ts(t: u16) -> Timestamp {
    Timestamp::from_unix_secs(u64::from(t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rli_matches_model(ops in prop::collection::vec(arb_op(), 1..150)) {
        let mut db = RliDatabase::in_memory(BackendProfile::mysql_buffered());
        let mut model: BTreeMap<(u8, u8), u16> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Upsert(l, c, t) => {
                    let fresh = db.upsert(&lfn(l), &lrc(c), ts(t)).unwrap();
                    prop_assert_eq!(fresh, !model.contains_key(&(l, c)));
                    model.insert((l, c), t);
                }
                Op::Remove(l, c) => {
                    let removed = db.remove(&lfn(l), &lrc(c)).unwrap();
                    prop_assert_eq!(removed, model.remove(&(l, c)).is_some());
                }
                Op::Query(l) => {
                    let expect: BTreeMap<String, u16> = model
                        .iter()
                        .filter(|((ml, _), _)| *ml == l)
                        .map(|((_, c), t)| (lrc(*c), *t))
                        .collect();
                    match db.query(&lfn(l)) {
                        Ok(hits) => {
                            prop_assert!(!expect.is_empty());
                            let got: BTreeMap<String, u16> = hits
                                .iter()
                                .map(|h| (h.lrc.to_string(), h.updated_at.as_secs() as u16))
                                .collect();
                            prop_assert_eq!(got, expect);
                        }
                        Err(_) => prop_assert!(expect.is_empty()),
                    }
                }
                Op::Expire(now, tmo) => {
                    let n = db
                        .expire(ts(now), Duration::from_secs(u64::from(tmo)))
                        .unwrap();
                    let before = model.len();
                    model.retain(|_, t| {
                        !ts(*t).is_expired(ts(now), Duration::from_secs(u64::from(tmo)))
                    });
                    prop_assert_eq!(n as usize, before - model.len());
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(db.association_count() as usize, model.len());
            let live_lfns: std::collections::BTreeSet<u8> =
                model.keys().map(|(l, _)| *l).collect();
            prop_assert_eq!(db.lfn_count() as usize, live_lfns.len());
            let live_lrcs: std::collections::BTreeSet<u8> =
                model.keys().map(|(_, c)| *c).collect();
            prop_assert_eq!(db.lrc_list().len(), live_lrcs.len());
        }
    }
}
