//! Quickstart: one LRC pushing Bloom-filter soft-state updates to one RLI.
//!
//! Walks the complete lifecycle of the paper's architecture: register
//! replicas at a Local Replica Catalog, push the compressed namespace
//! summary to a Replica Location Index, then discover replicas the way a
//! Grid client would — RLI first ("who might have it?"), then LRC
//! ("where exactly is it?").
//!
//! Run: `cargo run --example quickstart`

use rls::core::testkit::TestDeployment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deploy: one LRC, one RLI, Bloom-compressed updates (§3.4).
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .bloom(true)
        .build()?;
    println!("LRC listening on {}", dep.lrcs[0].addr());
    println!("RLI listening on {}", dep.rlis[0].addr());

    // 2. Register replicas: a logical name with two physical copies.
    let mut lrc = dep.lrc_client(0)?;
    lrc.create_mapping("lfn://demo/dataset-042", "gsiftp://site-a.example.org/data/042")?;
    lrc.add_mapping("lfn://demo/dataset-042", "gsiftp://site-b.example.org/mirror/042")?;
    println!("registered 2 replicas of lfn://demo/dataset-042");

    // 3. Push soft state: LRC → RLI (normally the background update thread;
    //    forced here so the example is deterministic).
    for outcome in dep.force_updates() {
        let o = outcome?;
        println!(
            "soft-state update → {}: {:?} in {:?} ({} bytes)",
            o.target, o.kind, o.duration, o.bytes
        );
    }

    // 4. Discover: query the RLI for candidate LRCs...
    let mut rli = dep.rli_client(0)?;
    let hits = rli.rli_query_lfn("lfn://demo/dataset-042")?;
    println!("RLI says these LRCs may hold the name:");
    for hit in &hits {
        println!("  - {}", hit.lrc);
    }

    // 5. ...then ask the LRC for the actual replica locations.
    let mut replicas = lrc.query_lfn("lfn://demo/dataset-042")?;
    replicas.sort();
    println!("LRC resolves the replicas:");
    for replica in &replicas {
        println!("  - {replica}");
    }
    assert_eq!(replicas.len(), 2);

    // 6. Soft state is soft: deleting the mapping leaves the RLI stale
    //    until the next update (applications must tolerate this — §3.2).
    lrc.delete_mapping("lfn://demo/dataset-042", "gsiftp://site-a.example.org/data/042")?;
    lrc.delete_mapping("lfn://demo/dataset-042", "gsiftp://site-b.example.org/mirror/042")?;
    let stale = rli.rli_query_lfn("lfn://demo/dataset-042").is_ok();
    println!("RLI still lists the name before the next update: {stale}");
    for outcome in dep.force_updates() {
        outcome?;
    }
    let gone = rli.rli_query_lfn("lfn://demo/dataset-042").is_err();
    println!("after the next Bloom update the RLI has forgotten it: {gone}");
    Ok(())
}
