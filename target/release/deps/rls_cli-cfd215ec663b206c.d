/root/repo/target/release/deps/rls_cli-cfd215ec663b206c.d: src/bin/rls-cli.rs

/root/repo/target/release/deps/rls_cli-cfd215ec663b206c: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
