/root/repo/target/debug/deps/rls_core-bbf326725a891875.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/configfile.rs crates/core/src/dispatch.rs crates/core/src/hierarchy.rs crates/core/src/locator.rs crates/core/src/lrc.rs crates/core/src/membership.rs crates/core/src/report.rs crates/core/src/rli.rs crates/core/src/server.rs crates/core/src/shard.rs crates/core/src/softstate.rs crates/core/src/testkit.rs Cargo.toml

/root/repo/target/debug/deps/librls_core-bbf326725a891875.rmeta: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/configfile.rs crates/core/src/dispatch.rs crates/core/src/hierarchy.rs crates/core/src/locator.rs crates/core/src/lrc.rs crates/core/src/membership.rs crates/core/src/report.rs crates/core/src/rli.rs crates/core/src/server.rs crates/core/src/shard.rs crates/core/src/softstate.rs crates/core/src/testkit.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/configfile.rs:
crates/core/src/dispatch.rs:
crates/core/src/hierarchy.rs:
crates/core/src/locator.rs:
crates/core/src/lrc.rs:
crates/core/src/membership.rs:
crates/core/src/report.rs:
crates/core/src/rli.rs:
crates/core/src/server.rs:
crates/core/src/shard.rs:
crates/core/src/softstate.rs:
crates/core/src/testkit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
