/root/repo/target/debug/deps/stress-3db4faeaae39fdc3.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/stress-3db4faeaae39fdc3: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
