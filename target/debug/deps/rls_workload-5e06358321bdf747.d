/root/repo/target/debug/deps/rls_workload-5e06358321bdf747.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/rls_workload-5e06358321bdf747: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
