//! The common LRC/RLI server (§3.1).
//!
//! A multi-threaded, connection-oriented server (the original is a
//! multi-threaded C server over `globus_io`), built as a **bounded worker
//! pool** with explicit admission control:
//!
//! * the accept loop admits at most `max_connections` concurrent clients;
//!   an over-cap connection is answered with a retryable [`Busy`] error —
//!   never silently dropped — so the client's backoff policy can tell
//!   "come back shortly" from a crash;
//! * admitted connections are multiplexed across a fixed pool of
//!   `worker_threads` handler threads at *request* granularity. A
//!   readiness poller sweeps parked connections with zero-wait reads and
//!   queues only those with a complete frame, so workers never block on a
//!   socket that has nothing to say; 100 requesting threads degrade
//!   gracefully on a handful of workers instead of costing 100 OS threads
//!   (the paper's Fig. 6 shape). When no other connection is waiting, a
//!   worker *camps* on its connection for a short quantum, which keeps
//!   per-request latency at thread-per-connection levels under light load;
//! * connections idle past `idle_timeout` are reaped, releasing their
//!   admission slot.
//!
//! Background threads drive the soft-state update schedule (LRC role) and
//! the expire pass (RLI role). The update plane shares **one** updater —
//! and therefore one set of LRC→RLI streams — between the background
//! schedule and the synchronous trigger entry points.
//!
//! The pool reports itself through `server.*` metrics (queue depth, wait
//! time, busy rejects, accept errors) in the stats RPC; see
//! docs/OBSERVABILITY.md.
//!
//! [`Busy`]: rls_types::ErrorCode::Busy

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rls_metrics::{Counter, TelemetryRing};
use rls_net::{Conn, Listener, Readiness, RecvHalf, SendHalf, TryRecvRef};
use rls_proto::{
    peek_request_id, Request, Response, PROTOCOL_VERSION, PROTOCOL_VERSION_PIPELINED,
};
use rls_trace::TraceJournal;
use rls_types::{ErrorCode, RlsError, RlsResult, Timestamp};

use crate::auth::{Authorizer, Identity};
use crate::config::{ServerConfig, UpdateMode};
use crate::dispatch::{handle_request_framed, ServerState};
use crate::lrc::LrcService;
use crate::rli::RliService;
use crate::softstate::{UpdateOutcome, Updater};

/// Version string advertised in handshakes: the RLS release this repo
/// reproduces.
pub const SERVER_VERSION: &str = "2.0.9-rust";

/// How long a worker camps on one connection's socket when no other
/// connection is waiting to be served. Camping keeps the request→response
/// ping-pong of a lightly loaded server free of poller latency; the wait
/// is abandoned (zero-wait reads only) the moment the ready queue fills.
const READ_QUANTUM: Duration = Duration::from_millis(1);

/// Requests served from one connection before it re-queues, so a
/// firehose client cannot pin a worker while others wait.
const BURST_LIMIT: usize = 32;

/// Poller sleep between sweeps that woke nothing. Doubles up to
/// [`DISPATCH_IDLE_MAX`] while the server stays quiet so an idle server
/// isn't a busy loop, and snaps back on any activity.
const DISPATCH_IDLE: Duration = Duration::from_micros(500);
const DISPATCH_IDLE_MAX: Duration = Duration::from_millis(2);

/// Accept-loop poll interval: the granularity at which the accept thread
/// notices shutdown. Replaces the old "connect to yourself to unblock
/// accept" trick, which broke for `0.0.0.0`/unroutable binds.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Upper bound for the accept-error backoff (EMFILE and friends).
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// A running RLS server.
pub struct Server {
    state: Arc<ServerState>,
    config: ServerConfig,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pool: Arc<ConnPool>,
    /// The one updater shared by the background update thread and the
    /// synchronous `run_update_cycle`/`flush_deltas` entry points, so all
    /// soft-state traffic toward an RLI rides a single stream instead of
    /// interleaving frames from per-call connections.
    updater: Option<Arc<Mutex<Updater>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("name", &self.state.name)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, builds the configured services, and starts the accept loop,
    /// the worker pool, and background threads.
    pub fn start(mut config: ServerConfig) -> RlsResult<Self> {
        let listener = Listener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        if config.name.is_empty() {
            config.name = addr.to_string();
        }
        let lrc = match &config.lrc {
            Some(lrc_cfg) => Some(Arc::new(LrcService::new(lrc_cfg.clone())?)),
            None => None,
        };
        let rli = match &config.rli {
            Some(rli_cfg) => Some(Arc::new(RliService::new(rli_cfg.clone())?)),
            None => None,
        };
        if lrc.is_none() && rli.is_none() {
            return Err(RlsError::bad_request(
                "server must be configured as an LRC, an RLI, or both",
            ));
        }
        let state = Arc::new(ServerState {
            name: config.name.clone(),
            version: SERVER_VERSION.to_owned(),
            lrc,
            rli,
            authorizer: Authorizer::new(config.auth.clone()),
            metrics: Arc::new(rls_metrics::Registry::new()),
            net: Arc::new(rls_net::ConnMeter::new()),
            journal: Arc::new(TraceJournal::new(config.trace_journal_capacity)),
            slow_op_threshold: config.slow_op_threshold,
            telemetry: Arc::new(TelemetryRing::new(config.telemetry_ring_capacity)),
            telemetry_interval: config.telemetry_interval,
            started_at: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = if config.worker_threads == 0 {
            // Floor of 4: on small hosts the pool must still overlap
            // requests that sleep in the storage layer (flush-enabled
            // backend profiles), and idle workers cost only a parked
            // thread.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4)
        } else {
            config.worker_threads
        };
        state
            .metrics
            .counter("server.worker_threads")
            .set(workers as u64);
        let pool = Arc::new(ConnPool::new(&state, config.idle_timeout));
        let mut threads = Vec::new();

        // Accept loop.
        {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let pool = Arc::clone(&pool);
            let max_conns = config.max_connections;
            let mut listener = listener;
            listener.set_max_frame(config.max_frame);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rls-accept-{addr}"))
                    .spawn(move || accept_loop(listener, pool, state, shutdown, max_conns))
                    .expect("spawn accept thread"),
            );
        }

        // Readiness poller: sweeps parked connections with zero-wait
        // reads, feeding the ready queue. Also the idle-reap clock.
        {
            let shutdown = Arc::clone(&shutdown);
            let pool = Arc::clone(&pool);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rls-poll-{addr}"))
                    .spawn(move || dispatch_loop(&pool, &shutdown))
                    .expect("spawn poller thread"),
            );
        }

        // Worker pool: the only threads that run request handlers.
        for i in 0..workers {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let pool = Arc::clone(&pool);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rls-worker-{i}-{addr}"))
                    .spawn(move || worker_loop(&pool, &state, &shutdown))
                    .expect("spawn worker thread"),
            );
        }

        // Expire thread (RLI role).
        if let (Some(rli), Some(rli_cfg)) = (&state.rli, &config.rli) {
            if rli_cfg.auto_expire {
                let rli = Arc::clone(rli);
                let journal = Arc::clone(&state.journal);
                let shutdown = Arc::clone(&shutdown);
                let interval = rli_cfg.expire_interval;
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("rls-expire-{addr}"))
                        .spawn(move || expire_loop(rli, journal, shutdown, interval))
                        .expect("spawn expire thread"),
                );
            }
        }

        // One shared updater for every update path (LRC role).
        let updater = match (&state.lrc, &config.lrc) {
            (Some(lrc), Some(lrc_cfg)) => {
                let mut u = Updater::new(
                    config.name.clone(),
                    config.dn.clone(),
                    Arc::clone(lrc),
                    &lrc_cfg.update,
                );
                u.set_journal(Arc::clone(&state.journal));
                Some(Arc::new(Mutex::new(u)))
            }
            _ => None,
        };

        // Flight-recorder sampler: refreshes derived gauges (worker
        // occupancy, shard imbalance, RLI staleness), rolls the latency
        // exemplars, and captures the whole registry into the telemetry
        // ring every `telemetry_interval_ms`.
        if !config.telemetry_interval.is_zero() {
            let state = Arc::clone(&state);
            let pool = Arc::clone(&pool);
            let shutdown = Arc::clone(&shutdown);
            let interval = config.telemetry_interval;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rls-telemetry-{addr}"))
                    .spawn(move || telemetry_loop(&state, &pool, &shutdown, interval))
                    .expect("spawn telemetry thread"),
            );
        }

        // Update thread (LRC role) drives the shared updater.
        if let (Some(updater), Some(lrc_cfg)) = (&updater, &config.lrc) {
            if lrc_cfg.update.auto && !matches!(lrc_cfg.update.mode, UpdateMode::None) {
                let updater = Arc::clone(updater);
                let mode = lrc_cfg.update.mode.clone();
                let shutdown = Arc::clone(&shutdown);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("rls-update-{addr}"))
                        .spawn(move || update_loop(&updater, &mode, &shutdown))
                        .expect("spawn update thread"),
                );
            }
        }

        Ok(Self {
            state,
            config,
            addr,
            shutdown,
            threads: Mutex::new(threads),
            pool,
            updater,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The advertised server name (LRC identity in updates).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The server configuration (post-bind, with the resolved name).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Shared state (services, authorizer).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The LRC service, if configured.
    pub fn lrc(&self) -> Option<&Arc<LrcService>> {
        self.state.lrc.as_ref()
    }

    /// The RLI service, if configured.
    pub fn rli(&self) -> Option<&Arc<RliService>> {
        self.state.rli.as_ref()
    }

    /// Currently admitted client connections (queued or in service).
    pub fn active_connections(&self) -> usize {
        self.pool.active.load(Ordering::SeqCst)
    }

    /// Runs one synchronous update cycle (tests/benches); requires the LRC
    /// role. Shares the background thread's updater, so triggered and
    /// scheduled updates never interleave on an RLI stream.
    pub fn run_update_cycle(&self) -> RlsResult<Vec<RlsResult<UpdateOutcome>>> {
        let updater = self
            .updater
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no LRC role"))?;
        Ok(updater.lock().run_cycle())
    }

    /// Runs one synchronous delta flush (immediate mode).
    pub fn flush_deltas(&self) -> RlsResult<Vec<UpdateOutcome>> {
        let updater = self
            .updater
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no LRC role"))?;
        let mut updater = updater.lock();
        let targets = updater.targets();
        updater.flush_deltas(&targets)
    }

    /// Captures one flight-recorder sample synchronously (tests and the
    /// chaos suite use this for deterministic telemetry instead of waiting
    /// out the sampler interval). Works with the sampler disabled too.
    pub fn force_sample(&self) -> u64 {
        self.state
            .metrics
            .counter("server.workers_busy")
            .set(self.pool.busy_now.load(Ordering::SeqCst) as u64);
        self.state.capture_sample()
    }

    /// Runs one synchronous expire pass; requires the RLI role.
    pub fn run_expire(&self) -> RlsResult<u64> {
        let rli = self
            .state
            .rli
            .as_ref()
            .ok_or_else(|| RlsError::bad_request("server has no RLI role"))?;
        run_traced_expire(rli, &self.state.journal)
    }

    /// Stops the accept loop, worker pool and background threads, then
    /// joins them. Queued and in-flight requests are dropped unanswered —
    /// from a client's view the server crashed, which is exactly what the
    /// chaos suite's crash/restart scenarios rely on.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Workers may be parked on the queue condvar; the accept loop
        // notices on its next poll tick.
        self.pool.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // Close every still-admitted connection. A shut-down server must
        // look *crashed* to its peers; leaving queued sockets open would
        // strand clients (and the soft-state updater) blocking on reads
        // against a server that will never answer.
        self.pool.drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One admitted connection, alternating between the poller's parked set
/// (no complete request on the wire) and the ready queue (a frame is
/// waiting for a worker).
///
/// The connection is held split: the receive half travels with the
/// session (exactly one thread reads at a time), while the send half sits
/// behind a shared lock so pipelined requests offloaded to *other*
/// workers can write their responses to the same socket out of order.
struct Session {
    rx: RecvHalf,
    tx: Arc<Mutex<SendHalf>>,
    /// `None` until the Hello handshake completes.
    identity: Option<Identity>,
    /// Last time a frame arrived (idle-reap clock).
    last_active: Instant,
    /// When the session was last queued (wait-time metric).
    enqueued_at: Instant,
}

/// A pipelined request detached from its connection: the frame bytes, the
/// shared send half to answer on, and the authenticated identity. Queued
/// as its own work unit so several requests from one connection can run
/// on several workers concurrently — the out-of-order completion the
/// request-ID envelope exists for.
struct WorkItem {
    frame: Vec<u8>,
    tx: Arc<Mutex<SendHalf>>,
    identity: Identity,
}

/// What the worker queue carries: a connection with (at least) one frame
/// ready to read, or a single detached pipelined request.
enum Work {
    Conn(Session),
    Item(WorkItem),
}

/// The admission ledger plus the two session homes: the parked set the
/// poller sweeps, and the ready queue feeding the worker pool.
struct ConnPool {
    queue: StdMutex<VecDeque<Work>>,
    cond: Condvar,
    /// Sessions with no complete request buffered, owned by the poller
    /// between sweeps. The accept loop and workers drop sessions here.
    parked: StdMutex<Vec<Session>>,
    /// Admission slots in use: queued plus in-service sessions. The accept
    /// loop checks this against `max_connections`.
    active: AtomicUsize,
    /// Workers currently inside a request handler, and the high-water
    /// mark — the observable proof that handling is bounded by the pool
    /// size, not the connection count.
    busy_now: AtomicUsize,
    busy_hwm: AtomicUsize,
    idle_timeout: Duration,
    queue_depth: Arc<rls_metrics::LatencyHistogram>,
    conn_wait: Arc<rls_metrics::LatencyHistogram>,
    idle_reaped: Counter,
    hwm_gauge: Counter,
    /// Pipelined (ID-stamped) frames detached into their own work units.
    pipeline_offloaded: Counter,
    /// Legacy frames served inline, strictly serially, on the session.
    pipeline_inline: Counter,
    /// Response writes that failed; each one also closes its connection.
    write_errors: Counter,
}

impl ConnPool {
    fn new(state: &ServerState, idle_timeout: Duration) -> Self {
        Self {
            queue: StdMutex::new(VecDeque::new()),
            cond: Condvar::new(),
            parked: StdMutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            busy_now: AtomicUsize::new(0),
            busy_hwm: AtomicUsize::new(0),
            idle_timeout,
            queue_depth: state.metrics.histogram("server.accept_queue_depth"),
            conn_wait: state.metrics.histogram("server.conn_wait"),
            idle_reaped: state.metrics.counter("server.idle_reaped"),
            hwm_gauge: state.metrics.counter("server.workers_busy_hwm"),
            pipeline_offloaded: state.metrics.counter("net.pipeline.offloaded"),
            pipeline_inline: state.metrics.counter("net.pipeline.inline"),
            write_errors: state.metrics.counter("server.write_errors"),
        }
    }

    /// Parks a freshly admitted connection; the poller will queue it as
    /// soon as its Hello frame is on the wire.
    fn admit(&self, conn: Conn) {
        let now = Instant::now();
        let (rx, tx) = conn.split();
        self.park(Session {
            rx,
            tx: Arc::new(Mutex::new(tx)),
            identity: None,
            last_active: now,
            enqueued_at: now,
        });
    }

    /// Returns a session to the poller's sweep set.
    fn park(&self, session: Session) {
        self.parked.lock().expect("parked set poisoned").push(session);
    }

    /// Queues a session with a ready frame and wakes one worker.
    fn push(&self, mut session: Session) {
        session.enqueued_at = Instant::now();
        let mut q = self.queue.lock().expect("pool queue poisoned");
        self.queue_depth.record_micros(q.len() as u64);
        q.push_back(Work::Conn(session));
        drop(q);
        self.cond.notify_one();
    }

    /// Queues one detached pipelined request and wakes one worker.
    fn push_item(&self, item: WorkItem) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        self.queue_depth.record_micros(q.len() as u64);
        q.push_back(Work::Item(item));
        drop(q);
        self.cond.notify_one();
    }

    /// True when no session is waiting for a worker — the signal that a
    /// worker may camp on its current connection instead of parking it.
    fn ready_is_empty(&self) -> bool {
        self.queue.lock().expect("pool queue poisoned").is_empty()
    }

    /// Blocks until work is available or shutdown begins.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Work> {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            let (guard, _) = self
                .cond
                .wait_timeout(q, Duration::from_millis(50))
                .expect("pool queue poisoned");
            q = guard;
        }
    }

    /// Returns a session's admission slot.
    fn release(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Drops every queued and parked session, closing its socket and
    /// releasing its slot (shutdown path; the threads have already been
    /// joined). Detached work items ride their session's slot, so only
    /// sessions release one.
    fn drain(&self) {
        let queued: Vec<Work> = {
            let mut q = self.queue.lock().expect("pool queue poisoned");
            q.drain(..).collect()
        };
        for work in &queued {
            if matches!(work, Work::Conn(_)) {
                self.release();
            }
        }
        let parked: Vec<Session> = self
            .parked
            .lock()
            .expect("parked set poisoned")
            .drain(..)
            .collect();
        for _ in &parked {
            self.release();
        }
    }

    fn notify_all(&self) {
        self.cond.notify_all();
    }

    /// Marks one worker as inside a handler, maintaining the high-water
    /// mark gauge.
    fn enter_busy(&self) {
        let now = self.busy_now.fetch_add(1, Ordering::SeqCst) + 1;
        let mut hwm = self.busy_hwm.load(Ordering::Relaxed);
        while now > hwm {
            match self
                .busy_hwm
                .compare_exchange_weak(hwm, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.hwm_gauge.set(now as u64);
                    break;
                }
                Err(cur) => hwm = cur,
            }
        }
    }

    fn exit_busy(&self) {
        self.busy_now.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: Listener,
    pool: Arc<ConnPool>,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    max_conns: usize,
) {
    let busy_rejects = state.metrics.counter("server.busy_rejects");
    let accept_errors = state.metrics.counter("server.accept_errors");
    let admitted = state.metrics.counter("server.conns_admitted");
    let mut backoff = Duration::from_millis(5);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept_timeout(ACCEPT_POLL) {
            // Timeout: loop around and re-check the shutdown flag.
            Ok(None) => {}
            Ok(Some(mut conn)) => {
                backoff = Duration::from_millis(5);
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if pool.active.load(Ordering::SeqCst) >= max_conns {
                    // Admission control: answer, don't silently drop. The
                    // client's pending Hello surfaces this frame as a Busy
                    // error, which its retry policy treats as backoff-able.
                    busy_rejects.inc();
                    let resp = Response::Error(RlsError::new(
                        ErrorCode::Busy,
                        format!("connection limit of {max_conns} reached; retry with backoff"),
                    ));
                    let _ = conn.send(&resp.encode().into_bytes());
                    // Drain the client's Hello before dropping: closing a
                    // socket with unread inbound bytes raises RST, which
                    // can destroy the Busy frame before the client reads it.
                    let _ = conn.try_recv(Duration::from_millis(50));
                    continue;
                }
                pool.active.fetch_add(1, Ordering::SeqCst);
                conn.set_meter(Arc::clone(&state.net));
                admitted.inc();
                pool.admit(conn);
            }
            Err(e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE, ...) must not spin the
                // loop at 100% CPU: back off exponentially, and surface the
                // failures on the operator counter.
                accept_errors.inc();
                rls_trace::warn!("server", "accept failed", error = e);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// What to do with the connection after answering one frame.
enum FrameOutcome {
    /// Keep serving this connection.
    Continue,
    /// Handshake failed terminally; close after the reply.
    Close,
}

/// Sends one response frame on a session's shared send half. A failed
/// write is never silent: the send half has already poisoned itself and
/// shut the socket down; this counts it on the operator metric and tells
/// the caller to retire the connection.
fn send_response(tx: &Mutex<SendHalf>, body: &[u8], write_errors: &Counter) -> RlsResult<()> {
    tx.lock().send(body).inspect_err(|_| write_errors.inc())
}

/// Handles one inbound frame inline: the Hello handshake while the
/// session is unauthenticated, request dispatch afterwards. `Err` means
/// the connection is unusable (send failure) and must be dropped.
fn serve_frame(
    identity: &mut Option<Identity>,
    tx: &Mutex<SendHalf>,
    frame: &[u8],
    state: &ServerState,
    write_errors: &Counter,
) -> RlsResult<FrameOutcome> {
    match identity {
        Some(identity) => {
            // Frames may carry trace/request-ID envelopes; propagated
            // trace IDs are threaded into dispatch so spans land under
            // the client's trace, and a request ID is echoed on the
            // response so a pipelined client can match it.
            let (id, response) = match Request::decode_framed(frame) {
                Ok((meta, req)) => {
                    let id = meta.request_id;
                    (id, handle_request_framed(state, identity, req, &meta))
                }
                Err(e) => (peek_request_id(frame), Response::Error(e)),
            };
            send_response(tx, &response.encode_with_id(id).into_bytes(), write_errors)?;
            Ok(FrameOutcome::Continue)
        }
        None => match Request::decode(frame) {
            Ok(Request::Hello { dn, version })
                if version == PROTOCOL_VERSION || version == PROTOCOL_VERSION_PIPELINED =>
            {
                *identity = Some(state.authorizer.authenticate(dn));
                // Echo the negotiated version: a v1 ack is byte-identical
                // to the legacy handshake, a v2 ack tells the client its
                // pipelined requests will be answered (possibly out of
                // order) by request ID.
                let ack = Response::HelloAck {
                    server_version: state.version.clone(),
                    is_lrc: state.lrc.is_some(),
                    is_rli: state.rli.is_some(),
                    protocol: version,
                };
                send_response(tx, &ack.encode().into_bytes(), write_errors)?;
                Ok(FrameOutcome::Continue)
            }
            Ok(Request::Hello { version, .. }) => {
                let resp = Response::Error(RlsError::protocol(format!(
                    "unsupported protocol version {version}"
                )));
                send_response(tx, &resp.encode().into_bytes(), write_errors)?;
                Ok(FrameOutcome::Close)
            }
            Ok(_) => {
                let resp = Response::Error(RlsError::bad_request("first frame must be Hello"));
                send_response(tx, &resp.encode().into_bytes(), write_errors)?;
                Ok(FrameOutcome::Close)
            }
            Err(e) => {
                let resp = Response::Error(e);
                send_response(tx, &resp.encode().into_bytes(), write_errors)?;
                Ok(FrameOutcome::Close)
            }
        },
    }
}

/// Serves one detached pipelined request and writes its ID-stamped
/// response through the shared send half. Write failures are counted;
/// the session's receive path observes the resulting shutdown and
/// retires the connection.
fn serve_item(item: &WorkItem, state: &ServerState, write_errors: &Counter) {
    let (id, response) = match Request::decode_framed(&item.frame) {
        Ok((meta, req)) => {
            let id = meta.request_id;
            (id, handle_request_framed(state, &item.identity, req, &meta))
        }
        Err(e) => (peek_request_id(&item.frame), Response::Error(e)),
    };
    let _ = send_response(
        &item.tx,
        &response.encode_with_id(id).into_bytes(),
        write_errors,
    );
}

/// The flight-recorder sampler thread: every `interval`, publish the
/// live worker occupancy and take one registry sample into the telemetry
/// ring. Sleeps in short ticks so shutdown is noticed promptly even at
/// multi-second sampling intervals.
fn telemetry_loop(
    state: &Arc<ServerState>,
    pool: &Arc<ConnPool>,
    shutdown: &Arc<AtomicBool>,
    interval: Duration,
) {
    let tick = Duration::from_millis(20);
    let mut next = Instant::now() + interval;
    while !shutdown.load(Ordering::SeqCst) {
        if Instant::now() < next {
            std::thread::sleep(tick.min(interval));
            continue;
        }
        next += interval;
        state
            .metrics
            .counter("server.workers_busy")
            .set(pool.busy_now.load(Ordering::SeqCst) as u64);
        state.capture_sample();
    }
}

/// The readiness poller. Each sweep takes the parked set, probes every
/// session with a zero-wait read, and hands sessions with a complete
/// frame to the worker queue. Partial frames stay buffered in the
/// session's connection and complete across sweeps. Sessions idle past
/// the timeout, closed, or errored are retired here — the poller is the
/// only place a parked connection's state is ever observed, so this and
/// the worker's retire path are the *only* two ways a slot comes back.
fn dispatch_loop(pool: &Arc<ConnPool>, shutdown: &Arc<AtomicBool>) {
    let mut idle_sleep = DISPATCH_IDLE;
    while !shutdown.load(Ordering::SeqCst) {
        let parked: Vec<Session> = {
            let mut p = pool.parked.lock().expect("parked set poisoned");
            std::mem::take(&mut *p)
        };
        let mut still_parked = Vec::with_capacity(parked.len());
        let mut woke = 0usize;
        for mut session in parked {
            // A readiness probe only: the frame stays buffered in the
            // session's receive half, and the worker that pops the
            // session reads it — no bytes are read twice and none are
            // copied out here.
            match session.rx.poll_ready(Duration::ZERO) {
                Ok(Readiness::Ready) => {
                    pool.push(session);
                    woke += 1;
                }
                Ok(Readiness::Idle) => {
                    if !pool.idle_timeout.is_zero()
                        && session.last_active.elapsed() >= pool.idle_timeout
                    {
                        pool.idle_reaped.inc();
                        pool.release(); // dropping the session closes the socket
                    } else {
                        still_parked.push(session);
                    }
                }
                Ok(Readiness::Closed) | Err(_) => pool.release(),
            }
        }
        pool.parked
            .lock()
            .expect("parked set poisoned")
            .append(&mut still_parked);
        if woke == 0 {
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(DISPATCH_IDLE_MAX);
        } else {
            idle_sleep = DISPATCH_IDLE;
            std::thread::yield_now();
        }
    }
}

/// One pool worker: pops a ready session, serves its pending frame, keeps
/// serving while requests are already buffered (bounded burst), then
/// parks or retires it. When the ready queue is empty the worker camps on
/// the connection for [`READ_QUANTUM`] instead of bouncing it back to the
/// poller — a lightly loaded server answers ping-pong clients at
/// thread-per-connection latency.
fn worker_loop(pool: &Arc<ConnPool>, state: &Arc<ServerState>, shutdown: &Arc<AtomicBool>) {
    while let Some(work) = pool.pop(shutdown) {
        let mut session = match work {
            Work::Conn(session) => session,
            Work::Item(item) => {
                // A detached pipelined request: serve and answer through
                // the shared send half. Shutdown re-check as below — a
                // stopping server drops it unanswered.
                if !shutdown.load(Ordering::SeqCst) {
                    pool.enter_busy();
                    serve_item(&item, state, &pool.write_errors);
                    pool.exit_busy();
                }
                continue;
            }
        };
        pool.conn_wait
            .record_micros(session.enqueued_at.elapsed().as_micros() as u64);
        // Whether the session survives this service slice.
        let mut keep = true;
        let mut served = 0usize;
        loop {
            let wait = if pool.ready_is_empty() {
                READ_QUANTUM
            } else {
                Duration::ZERO
            };
            // Disjoint borrows: the frame borrows the receive half's
            // buffer (no copy) while the send half and identity stay
            // usable for the reply.
            let Session {
                rx,
                tx,
                identity,
                last_active,
                ..
            } = &mut session;
            let frame = match rx.try_recv_ref(wait) {
                Ok(TryRecvRef::Frame(f)) => f,
                Ok(TryRecvRef::Idle) => break, // park: poller takes over
                Ok(TryRecvRef::Closed) | Err(_) => {
                    keep = false;
                    break;
                }
            };
            // Re-check after the read: a server that shut down while this
            // frame was in flight must act crashed — drop the request
            // unanswered so the client sees a dead connection rather than
            // a reply computed against torn-down state. The chaos tests
            // rely on this for crash/restart fidelity.
            if shutdown.load(Ordering::SeqCst) {
                keep = false;
                break;
            }
            *last_active = Instant::now();
            // An ID-stamped frame from an authenticated client is
            // detached into its own work unit — that, not this worker's
            // serial loop, is what lets responses complete out of order
            // when one request stalls. The copy here is the price of
            // handing the frame to another thread; legacy frames stay
            // zero-copy.
            if let (Some(ident), Some(_)) = (identity.as_ref(), rls_proto::peek_request_id(frame))
            {
                pool.pipeline_offloaded.inc();
                pool.push_item(WorkItem {
                    frame: frame.to_vec(),
                    tx: Arc::clone(tx),
                    identity: ident.clone(),
                });
                served += 1;
                if served >= BURST_LIMIT {
                    break; // park: fairness across sessions
                }
                continue;
            }
            if identity.is_some() {
                pool.pipeline_inline.inc();
            }
            pool.enter_busy();
            let outcome = serve_frame(identity, tx, frame, state, &pool.write_errors);
            pool.exit_busy();
            match outcome {
                Ok(FrameOutcome::Continue) => {
                    served += 1;
                    if served >= BURST_LIMIT {
                        break; // park: fairness across sessions
                    }
                }
                Ok(FrameOutcome::Close) | Err(_) => {
                    keep = false;
                    break;
                }
            }
        }
        if keep {
            pool.park(session);
        } else {
            // Dropping the session closes the socket; the slot frees here
            // or in the poller's retire path — nowhere else — whether the
            // close was clean, mid-request, a handshake failure, or an
            // idle reap. No way to leak it.
            pool.release();
        }
    }
}

/// One expire pass recorded as an `rli.expire_sweep` span under a fresh
/// server-minted trace ID (reclamation is server-originated work).
fn run_traced_expire(rli: &Arc<RliService>, journal: &Arc<TraceJournal>) -> RlsResult<u64> {
    let span = journal.begin(journal.mint_trace_id(), 0, "rli.expire_sweep");
    let result = rli.expire(Timestamp::now());
    match &result {
        Ok(n) => span.finish(true, format!("expired={n}")),
        Err(e) => span.finish(false, format!("error: {:?}", e.code())),
    }
    result
}

fn expire_loop(
    rli: Arc<RliService>,
    journal: Arc<TraceJournal>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) {
    let mut next = Instant::now() + interval;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        if Instant::now() >= next {
            if let Err(e) = run_traced_expire(&rli, &journal) {
                rls_trace::warn!("server", "expire pass failed", error = e);
            }
            next = Instant::now() + interval;
        }
    }
}

fn update_loop(updater: &Arc<Mutex<Updater>>, mode: &UpdateMode, shutdown: &Arc<AtomicBool>) {
    let tick = Duration::from_millis(20);
    // The service handle is stable; grab it once so the pending-delta
    // check doesn't contend on the updater lock every tick.
    let lrc = updater.lock().lrc_handle();
    let now = Instant::now();
    let (mut next_full, mut next_delta) = match mode {
        UpdateMode::None => return,
        UpdateMode::Full { interval } => (Some(now + *interval), None),
        UpdateMode::Immediate {
            delta_interval,
            full_interval,
            ..
        } => (Some(now + *full_interval), Some(now + *delta_interval)),
        UpdateMode::Bloom { interval, .. } => (Some(now + *interval), None),
    };
    let delta_threshold = match mode {
        UpdateMode::Immediate {
            delta_threshold, ..
        } => *delta_threshold,
        _ => usize::MAX,
    };
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let now = Instant::now();
        // Threshold-triggered delta flush ("after a specified number of LRC
        // updates have occurred", §3.3).
        let threshold_hit = lrc.pending_deltas() >= delta_threshold;
        if let Some(t) = next_delta {
            if now >= t || threshold_hit {
                let mut updater = updater.lock();
                let targets = updater.targets();
                if let Err(e) = updater.flush_deltas(&targets) {
                    rls_trace::warn!("server", "delta flush failed", error = e);
                }
                if let UpdateMode::Immediate { delta_interval, .. } = mode {
                    next_delta = Some(Instant::now() + *delta_interval);
                }
            }
        } else if threshold_hit {
            let mut updater = updater.lock();
            let targets = updater.targets();
            if let Err(e) = updater.flush_deltas(&targets) {
                rls_trace::warn!("server", "delta flush failed", error = e);
            }
        }
        if let Some(t) = next_full {
            if now >= t {
                for r in updater.lock().run_cycle() {
                    if let Err(e) = r {
                        rls_trace::warn!("server", "update cycle send failed", error = e);
                    }
                }
                match mode {
                    UpdateMode::Full { interval } | UpdateMode::Bloom { interval, .. } => {
                        next_full = Some(Instant::now() + *interval);
                    }
                    UpdateMode::Immediate { full_interval, .. } => {
                        next_full = Some(Instant::now() + *full_interval);
                    }
                    UpdateMode::None => unreachable!("returned above"),
                }
            }
        }
    }
}
