/root/repo/target/debug/deps/rls_faults-0347fc4e62203740.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/librls_faults-0347fc4e62203740.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
