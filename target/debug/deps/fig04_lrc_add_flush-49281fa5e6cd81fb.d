/root/repo/target/debug/deps/fig04_lrc_add_flush-49281fa5e6cd81fb.d: crates/bench/benches/fig04_lrc_add_flush.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_lrc_add_flush-49281fa5e6cd81fb.rmeta: crates/bench/benches/fig04_lrc_add_flush.rs Cargo.toml

crates/bench/benches/fig04_lrc_add_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
