/root/repo/target/debug/deps/e2e-db0ad10203b55204.d: crates/core/tests/e2e.rs

/root/repo/target/debug/deps/e2e-db0ad10203b55204: crates/core/tests/e2e.rs

crates/core/tests/e2e.rs:
