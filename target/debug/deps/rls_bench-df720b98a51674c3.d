/root/repo/target/debug/deps/rls_bench-df720b98a51674c3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls_bench-df720b98a51674c3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
