/root/repo/target/release/deps/bytes-a9a856efa57c6430.d: /tmp/vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a9a856efa57c6430.rlib: /tmp/vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a9a856efa57c6430.rmeta: /tmp/vendor/bytes/src/lib.rs

/tmp/vendor/bytes/src/lib.rs:
