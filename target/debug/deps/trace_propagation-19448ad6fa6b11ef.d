/root/repo/target/debug/deps/trace_propagation-19448ad6fa6b11ef.d: crates/core/tests/trace_propagation.rs

/root/repo/target/debug/deps/trace_propagation-19448ad6fa6b11ef: crates/core/tests/trace_propagation.rs

crates/core/tests/trace_propagation.rs:
