/root/repo/target/release/deps/fig08_pg_vacuum-c4ab5db375bbdbc0.d: crates/bench/benches/fig08_pg_vacuum.rs

/root/repo/target/release/deps/fig08_pg_vacuum-c4ab5db375bbdbc0: crates/bench/benches/fig08_pg_vacuum.rs

crates/bench/benches/fig08_pg_vacuum.rs:
