/root/repo/target/debug/deps/rls_bench-1b79ddd15735cc6c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls_bench-1b79ddd15735cc6c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
