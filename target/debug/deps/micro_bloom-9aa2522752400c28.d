/root/repo/target/debug/deps/micro_bloom-9aa2522752400c28.d: crates/bench/benches/micro_bloom.rs

/root/repo/target/debug/deps/micro_bloom-9aa2522752400c28: crates/bench/benches/micro_bloom.rs

crates/bench/benches/micro_bloom.rs:
