/root/repo/target/debug/deps/fig08_pg_vacuum-4f023fab9b368a7a.d: crates/bench/benches/fig08_pg_vacuum.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_pg_vacuum-4f023fab9b368a7a.rmeta: crates/bench/benches/fig08_pg_vacuum.rs Cargo.toml

crates/bench/benches/fig08_pg_vacuum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
