/root/repo/target/release/deps/micro_pattern-fbf1c6921720dc1a.d: crates/bench/benches/micro_pattern.rs

/root/repo/target/release/deps/micro_pattern-fbf1c6921720dc1a: crates/bench/benches/micro_pattern.rs

crates/bench/benches/micro_pattern.rs:
