/root/repo/target/debug/deps/rli_sharding-28f369e6945f423f.d: crates/core/tests/rli_sharding.rs Cargo.toml

/root/repo/target/debug/deps/librli_sharding-28f369e6945f423f.rmeta: crates/core/tests/rli_sharding.rs Cargo.toml

crates/core/tests/rli_sharding.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
