/root/repo/target/debug/deps/timing-e1013ccab698b5c5.d: crates/net/tests/timing.rs

/root/repo/target/debug/deps/timing-e1013ccab698b5c5: crates/net/tests/timing.rs

crates/net/tests/timing.rs:
