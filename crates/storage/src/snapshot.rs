//! Snapshot persistence: checkpoint the full database state to a file and
//! truncate the WAL.
//!
//! Format: magic, table count, then per table the live rows (values encoded
//! with the WAL codec). Loading rebuilds heaps and indexes from scratch —
//! snapshots never contain dead tuples, mirroring how a restored database
//! starts compact.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use rls_types::{RlsError, RlsResult, Timestamp};

use crate::engine::Database;
use crate::value::{Row, Value, ValueType};

const MAGIC: &[u8; 8] = b"RLSSNAP1";

fn write_u32(w: &mut impl Write, v: u32) -> RlsResult<()> {
    w.write_all(&v.to_le_bytes())
        .map_err(|e| RlsError::storage(format!("snapshot write: {e}")))
}
fn write_u64(w: &mut impl Write, v: u64) -> RlsResult<()> {
    w.write_all(&v.to_le_bytes())
        .map_err(|e| RlsError::storage(format!("snapshot write: {e}")))
}
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> RlsResult<()> {
    r.read_exact(buf)
        .map_err(|e| RlsError::storage(format!("snapshot read: {e}")))
}
fn read_u32(r: &mut impl Read) -> RlsResult<u32> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64(r: &mut impl Read) -> RlsResult<u64> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_value(w: &mut impl Write, v: &Value) -> RlsResult<()> {
    match v {
        Value::Int(i) => {
            w.write_all(&[ValueType::Int as u8])
                .map_err(|e| RlsError::storage(e.to_string()))?;
            write_u64(w, *i as u64)
        }
        Value::Str(s) => {
            w.write_all(&[ValueType::Str as u8])
                .map_err(|e| RlsError::storage(e.to_string()))?;
            write_u32(w, s.len() as u32)?;
            w.write_all(s.as_bytes())
                .map_err(|e| RlsError::storage(e.to_string()))
        }
        Value::Float(f) => {
            w.write_all(&[ValueType::Float as u8])
                .map_err(|e| RlsError::storage(e.to_string()))?;
            write_u64(w, f.to_bits())
        }
        Value::Time(t) => {
            w.write_all(&[ValueType::Time as u8])
                .map_err(|e| RlsError::storage(e.to_string()))?;
            write_u64(w, t.as_micros())
        }
    }
}

fn read_value(r: &mut impl Read) -> RlsResult<Value> {
    let mut tag = [0u8; 1];
    read_exact(r, &mut tag)?;
    let tag = ValueType::from_u8(tag[0])
        .ok_or_else(|| RlsError::storage("snapshot: bad value tag"))?;
    Ok(match tag {
        ValueType::Int => Value::Int(read_u64(r)? as i64),
        ValueType::Str => {
            let len = read_u32(r)? as usize;
            let mut buf = vec![0u8; len];
            read_exact(r, &mut buf)?;
            let s = String::from_utf8(buf)
                .map_err(|_| RlsError::storage("snapshot: invalid utf-8"))?;
            Value::str(s)
        }
        ValueType::Float => Value::Float(f64::from_bits(read_u64(r)?)),
        ValueType::Time => Value::Time(Timestamp::from_unix_micros(read_u64(r)?)),
    })
}

/// Saves all live rows to `path` (atomically via temp + rename), syncs, and
/// truncates the WAL.
pub fn save(db: &mut Database, path: impl AsRef<Path>) -> RlsResult<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let file = File::create(&tmp)
            .map_err(|e| RlsError::storage(format!("snapshot create: {e}")))?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)
            .map_err(|e| RlsError::storage(e.to_string()))?;
        write_u32(&mut w, db.table_count() as u32)?;
        for table in db.tables() {
            write_u64(&mut w, table.len())?;
            for row in table.export_rows() {
                write_u32(&mut w, row.len() as u32)?;
                for v in row {
                    write_value(&mut w, v)?;
                }
            }
        }
        w.flush().map_err(|e| RlsError::storage(e.to_string()))?;
        w.get_ref()
            .sync_data()
            .map_err(|e| RlsError::storage(e.to_string()))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| RlsError::storage(format!("snapshot rename: {e}")))?;
    if let Some(wal) = db.wal_mut() {
        wal.truncate()?;
    }
    Ok(())
}

/// Loads a snapshot into a database whose schema is already registered.
/// Replaces all table contents. Returns the number of rows loaded.
pub fn load(db: &mut Database, path: impl AsRef<Path>) -> RlsResult<u64> {
    let file = OpenOptions::new()
        .read(true)
        .open(path.as_ref())
        .map_err(|e| RlsError::storage(format!("snapshot open: {e}")))?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    read_exact(&mut r, &mut magic)?;
    if &magic != MAGIC {
        return Err(RlsError::storage("snapshot: bad magic"));
    }
    let table_count = read_u32(&mut r)? as usize;
    if table_count != db.table_count() {
        return Err(RlsError::storage(format!(
            "snapshot has {table_count} tables, schema has {}",
            db.table_count()
        )));
    }
    let vendor = db.vendor();
    let mut loaded = 0u64;
    for ti in 0..table_count {
        let rows = read_u64(&mut r)?;
        let table = &mut db.tables_mut()[ti];
        table.clear();
        for _ in 0..rows {
            let arity = read_u32(&mut r)? as usize;
            if arity > 1_000 {
                return Err(RlsError::storage("snapshot: implausible row arity"));
            }
            let row: RlsResult<Row> = (0..arity).map(|_| read_value(&mut r)).collect();
            table.insert(vendor, row?)?;
            loaded += 1;
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BackendProfile;
    use crate::schema::{ColumnDef, IndexSpec, TableSchema};
    use crate::txn::Transaction;
    use crate::value::ValueType;

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
                ColumnDef::new("score", ValueType::Float),
                ColumnDef::new("at", ValueType::Time),
            ],
            vec![IndexSpec::unique_hash(0), IndexSpec::ordered(1)],
        )
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rls-snap-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir();
        let snap = dir.join("a.snap");
        let mut db = Database::in_memory(BackendProfile::default());
        let t0 = db.create_table(schema("t0"));
        let t1 = db.create_table(schema("t1"));
        let mut txn = Transaction::new();
        for i in 0..20 {
            db.txn_insert(
                &mut txn,
                t0,
                vec![
                    Value::Int(i),
                    Value::str(format!("row{i}")),
                    Value::Float(i as f64 / 2.0),
                    Value::Time(Timestamp::from_unix_secs(i as u64)),
                ],
            )
            .unwrap();
        }
        db.txn_insert(
            &mut txn,
            t1,
            vec![
                Value::Int(1),
                Value::str("only"),
                Value::Float(0.0),
                Value::Time(Timestamp::from_unix_secs(0)),
            ],
        )
        .unwrap();
        db.commit(txn).unwrap();
        save(&mut db, &snap).unwrap();

        let mut db2 = Database::in_memory(BackendProfile::default());
        let u0 = db2.create_table(schema("t0"));
        let u1 = db2.create_table(schema("t1"));
        let loaded = load(&mut db2, &snap).unwrap();
        assert_eq!(loaded, 21);
        assert_eq!(db2.table(u0).len(), 20);
        assert_eq!(db2.table(u1).len(), 1);
        // Indexes rebuilt: point lookup works.
        let hits: Vec<_> = db2.table(u0).index_lookup(0, &Value::Int(7)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1[1].as_str(), "row7");
    }

    #[test]
    fn load_rejects_table_count_mismatch() {
        let dir = tmpdir();
        let snap = dir.join("b.snap");
        let mut db = Database::in_memory(BackendProfile::default());
        db.create_table(schema("t0"));
        save(&mut db, &snap).unwrap();
        let mut db2 = Database::in_memory(BackendProfile::default());
        db2.create_table(schema("t0"));
        db2.create_table(schema("t1"));
        assert!(load(&mut db2, &snap).is_err());
    }

    #[test]
    fn load_rejects_bad_magic() {
        let dir = tmpdir();
        let snap = dir.join("c.snap");
        std::fs::write(&snap, b"NOTASNAPxxxx").unwrap();
        let mut db = Database::in_memory(BackendProfile::default());
        db.create_table(schema("t0"));
        assert!(load(&mut db, &snap).is_err());
    }

    #[test]
    fn snapshot_drops_dead_tuples() {
        let dir = tmpdir();
        let snap = dir.join("d.snap");
        let mut db = Database::in_memory(BackendProfile::postgres_buffered());
        let t = db.create_table(schema("t0"));
        let mut txn = Transaction::new();
        let id = db
            .txn_insert(
                &mut txn,
                t,
                vec![
                    Value::Int(1),
                    Value::str("x"),
                    Value::Float(0.0),
                    Value::Time(Timestamp::from_unix_secs(0)),
                ],
            )
            .unwrap();
        db.txn_delete(&mut txn, t, id).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.dead_tuples(), 1);
        save(&mut db, &snap).unwrap();
        let mut db2 = Database::in_memory(BackendProfile::postgres_buffered());
        let t2 = db2.create_table(schema("t0"));
        load(&mut db2, &snap).unwrap();
        assert_eq!(db2.dead_tuples(), 0);
        assert_eq!(db2.table(t2).heap_size(), 0);
    }
}
