//! The sharded LRC catalog: N independent [`LrcDatabase`] engines, routed
//! by LFN hash.
//!
//! The paper's LRC update rates (Fig. 6, Fig. 11) flatten once mutations
//! serialize on the catalog; after group commit (PR 4) and the worker pool
//! (PR 5) the remaining wall was the single `RwLock` around the whole
//! storage engine. This module removes it: the catalog is partitioned into
//! `shards` engines, each with its own WAL and group-commit queue, and
//! every operation takes only the owning shard's lock. Writers whose LFNs
//! hash to different shards proceed fully in parallel.
//!
//! Routing rules:
//!
//! * **LFN-keyed operations** (create/add/delete/query by logical name, and
//!   everything derived from an LFN, like its mappings and logical-object
//!   attribute values) go to `shard_of(lfn)` — a splitmix64-finalized FNV-1a
//!   hash modulo the shard count, the same mixer the Bloom filters use.
//! * **PFN-keyed and wildcard reads** fan out: each shard is consulted
//!   under its own read lock and the partial results are merged. A target
//!   name can be referenced by LFNs on several shards, so its rows (and
//!   target-object attribute values) legitimately exist on each of them.
//! * **Catalog-wide metadata** — attribute *definitions* — is broadcast to
//!   every shard (each shard validates values against its local defs) and
//!   listed from shard 0.
//! * **The RLI update list** (`t_rli`/`t_rlipartition`) lives on shard 0
//!   only, the "meta shard".
//!
//! Recovery opens each shard's WAL independently (`<wal_path>.s<i>` for
//! N > 1; exactly `wal_path` when N = 1, preserving old catalogs), so a
//! crash replays exactly the per-shard committed transactions. The shard
//! count of a durable catalog is part of its on-disk identity: reopening
//! with a different N would route names to the wrong shard.
//!
//! Lock discipline: methods that touch several shards acquire guards in
//! ascending shard order, and shard guards are always taken before the
//! service-level delta/Bloom mutexes. Single-shard operations hold exactly
//! one shard lock.

use std::path::PathBuf;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use rls_bloom::{fnv1a_64, splitmix64};
use rls_storage::{EngineStats, LrcDatabase, LrcStats, RliTarget};
use rls_types::{
    AttrCompare, AttrValue, AttributeDef, ErrorCode, Glob, LogicalName, Mapping, ObjectType,
    RlsError, RlsResult, TargetName,
};

use crate::config::LrcConfig;

/// The LFN-hash-partitioned catalog.
pub struct ShardedCatalog {
    shards: Box<[RwLock<LrcDatabase>]>,
}

impl std::fmt::Debug for ShardedCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Derives shard `i`'s WAL path from the configured base path.
fn shard_wal_path(base: &std::path::Path, i: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".s{i}"));
    PathBuf::from(os)
}

impl ShardedCatalog {
    /// Opens (or creates in memory) all shards, replaying each WAL.
    pub fn open(config: &LrcConfig) -> RlsResult<Self> {
        let n = config.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let db = match &config.wal_path {
                // One shard keeps the exact configured path so existing
                // durable catalogs reopen unchanged.
                Some(path) if n == 1 => LrcDatabase::open(config.profile, path)?,
                Some(path) => LrcDatabase::open(config.profile, shard_wal_path(path, i))?,
                None => LrcDatabase::in_memory(config.profile),
            };
            shards.push(RwLock::new(db));
        }
        Ok(Self {
            shards: shards.into_boxed_slice(),
        })
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a logical name.
    pub fn shard_of(&self, lfn: &str) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (splitmix64(fnv1a_64(lfn.as_bytes())) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard's lock (tests, benches, stats plumbing).
    pub fn shard(&self, i: usize) -> &RwLock<LrcDatabase> {
        &self.shards[i]
    }

    /// Shard 0 — home of the RLI update list and other singleton metadata.
    pub fn meta(&self) -> &RwLock<LrcDatabase> {
        &self.shards[0]
    }

    /// Read-locks the shard owning `lfn`.
    pub fn read_owner(&self, lfn: &str) -> (usize, RwLockReadGuard<'_, LrcDatabase>) {
        let i = self.shard_of(lfn);
        (i, self.shards[i].read())
    }

    /// Write-locks the shard owning `lfn`.
    pub fn write_owner(&self, lfn: &str) -> (usize, RwLockWriteGuard<'_, LrcDatabase>) {
        let i = self.shard_of(lfn);
        (i, self.shards[i].write())
    }

    /// Read guards for every shard, in ascending order — a consistent
    /// point-in-time view (used by Bloom regeneration).
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, LrcDatabase>> {
        self.shards.iter().map(|s| s.read()).collect()
    }

    /// Write guards for every shard, in ascending order (broadcast
    /// mutations: attribute definitions, target-object values).
    fn write_all(&self) -> Vec<RwLockWriteGuard<'_, LrcDatabase>> {
        self.shards.iter().map(|s| s.write()).collect()
    }

    // --- queries -----------------------------------------------------------

    /// Replicas of a logical name (owner shard only).
    pub fn query_lfn(&self, lfn: &str) -> RlsResult<Vec<TargetName>> {
        self.read_owner(lfn).1.query_lfn(lfn)
    }

    /// Logical names mapped to a target (fan-out: the target's rows may
    /// exist on every shard whose LFNs reference it).
    pub fn query_pfn(&self, pfn: &str) -> RlsResult<Vec<LogicalName>> {
        let mut out = Vec::new();
        let mut first_err = None;
        for shard in self.shards.iter() {
            match shard.read().query_pfn(pfn) {
                Ok(mut names) => out.append(&mut names),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if out.is_empty() {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(out)
    }

    /// Wildcard query over logical names, fanned out up to `limit`.
    pub fn wildcard_query_lfn(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<Mapping>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let remaining = limit.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            out.append(&mut shard.read().wildcard_query_lfn(glob, remaining)?);
        }
        Ok(out)
    }

    /// Wildcard query over target names, fanned out up to `limit`.
    pub fn wildcard_query_pfn(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<Mapping>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let remaining = limit.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            out.append(&mut shard.read().wildcard_query_pfn(glob, remaining)?);
        }
        Ok(out)
    }

    /// True if the logical name is registered (owner shard).
    pub fn lfn_exists(&self, lfn: &str) -> bool {
        self.read_owner(lfn).1.lfn_exists(lfn)
    }

    /// True if the exact mapping is registered (owner shard).
    pub fn mapping_exists(&self, m: &Mapping) -> bool {
        self.read_owner(m.logical.as_str()).1.mapping_exists(m)
    }

    /// Registered logical names, summed across shards.
    pub fn lfn_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().lfn_count()).sum()
    }

    /// Mappings, summed across shards.
    pub fn mapping_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().mapping_count()).sum()
    }

    /// All logical names. Within a shard the names come back in index
    /// order; across shards the concatenation is unordered — sort if the
    /// caller needs a canonical sequence.
    pub fn all_lfns(&self) -> Vec<std::sync::Arc<str>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.append(&mut shard.read().all_lfns());
        }
        out
    }

    /// Visits every logical name, shard by shard, without materializing
    /// the list. Each shard is read-locked only for its own scan, so a
    /// long enumeration (a full soft-state update) never blocks writers on
    /// the other shards.
    pub fn for_each_lfn(&self, mut f: impl FnMut(&str)) {
        for shard in self.shards.iter() {
            shard.read().for_each_lfn(&mut f);
        }
    }

    /// Operation counters, accumulated across shards. Broadcast operations
    /// (attribute definitions, target-object values) count once per shard
    /// they touched.
    pub fn stats(&self) -> LrcStats {
        let mut total = LrcStats::default();
        for shard in self.shards.iter() {
            total.accumulate(&shard.read().stats());
        }
        total
    }

    /// Engine counters, accumulated across shards.
    pub fn engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for shard in self.shards.iter() {
            total.accumulate(&shard.read().engine().stats());
        }
        total
    }

    /// Mapping counts per shard (the skew diagnostic behind the
    /// `storage.shard.imbalance_ppm` gauge).
    pub fn per_shard_mapping_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.read().mapping_count()).collect()
    }

    /// Dead tuples across all shard engines (Fig. 8 vacuum probe).
    pub fn dead_tuples(&self) -> u64 {
        self.shards.iter().map(|s| s.read().engine().dead_tuples()).sum()
    }

    /// Runs VACUUM shard by shard; returns tuples reclaimed.
    pub fn vacuum(&self) -> RlsResult<u64> {
        let mut total = 0;
        for shard in self.shards.iter() {
            total += shard.write().vacuum()?;
        }
        Ok(total)
    }

    // --- attribute routing -------------------------------------------------

    /// Defines an attribute on every shard (each shard validates values
    /// against its local definition table). All shard locks are held for
    /// the broadcast so the definition appears atomically.
    pub fn define_attribute(&self, def: &AttributeDef) -> RlsResult<()> {
        let mut guards = self.write_all();
        // Validate against shard 0 first so a duplicate definition errors
        // before any shard mutates.
        if guards[0]
            .list_attribute_defs(Some(def.object_type))
            .iter()
            .any(|d| d.name == def.name)
        {
            return Err(RlsError::new(
                ErrorCode::AttributeExists,
                format!("attribute {:?} already defined", def.name),
            ));
        }
        for g in guards.iter_mut() {
            g.define_attribute(def)?;
        }
        Ok(())
    }

    /// Removes an attribute definition from every shard. Without
    /// `clear_values`, fails if *any* shard still holds values — checked
    /// up front under all shard locks so no shard drops the definition
    /// while another keeps it.
    pub fn undefine_attribute(
        &self,
        name: &str,
        objtype: ObjectType,
        clear_values: bool,
    ) -> RlsResult<()> {
        let mut guards = self.write_all();
        if !guards[0]
            .list_attribute_defs(Some(objtype))
            .iter()
            .any(|d| d.name == name)
        {
            return Err(RlsError::new(
                ErrorCode::AttributeNotFound,
                format!("attribute {name:?} not defined"),
            ));
        }
        if !clear_values {
            let mut values = 0;
            for g in guards.iter() {
                values += g
                    .search_attribute(name, objtype, AttrCompare::All, None)
                    .map(|v| v.len())
                    .unwrap_or(0);
            }
            if values > 0 {
                return Err(RlsError::new(
                    ErrorCode::AttributeValueExists,
                    format!("attribute {name:?} still has {values} values"),
                ));
            }
        }
        for g in guards.iter_mut() {
            g.undefine_attribute(name, objtype, true)?;
        }
        Ok(())
    }

    /// Attribute definitions (read from shard 0; definitions are
    /// broadcast-identical on every shard).
    pub fn list_attribute_defs(&self, objtype: Option<ObjectType>) -> Vec<AttributeDef> {
        self.meta().read().list_attribute_defs(objtype)
    }

    /// Routes one attribute mutation: logical objects to the owner shard;
    /// target objects to every shard holding the target's row (the write
    /// succeeds if at least one shard accepted it, mirroring how target
    /// rows are themselves distributed).
    fn route_attr_write(
        &self,
        obj: &str,
        objtype: ObjectType,
        f: impl Fn(&mut LrcDatabase) -> RlsResult<()>,
    ) -> RlsResult<()> {
        match objtype {
            ObjectType::Logical => f(&mut self.write_owner(obj).1),
            ObjectType::Target => {
                let mut guards = self.write_all();
                let mut first_err = None;
                let mut any_ok = false;
                for g in guards.iter_mut() {
                    match f(g) {
                        Ok(()) => any_ok = true,
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if any_ok {
                    Ok(())
                } else {
                    Err(first_err.expect("at least one shard"))
                }
            }
        }
    }

    /// Attaches an attribute value (routed; see `route_attr_write`).
    pub fn add_attribute(
        &self,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        self.route_attr_write(obj, objtype, |db| {
            db.add_attribute(obj, objtype, attr_name, value)
        })
    }

    /// Replaces an attribute value (routed).
    pub fn modify_attribute(
        &self,
        obj: &str,
        objtype: ObjectType,
        attr_name: &str,
        value: &AttrValue,
    ) -> RlsResult<()> {
        self.route_attr_write(obj, objtype, |db| {
            db.modify_attribute(obj, objtype, attr_name, value)
        })
    }

    /// Detaches an attribute value (routed).
    pub fn remove_attribute(&self, obj: &str, objtype: ObjectType, attr_name: &str) -> RlsResult<()> {
        self.route_attr_write(obj, objtype, |db| db.remove_attribute(obj, objtype, attr_name))
    }

    /// Attribute values on an object. Logical objects read their owner
    /// shard; target objects fan out and deduplicate by attribute name
    /// (every shard holding the target's row stores the same values).
    pub fn get_attributes(
        &self,
        obj: &str,
        objtype: ObjectType,
        name_filter: Option<&str>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        match objtype {
            ObjectType::Logical => self.read_owner(obj).1.get_attributes(obj, objtype, name_filter),
            ObjectType::Target => {
                let mut out: Vec<(String, AttrValue)> = Vec::new();
                let mut first_err = None;
                let mut any_ok = false;
                for shard in self.shards.iter() {
                    match shard.read().get_attributes(obj, objtype, name_filter) {
                        Ok(vals) => {
                            any_ok = true;
                            for (name, value) in vals {
                                if !out.iter().any(|(n, _)| *n == name) {
                                    out.push((name, value));
                                }
                            }
                        }
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if any_ok {
                    Ok(out)
                } else {
                    Err(first_err.expect("at least one shard"))
                }
            }
        }
    }

    /// Attribute search, fanned out across shards. Logical results are
    /// disjoint by construction (each LFN lives on one shard); target
    /// results deduplicate by object name.
    pub fn search_attribute(
        &self,
        attr_name: &str,
        objtype: ObjectType,
        op: AttrCompare,
        operand: Option<&AttrValue>,
    ) -> RlsResult<Vec<(String, AttrValue)>> {
        let mut out: Vec<(String, AttrValue)> = Vec::new();
        for shard in self.shards.iter() {
            // Definitions are broadcast, so a def/type error from one shard
            // would come from every shard: propagate immediately.
            let vals = shard.read().search_attribute(attr_name, objtype, op, operand)?;
            match objtype {
                ObjectType::Logical => out.extend(vals),
                ObjectType::Target => {
                    for (name, value) in vals {
                        if !out.iter().any(|(n, _)| *n == name) {
                            out.push((name, value));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    // --- RLI update list (meta shard) --------------------------------------

    /// Adds an RLI to the update list (meta shard).
    pub fn add_rli(&self, name: &str, flags: i64, patterns: &[String]) -> RlsResult<()> {
        self.meta().write().add_rli(name, flags, patterns)
    }

    /// Removes an RLI from the update list (meta shard).
    pub fn remove_rli(&self, name: &str) -> RlsResult<()> {
        self.meta().write().remove_rli(name)
    }

    /// The RLIs this LRC updates (meta shard).
    pub fn list_rlis(&self) -> Vec<RliTarget> {
        self.meta().read().list_rlis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_types::AttrValueType;

    fn catalog(n: usize) -> ShardedCatalog {
        ShardedCatalog::open(&LrcConfig {
            shards: n,
            ..Default::default()
        })
        .unwrap()
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_single_shard_is_identity() {
        let c = catalog(4);
        for i in 0..64 {
            let lfn = format!("lfn://route/{i}");
            let s = c.shard_of(&lfn);
            assert!(s < 4);
            assert_eq!(s, c.shard_of(&lfn), "routing must be stable");
        }
        let one = catalog(1);
        for i in 0..64 {
            assert_eq!(one.shard_of(&format!("lfn://route/{i}")), 0);
        }
        // Zero is clamped to one shard rather than panicking on modulo.
        assert_eq!(catalog(0).shard_count(), 1);
    }

    #[test]
    fn names_spread_across_shards() {
        let c = catalog(4);
        let mut seen = [false; 4];
        for i in 0..256 {
            seen[c.shard_of(&format!("lfn://spread/{i}"))] = true;
        }
        assert_eq!(seen, [true; 4], "256 names must hit all 4 shards");
    }

    #[test]
    fn fanout_reads_merge_across_shards() {
        let c = catalog(4);
        // One shared target referenced by many LFNs lands its row on
        // several shards; query_pfn must see every logical name.
        for i in 0..32 {
            let lfn = format!("lfn://fan/{i}");
            c.write_owner(&lfn)
                .1
                .create_mapping(&m(&lfn, "pfn://shared/target"))
                .unwrap();
        }
        assert_eq!(c.lfn_count(), 32);
        assert_eq!(c.mapping_count(), 32);
        let logicals = c.query_pfn("pfn://shared/target").unwrap();
        assert_eq!(logicals.len(), 32);
        let glob = Glob::new("lfn://fan/*").unwrap();
        assert_eq!(c.wildcard_query_lfn(&glob, 1000).unwrap().len(), 32);
        assert_eq!(c.wildcard_query_lfn(&glob, 5).unwrap().len(), 5);
        let all = c.all_lfns();
        assert_eq!(all.len(), 32);
        let mut visited = 0;
        c.for_each_lfn(|_| visited += 1);
        assert_eq!(visited, 32);
        // Unknown PFN surfaces the per-shard error, not an empty Ok.
        let err = c.query_pfn("pfn://nowhere").unwrap_err();
        assert_eq!(err.code(), ErrorCode::TargetNameNotFound);
    }

    #[test]
    fn attribute_defs_broadcast_and_values_route() {
        let c = catalog(4);
        for i in 0..16 {
            let lfn = format!("lfn://attr/{i}");
            c.write_owner(&lfn)
                .1
                .create_mapping(&m(&lfn, "pfn://attr/shared"))
                .unwrap();
        }
        let def = AttributeDef {
            name: "size".into(),
            object_type: ObjectType::Logical,
            value_type: AttrValueType::Int,
        };
        c.define_attribute(&def).unwrap();
        assert_eq!(
            c.define_attribute(&def).unwrap_err().code(),
            ErrorCode::AttributeExists
        );
        // Every shard accepted the definition: any LFN can take a value.
        for i in 0..16 {
            c.add_attribute(
                &format!("lfn://attr/{i}"),
                ObjectType::Logical,
                "size",
                &AttrValue::Int(i),
            )
            .unwrap();
        }
        let hits = c
            .search_attribute("size", ObjectType::Logical, AttrCompare::All, None)
            .unwrap();
        assert_eq!(hits.len(), 16);
        // Target-object values: stored wherever the target row lives,
        // deduplicated on read.
        let tdef = AttributeDef {
            name: "site".into(),
            object_type: ObjectType::Target,
            value_type: AttrValueType::Str,
        };
        c.define_attribute(&tdef).unwrap();
        c.add_attribute(
            "pfn://attr/shared",
            ObjectType::Target,
            "site",
            &AttrValue::Str("isi".into()),
        )
        .unwrap();
        let got = c
            .get_attributes("pfn://attr/shared", ObjectType::Target, None)
            .unwrap();
        assert_eq!(got.len(), 1);
        let found = c
            .search_attribute("site", ObjectType::Target, AttrCompare::All, None)
            .unwrap();
        assert_eq!(found.len(), 1, "target hits must deduplicate: {found:?}");
        // Undefine without clear fails while values exist, on any shard.
        assert_eq!(
            c.undefine_attribute("site", ObjectType::Target, false)
                .unwrap_err()
                .code(),
            ErrorCode::AttributeValueExists
        );
        c.undefine_attribute("site", ObjectType::Target, true).unwrap();
        assert!(c
            .list_attribute_defs(Some(ObjectType::Target))
            .is_empty());
    }

    #[test]
    fn rli_list_lives_on_meta_shard() {
        let c = catalog(4);
        c.add_rli("rli.example:39281", 0, &[]).unwrap();
        assert_eq!(c.list_rlis().len(), 1);
        assert_eq!(c.meta().read().list_rlis().len(), 1);
        for i in 1..4 {
            assert!(c.shard(i).read().list_rlis().is_empty());
        }
        c.remove_rli("rli.example:39281").unwrap();
        assert!(c.list_rlis().is_empty());
    }

    #[test]
    fn per_shard_wals_reopen_independently() {
        let dir = std::env::temp_dir().join(format!("rls-shardcat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("cat.wal");
        for i in 0..4 {
            let _ = std::fs::remove_file(shard_wal_path(&wal, i));
        }
        let cfg = LrcConfig {
            wal_path: Some(wal.clone()),
            shards: 4,
            ..Default::default()
        };
        let names: Vec<String> = (0..24).map(|i| format!("lfn://wal/{i}")).collect();
        {
            let c = ShardedCatalog::open(&cfg).unwrap();
            for n in &names {
                c.write_owner(n).1.create_mapping(&m(n, "pfn://w")).unwrap();
            }
        }
        // Every shard got at least one WAL file of its own.
        for i in 0..4 {
            assert!(
                shard_wal_path(&wal, i).exists(),
                "missing WAL for shard {i}"
            );
        }
        let c = ShardedCatalog::open(&cfg).unwrap();
        assert_eq!(c.lfn_count(), 24);
        for n in &names {
            assert!(c.lfn_exists(n), "lost {n} across reopen");
        }
        for i in 0..4 {
            let _ = std::fs::remove_file(shard_wal_path(&wal, i));
        }
    }
}
