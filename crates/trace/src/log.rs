//! Leveled structured logging.
//!
//! One process-wide [`Logger`] (see [`global`]) renders `key=value` lines —
//! or JSON objects in [`LogFormat::Json`] mode — to stderr. The default
//! level is [`Level::Warn`], so servers spawned inside tests are silent
//! unless something is actually wrong; `rls-server` raises the level and
//! picks the format from its config file.
//!
//! Call sites use the macros exported at the crate root:
//!
//! ```
//! rls_trace::info!("server", "listening", addr = "127.0.0.1:39281", lrc = true);
//! rls_trace::warn!("dispatch", "slow op", op = "op.add", trace = 0x9f3au64);
//! ```

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "err" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?} (error|warn|info|debug|trace)")),
        }
    }
}

/// Output encoding for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum LogFormat {
    /// `ts=... level=info component=server msg="..." key=value ...`
    #[default]
    Text = 0,
    /// One JSON object per line, all values rendered as strings.
    Json = 1,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "kv" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (text|json)")),
        }
    }
}

enum Sink {
    Stderr,
    /// Test hook: lines are appended to the shared buffer instead.
    Buffer(Arc<Mutex<Vec<u8>>>),
}

/// A leveled structured logger. Most code uses the process-wide [`global`]
/// instance through the crate's macros; separate instances exist so tests
/// can capture output without races.
pub struct Logger {
    level: AtomicU8,
    format: AtomicU8,
    sink: Mutex<Sink>,
}

impl Logger {
    /// A logger at [`Level::Warn`] / [`LogFormat::Text`] writing to stderr.
    pub const fn new() -> Logger {
        Logger {
            level: AtomicU8::new(Level::Warn as u8),
            format: AtomicU8::new(LogFormat::Text as u8),
            sink: Mutex::new(Sink::Stderr),
        }
    }

    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    pub fn format(&self) -> LogFormat {
        if self.format.load(Ordering::Relaxed) == LogFormat::Json as u8 {
            LogFormat::Json
        } else {
            LogFormat::Text
        }
    }

    pub fn set_format(&self, format: LogFormat) {
        self.format.store(format as u8, Ordering::Relaxed);
    }

    /// True when a message at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level()
    }

    /// Redirects output to an in-memory buffer and returns it (test hook).
    pub fn capture(&self) -> Arc<Mutex<Vec<u8>>> {
        let buf = Arc::new(Mutex::new(Vec::new()));
        *self.sink.lock().unwrap() = Sink::Buffer(Arc::clone(&buf));
        buf
    }

    /// Emits one structured line. Prefer the crate macros, which check
    /// [`Logger::enabled`] before evaluating field expressions.
    pub fn log(&self, level: Level, component: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let line = match self.format() {
            LogFormat::Text => render_text(ts, level, component, msg, fields),
            LogFormat::Json => render_json(ts, level, component, msg, fields),
        };
        match &*self.sink.lock().unwrap() {
            Sink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            Sink::Buffer(buf) => {
                let mut buf = buf.lock().unwrap();
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }
}

impl Default for Logger {
    fn default() -> Logger {
        Logger::new()
    }
}

static GLOBAL: Logger = Logger::new();

/// The process-wide logger used by the crate macros.
pub fn global() -> &'static Logger {
    &GLOBAL
}

fn is_bare(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'/' | b'@' | b'+' | b'-')
        })
}

fn text_value(s: &str) -> String {
    if is_bare(s) {
        s.to_owned()
    } else {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

fn render_text(
    ts: u64,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, &dyn fmt::Display)],
) -> String {
    let mut line = format!(
        "ts={ts} level={level} component={} msg={}",
        text_value(component),
        text_value(msg)
    );
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&text_value(&value.to_string()));
    }
    line
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_json(
    ts: u64,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, &dyn fmt::Display)],
) -> String {
    let mut line = format!(
        "{{\"ts\":{ts},\"level\":{},\"component\":{},\"msg\":{}",
        json_string(level.as_str()),
        json_string(component),
        json_string(msg)
    );
    for (key, value) in fields {
        line.push(',');
        line.push_str(&json_string(key));
        line.push(':');
        line.push_str(&json_string(&value.to_string()));
    }
    line.push('}');
    line
}

/// Core logging macro: `log_event!(level, component, msg, key = value, ...)`.
/// Field expressions are only evaluated when the level is enabled.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $component:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let logger = $crate::global();
        if logger.enabled($level) {
            logger.log(
                $level,
                $component,
                $msg,
                &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
            );
        }
    }};
}

/// `error!(component, msg, key = value, ...)` via the global logger.
#[macro_export]
macro_rules! error {
    ($($args:tt)*) => { $crate::log_event!($crate::Level::Error, $($args)*) };
}

/// `warn!(component, msg, key = value, ...)` via the global logger.
#[macro_export]
macro_rules! warn {
    ($($args:tt)*) => { $crate::log_event!($crate::Level::Warn, $($args)*) };
}

/// `info!(component, msg, key = value, ...)` via the global logger.
#[macro_export]
macro_rules! info {
    ($($args:tt)*) => { $crate::log_event!($crate::Level::Info, $($args)*) };
}

/// `debug!(component, msg, key = value, ...)` via the global logger.
#[macro_export]
macro_rules! debug {
    ($($args:tt)*) => { $crate::log_event!($crate::Level::Debug, $($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        let mut buf = buf.lock().unwrap();
        let s = String::from_utf8(buf.clone()).unwrap();
        buf.clear();
        s
    }

    #[test]
    fn text_format_quotes_only_when_needed() {
        let logger = Logger::new();
        logger.set_level(Level::Info);
        let buf = logger.capture();
        logger.log(
            Level::Info,
            "server",
            "listening now",
            &[("addr", &"127.0.0.1:39281"), ("note", &"has \"quotes\"")],
        );
        let line = drain(&buf);
        assert!(line.starts_with("ts="));
        assert!(line.contains("level=info"));
        assert!(line.contains("component=server"));
        assert!(line.contains("msg=\"listening now\""));
        assert!(line.contains("addr=127.0.0.1:39281"));
        assert!(line.contains("note=\"has \\\"quotes\\\"\""));
    }

    #[test]
    fn json_format_escapes() {
        let logger = Logger::new();
        logger.set_level(Level::Debug);
        logger.set_format(LogFormat::Json);
        let buf = logger.capture();
        logger.log(Level::Debug, "net", "line\nbreak", &[("n", &42u64)]);
        let line = drain(&buf);
        assert!(line.contains("\"level\":\"debug\""));
        assert!(line.contains("\"msg\":\"line\\nbreak\""));
        assert!(line.contains("\"n\":\"42\""));
        assert!(line.trim_end().ends_with('}'));
    }

    #[test]
    fn level_gating_suppresses() {
        let logger = Logger::new(); // default Warn
        let buf = logger.capture();
        logger.log(Level::Info, "server", "hidden", &[]);
        logger.log(Level::Warn, "server", "shown", &[]);
        let out = drain(&buf);
        assert!(!out.contains("hidden"));
        assert!(out.contains("shown"));
        assert!(logger.enabled(Level::Error));
        assert!(!logger.enabled(Level::Trace));
    }

    #[test]
    fn levels_and_formats_parse() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("ERROR".parse::<Level>().unwrap(), Level::Error);
        assert_eq!("trace".parse::<Level>().unwrap(), Level::Trace);
        assert!("loud".parse::<Level>().is_err());
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert!("xml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn global_macros_reach_global_logger() {
        // The global logger defaults to Warn; error! must pass through it.
        let buf = crate::global().capture();
        crate::error!("test", "global macro", code = 7);
        crate::info!("test", "suppressed by default");
        let out = drain(&buf);
        assert!(out.contains("msg=\"global macro\""));
        assert!(out.contains("code=7"));
        assert!(!out.contains("suppressed"));
    }
}
