/root/repo/target/release/deps/fig11_bulk_ops-0672f740739bb2ff.d: crates/bench/benches/fig11_bulk_ops.rs

/root/repo/target/release/deps/fig11_bulk_ops-0672f740739bb2ff: crates/bench/benches/fig11_bulk_ops.rs

crates/bench/benches/fig11_bulk_ops.rs:
