/root/repo/target/debug/deps/rls_cli-5411f0e398eef106.d: src/bin/rls-cli.rs Cargo.toml

/root/repo/target/debug/deps/librls_cli-5411f0e398eef106.rmeta: src/bin/rls-cli.rs Cargo.toml

src/bin/rls-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
