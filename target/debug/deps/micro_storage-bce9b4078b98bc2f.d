/root/repo/target/debug/deps/micro_storage-bce9b4078b98bc2f.d: crates/bench/benches/micro_storage.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_storage-bce9b4078b98bc2f.rmeta: crates/bench/benches/micro_storage.rs Cargo.toml

crates/bench/benches/micro_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
