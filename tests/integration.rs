//! Workspace-level integration tests: scenarios spanning the full stack
//! through the `rls` facade crate.

use std::time::Duration;

use rls::core::testkit::TestDeployment;
use rls::core::{LrcConfig, RlsClient, Server, ServerConfig, UpdateConfig};
use rls::net::LinkProfile;
use rls::storage::BackendProfile;
use rls::types::{Dn, ErrorCode};

fn anon() -> Dn {
    Dn::anonymous()
}

/// The paper's robustness note (§3.2): a Bloom-mode RLI may return a false
/// positive; the client must recover by trying the next replica source.
#[test]
fn client_recovers_from_bloom_false_positive() {
    let dep = TestDeployment::builder()
        .lrcs(2)
        .rlis(1)
        .bloom(true)
        .build()
        .unwrap();
    let mut c0 = dep.lrc_client(0).unwrap();
    let mut c1 = dep.lrc_client(1).unwrap();
    // Both LRCs hold disjoint sets; fill enough to make *some* false
    // positive plausible, but verify the recovery protocol regardless by
    // walking all hits.
    for i in 0..2_000u64 {
        c0.create_mapping(&format!("lfn://fp/a/{i}"), &format!("pfn://a/{i}"))
            .unwrap();
        c1.create_mapping(&format!("lfn://fp/b/{i}"), &format!("pfn://b/{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    // Query names held by LRC 0 and resolve through whatever hits the RLI
    // returns; the recovery loop must always land on a real replica.
    let addr_of = |name: &str| {
        if name == "lrc-0" {
            dep.lrcs[0].addr()
        } else {
            dep.lrcs[1].addr()
        }
    };
    for i in (0..2_000u64).step_by(97) {
        let lfn = format!("lfn://fp/a/{i}");
        let hits = rli.rli_query_lfn(&lfn).unwrap();
        assert!(!hits.is_empty(), "no false negatives allowed");
        let mut found = false;
        for hit in hits {
            let mut lrc = RlsClient::connect(addr_of(&hit.lrc), &anon()).unwrap();
            match lrc.query_lfn(&lfn) {
                Ok(replicas) => {
                    assert!(!replicas.is_empty());
                    found = true;
                    break;
                }
                // False positive: this LRC doesn't actually have it; the
                // application queries the next candidate (paper §3.2).
                Err(e) => assert_eq!(e.code(), ErrorCode::LogicalNameNotFound),
            }
        }
        assert!(found, "{lfn} must resolve through some LRC");
    }
}

/// Durable LRC: a server restart (new process lifecycle simulated by
/// dropping and restarting) recovers the catalog from its WAL.
#[test]
fn server_restart_recovers_catalog_from_wal() {
    let dir = std::env::temp_dir().join(format!("rls-int-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("restart.wal");
    let _ = std::fs::remove_file(&wal);
    let config = |name: &str| ServerConfig {
        name: name.to_owned(),
        lrc: Some(LrcConfig {
            profile: BackendProfile::mysql_durable(),
            wal_path: Some(wal.clone()),
            update: UpdateConfig::default(),
            ..Default::default()
        }),
        ..ServerConfig::default()
    };
    {
        let server = Server::start(config("restart-a")).unwrap();
        let mut c = RlsClient::connect(server.addr(), &anon()).unwrap();
        for i in 0..200 {
            c.create_mapping(&format!("lfn://restart/{i}"), &format!("pfn://r/{i}"))
                .unwrap();
        }
        c.delete_mapping("lfn://restart/0", "pfn://r/0").unwrap();
        server.shutdown();
    }
    let server = Server::start(config("restart-b")).unwrap();
    let mut c = RlsClient::connect(server.addr(), &anon()).unwrap();
    assert_eq!(c.stats().unwrap().lrc_lfn_count, 199);
    assert_eq!(c.query_lfn("lfn://restart/42").unwrap().len(), 1);
    assert!(c.query_lfn("lfn://restart/0").is_err());
    // And the recovered catalog accepts new writes without id collisions.
    c.create_mapping("lfn://restart/new", "pfn://r/new").unwrap();
    assert_eq!(c.query_lfn("lfn://restart/new").unwrap().len(), 1);
}

/// An RLI that dies loses only soft state: after a restart, the next
/// update cycle fully reconstructs it (the paper's §2 argument for soft
/// state: "If an RLI fails and later resumes operation, its state can be
/// reconstructed using soft state updates").
#[test]
fn rli_state_reconstructs_after_loss() {
    let dep = TestDeployment::builder().lrcs(2).rlis(1).build().unwrap();
    let mut c0 = dep.lrc_client(0).unwrap();
    c0.create_mapping("lfn://soft/x", "pfn://x").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    // Simulate RLI state loss: expire everything immediately.
    let rli_service = dep.rlis[0].rli().unwrap();
    rli_service
        .expire_with_timeout(rls::types::Timestamp::now(), Duration::ZERO)
        .unwrap();
    let mut rli = dep.rli_client(0).unwrap();
    assert!(rli.rli_query_lfn("lfn://soft/x").is_err());
    // The next soft-state cycle reconstructs the index.
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli.rli_query_lfn("lfn://soft/x").unwrap().len(), 1);
}

/// A WAN-shaped client sees RTT-dominated latency but correct results.
#[test]
fn wan_shaped_client_round_trip() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut local = dep.lrc_client(0).unwrap();
    local.create_mapping("lfn://wan/a", "pfn://a").unwrap();
    let wan = LinkProfile {
        rtt: Duration::from_millis(30),
        bandwidth_bps: None,
    };
    let mut remote =
        RlsClient::connect_shaped(dep.lrcs[0].addr(), &anon(), wan, None).unwrap();
    let t0 = std::time::Instant::now();
    let targets = remote.query_lfn("lfn://wan/a").unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(targets, vec!["pfn://a"]);
    assert!(elapsed >= Duration::from_millis(28), "RTT not applied: {elapsed:?}");
}

/// Mixed update modes against one RLI: one LRC sends uncompressed updates,
/// another Bloom filters; queries merge both stores.
#[test]
fn mixed_mode_updates_merge_at_the_rli() {
    use rls::core::Updater;
    use std::sync::Arc;
    let dep = TestDeployment::builder().lrcs(2).rlis(1).build().unwrap();
    let mut c0 = dep.lrc_client(0).unwrap();
    let mut c1 = dep.lrc_client(1).unwrap();
    c0.create_mapping("lfn://mixed/shared", "pfn://0").unwrap();
    c1.create_mapping("lfn://mixed/shared", "pfn://1").unwrap();

    // LRC 0 sends a full (uncompressed) update through the normal cycle.
    for o in dep.lrcs[0].run_update_cycle().unwrap() {
        o.unwrap();
    }
    // LRC 1 sends a Bloom filter explicitly.
    let lrc1 = dep.lrcs[1].lrc().unwrap();
    let mut updater = Updater::new(
        dep.lrcs[1].name().to_owned(),
        anon(),
        Arc::clone(lrc1),
        &UpdateConfig::default(),
    );
    let target = rls::storage::RliTarget {
        name: dep.rlis[0].addr().to_string(),
        flags: rls::core::FLAG_BLOOM,
        patterns: vec![],
    };
    updater.send_bloom(&target).unwrap();

    let mut rli = dep.rli_client(0).unwrap();
    let mut hits = rli.rli_query_lfn("lfn://mixed/shared").unwrap();
    hits.sort_by(|a, b| a.lrc.cmp(&b.lrc));
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].lrc, "lrc-0");
    assert_eq!(hits[1].lrc, "lrc-1");
    // Stats see one relational association and one Bloom filter.
    let stats = rli.stats().unwrap();
    assert_eq!(stats.rli_association_count, 1);
    assert_eq!(stats.rli_bloom_filters, 1);
}

/// End-to-end observability: operations against a live server populate the
/// per-op latency histograms and labeled counters returned by `stats`, and
/// the operator report renders their quantiles.
#[test]
fn stats_expose_latency_histograms_end_to_end() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..20 {
        c.create_mapping(&format!("lfn://obs/{i}"), &format!("pfn://obs/{i}"))
            .unwrap();
    }
    for i in 0..20 {
        assert_eq!(c.query_lfn(&format!("lfn://obs/{i}")).unwrap().len(), 1);
    }
    for o in dep.force_updates() {
        o.unwrap();
    }

    let stats = c.stats().unwrap();
    let hist = |name: &str| {
        stats
            .op_latencies
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| *h)
            .unwrap_or_else(|| panic!("missing histogram {name}"))
    };
    let create = hist("op.create");
    assert_eq!(create.count, 20);
    assert!(create.p50() <= create.p99());
    assert!(create.p99() <= create.max_micros.max(1));
    assert_eq!(hist("op.query_lfn").count, 20);
    // Storage-layer timing rides along with the dispatch histograms.
    assert_eq!(hist("storage.query_lfn").count, 20);
    // Wire-traffic counters move: each request is at least one frame.
    let counter = |name: &str| {
        stats
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert!(counter("net.bytes_in") > 0);
    assert!(counter("net.frames_out") >= 41); // hello ack + 40 responses + stats
    assert!(counter("lrc.engine.inserts") >= 20);

    // The RLI side records soft-state application metrics.
    let mut r = dep.rli_client(0).unwrap();
    let rstats = r.stats().unwrap();
    assert!(
        rstats
            .op_latencies
            .iter()
            .any(|(n, h)| n.starts_with("rli.apply") && !h.is_empty()),
        "RLI must record update application timings"
    );

    // And the report renders the lot for `rls-cli stats`.
    let report = rls::core::format_stats_report(&stats);
    assert!(report.contains("operation latencies"));
    assert!(report.contains("op.create"));
    assert!(report.contains("net.bytes_in"));
}

/// Zipf-skewed query workloads hammer hot names without erroring — the
/// popular-dataset pattern real catalogs see.
#[test]
fn zipf_skewed_queries_end_to_end() {
    use parking_lot::Mutex;
    use rls::workload::{drive, preload_lrc, NameGen, ZipfPick};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let gen = NameGen::new("zipf");
    preload_lrc(&dep.lrcs[0], &gen, 2_000).unwrap();
    let picks: Vec<Mutex<ZipfPick>> = (0..4)
        .map(|t| Mutex::new(ZipfPick::new(2_000, 1.0, t)))
        .collect();
    let report = drive(
        dep.lrcs[0].addr(),
        LinkProfile::unshaped(),
        None,
        4,
        200,
        |c, t, _| {
            let idx = picks[t].lock().next_index();
            c.query_lfn(&gen.lfn(idx)).map(|_| ())
        },
    )
    .unwrap();
    assert_eq!(report.ops, 800);
    assert_eq!(report.errors, 0);
}

/// The workload driver measures sane rates against a live deployment.
#[test]
fn workload_driver_end_to_end() {
    use rls::workload::{drive, preload_lrc, NameGen};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let gen = NameGen::new("wl");
    preload_lrc(&dep.lrcs[0], &gen, 1_000).unwrap();
    let report = drive(
        dep.lrcs[0].addr(),
        LinkProfile::unshaped(),
        None,
        4,
        100,
        |c, t, i| {
            let idx = ((t * 131 + i) as u64) % 1_000;
            c.query_lfn(&gen.lfn(idx)).map(|_| ())
        },
    )
    .unwrap();
    assert_eq!(report.ops, 400);
    assert_eq!(report.errors, 0);
    assert!(report.rate() > 100.0, "rate={}", report.rate());
}
