/root/repo/target/debug/deps/rls_metrics-602056eb95aa4069.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/librls_metrics-602056eb95aa4069.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
