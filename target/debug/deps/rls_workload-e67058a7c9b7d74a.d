/root/repo/target/debug/deps/rls_workload-e67058a7c9b7d74a.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-e67058a7c9b7d74a.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-e67058a7c9b7d74a.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
