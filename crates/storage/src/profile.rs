//! Backend profiles: the database behaviours the paper's evaluation turns
//! on.

use std::time::Duration;

/// Which database's delete/reclaim semantics the engine emulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vendor {
    /// Deleted rows reclaimed immediately; index entries stripped at delete
    /// time; freed slots reused. Roughly InnoDB's observable behaviour at
    /// the workload sizes of the paper.
    MySqlLike,
    /// Deletes leave dead tuples in heap and indexes until
    /// [`vacuum`](crate::Database::vacuum) — PostgreSQL's MVCC behaviour,
    /// the subject of the paper's §5.2 / Figure 8.
    PostgresLike,
}

/// When WAL records reach the physical disk.
///
/// The paper (§5.1): *"LRC operation rates depend on whether the database
/// back end immediately flushes transactions to the physical disk. If the
/// user disables this immediate flush, then transaction updates are instead
/// written to the physical disk periodically."* — MySQL's
/// `innodb_flush_log_at_trx_commit` and PostgreSQL's `fsync`/`fsync()` calls
/// (Fig. 8 caption notes "fsync() calls disabled").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushMode {
    /// `fdatasync` on every commit ("database flush enabled").
    PerCommit,
    /// OS-buffered writes; background syncs only ("flush disabled" — the
    /// configuration the paper recommends and uses for most results).
    Buffered,
    /// No WAL at all: pure in-memory operation (unit tests, RLI bloom mode).
    None,
}

/// Full backend profile: vendor semantics + durability policy + optional
/// simulated device latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendProfile {
    /// Delete/reclaim semantics.
    pub vendor: Vendor,
    /// WAL flush policy.
    pub flush: FlushMode,
    /// Extra latency charged to each physical sync, modelling the ~8 ms
    /// rotational latency of the paper's 2003-era disks. `None` charges
    /// only the real `fdatasync` cost of the host. Benchmarks reproducing
    /// Fig. 4's absolute *ratio* set this; tests leave it off.
    pub simulated_sync_latency: Option<Duration>,
    /// Cost charged per *dead* index entry skipped during a probe
    /// (PostgreSQL-like profile). In a real PostgreSQL a dead index entry
    /// costs a heap fetch + visibility check — a likely buffer miss on the
    /// paper's hardware. In our in-memory engine the skip itself is one
    /// load, so this knob restores the relative magnitude that produces
    /// Figure 8's saw-tooth. `None` disables the charge.
    pub dead_probe_cost: Option<Duration>,
}

impl BackendProfile {
    /// MySQL-like profile with the flush disabled — the paper's
    /// recommended deployment configuration.
    pub fn mysql_buffered() -> Self {
        Self {
            vendor: Vendor::MySqlLike,
            flush: FlushMode::Buffered,
            simulated_sync_latency: None,
            dead_probe_cost: None,
        }
    }

    /// MySQL-like profile with per-commit flush ("flush enabled").
    pub fn mysql_durable() -> Self {
        Self {
            vendor: Vendor::MySqlLike,
            flush: FlushMode::PerCommit,
            simulated_sync_latency: None,
            dead_probe_cost: None,
        }
    }

    /// PostgreSQL-like profile with fsync disabled (Figure 8's setup).
    pub fn postgres_buffered() -> Self {
        Self {
            vendor: Vendor::PostgresLike,
            flush: FlushMode::Buffered,
            simulated_sync_latency: None,
            // Default visibility-check charge per dead index entry; see
            // the field docs and DESIGN.md §2.
            dead_probe_cost: Some(Duration::from_micros(1)),
        }
    }

    /// Pure in-memory profile (no WAL): unit tests and Bloom-mode RLIs.
    pub fn in_memory() -> Self {
        Self {
            vendor: Vendor::MySqlLike,
            flush: FlushMode::None,
            simulated_sync_latency: None,
            dead_probe_cost: None,
        }
    }

    /// Adds simulated per-sync device latency.
    #[must_use]
    pub fn with_sync_latency(mut self, d: Duration) -> Self {
        self.simulated_sync_latency = Some(d);
        self
    }

    /// Overrides the per-dead-index-entry probe charge.
    #[must_use]
    pub fn with_dead_probe_cost(mut self, d: Option<Duration>) -> Self {
        self.dead_probe_cost = d;
        self
    }
}

impl Default for BackendProfile {
    fn default() -> Self {
        Self::mysql_buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(BackendProfile::mysql_durable().flush, FlushMode::PerCommit);
        assert_eq!(BackendProfile::mysql_buffered().flush, FlushMode::Buffered);
        assert_eq!(
            BackendProfile::postgres_buffered().vendor,
            Vendor::PostgresLike
        );
        assert_eq!(BackendProfile::in_memory().flush, FlushMode::None);
        assert_eq!(BackendProfile::default(), BackendProfile::mysql_buffered());
    }

    #[test]
    fn sync_latency_builder() {
        let p = BackendProfile::mysql_durable().with_sync_latency(Duration::from_millis(8));
        assert_eq!(p.simulated_sync_latency, Some(Duration::from_millis(8)));
    }
}
