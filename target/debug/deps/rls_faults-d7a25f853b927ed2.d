/root/repo/target/debug/deps/rls_faults-d7a25f853b927ed2.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls_faults-d7a25f853b927ed2.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
