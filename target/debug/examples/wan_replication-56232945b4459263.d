/root/repo/target/debug/examples/wan_replication-56232945b4459263.d: examples/wan_replication.rs Cargo.toml

/root/repo/target/debug/examples/libwan_replication-56232945b4459263.rmeta: examples/wan_replication.rs Cargo.toml

examples/wan_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
