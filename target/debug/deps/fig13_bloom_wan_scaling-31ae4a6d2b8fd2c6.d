/root/repo/target/debug/deps/fig13_bloom_wan_scaling-31ae4a6d2b8fd2c6.d: crates/bench/benches/fig13_bloom_wan_scaling.rs

/root/repo/target/debug/deps/libfig13_bloom_wan_scaling-31ae4a6d2b8fd2c6.rmeta: crates/bench/benches/fig13_bloom_wan_scaling.rs

crates/bench/benches/fig13_bloom_wan_scaling.rs:
