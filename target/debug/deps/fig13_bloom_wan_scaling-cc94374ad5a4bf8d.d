/root/repo/target/debug/deps/fig13_bloom_wan_scaling-cc94374ad5a4bf8d.d: crates/bench/benches/fig13_bloom_wan_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_bloom_wan_scaling-cc94374ad5a4bf8d.rmeta: crates/bench/benches/fig13_bloom_wan_scaling.rs Cargo.toml

crates/bench/benches/fig13_bloom_wan_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
