/root/repo/target/debug/deps/stress-041356460c44895e.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/libstress-041356460c44895e.rmeta: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
