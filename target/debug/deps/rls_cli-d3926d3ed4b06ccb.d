/root/repo/target/debug/deps/rls_cli-d3926d3ed4b06ccb.d: src/bin/rls-cli.rs Cargo.toml

/root/repo/target/debug/deps/librls_cli-d3926d3ed4b06ccb.rmeta: src/bin/rls-cli.rs Cargo.toml

src/bin/rls-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
