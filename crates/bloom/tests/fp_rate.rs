//! Measured false-positive behaviour at the paper's filter parameters.
//!
//! §3.4 sizes RLI Bloom filters at roughly 10 bits per mapping with 3
//! hash functions, giving a theoretical false-positive probability of
//! `(1 - e^(-k·n/m))^k ≈ 1.7%`. These tests pin both halves of the §3.2
//! soundness contract across several disjoint key universes ("seeds"):
//! an RLI may point a client at an LRC that lacks a mapping (false
//! positive, bounded below 2%), but must never hide an LRC that has one
//! (zero false negatives). Everything here is deterministic — fixed key
//! sets, fixed hash functions — so the measured rate never flakes.

use rls_bloom::{BloomFilter, BloomParams};

const MEMBERS: usize = 2_000;
const PROBES: usize = 20_000;

fn member(seed: u64, i: usize) -> String {
    format!("lfn://seed{seed}/data/file{i:06}")
}

fn non_member(seed: u64, i: usize) -> String {
    // A namespace no member key ever uses, per seed.
    format!("lfn://seed{seed}/absent/ghost{i:06}")
}

#[test]
fn paper_params_are_the_documented_shape() {
    let p = BloomParams::PAPER;
    assert_eq!(p.bits_per_entry, 10, "§3.4: ~10 bits per mapping");
    assert_eq!(p.hashes, 3, "§3.4: 3 hash functions");
}

#[test]
fn zero_false_negatives_and_fp_rate_under_two_percent() {
    for seed in 0u64..5 {
        let mut filter = BloomFilter::with_capacity(BloomParams::PAPER, MEMBERS as u64);
        for i in 0..MEMBERS {
            filter.insert(&member(seed, i));
        }
        // Soundness: every inserted mapping tests positive.
        for i in 0..MEMBERS {
            assert!(
                filter.contains(&member(seed, i)),
                "false negative for {} (seed {seed})",
                member(seed, i)
            );
        }
        // Precision: distinct non-members hit below the design bound.
        let false_positives = (0..PROBES)
            .filter(|&i| filter.contains(&non_member(seed, i)))
            .count();
        let rate = false_positives as f64 / PROBES as f64;
        assert!(
            rate <= 0.02,
            "seed {seed}: measured FP rate {rate:.4} exceeds 2% \
             ({false_positives}/{PROBES})"
        );
    }
}
