/root/repo/target/debug/deps/rls_cli-276d8bd457796cc4.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/rls_cli-276d8bd457796cc4: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
