/root/repo/target/debug/deps/fig07_native_db-e695f0a99b2a1de9.d: crates/bench/benches/fig07_native_db.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_native_db-e695f0a99b2a1de9.rmeta: crates/bench/benches/fig07_native_db.rs Cargo.toml

crates/bench/benches/fig07_native_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
