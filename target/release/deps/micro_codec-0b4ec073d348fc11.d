/root/repo/target/release/deps/micro_codec-0b4ec073d348fc11.d: crates/bench/benches/micro_codec.rs

/root/repo/target/release/deps/micro_codec-0b4ec073d348fc11: crates/bench/benches/micro_codec.rs

crates/bench/benches/micro_codec.rs:
