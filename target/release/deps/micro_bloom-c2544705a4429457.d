/root/repo/target/release/deps/micro_bloom-c2544705a4429457.d: crates/bench/benches/micro_bloom.rs

/root/repo/target/release/deps/micro_bloom-c2544705a4429457: crates/bench/benches/micro_bloom.rs

crates/bench/benches/micro_bloom.rs:
