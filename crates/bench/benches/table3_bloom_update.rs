//! **Table 3** — Bloom filter update performance over the WAN (LRCs in Los
//! Angeles, RLI in Chicago, 63.8 ms mean RTT).
//!
//! | database size | avg soft-state update | avg filter generation | filter size |
//! |---------------|----------------------|-----------------------|-------------|
//! | 100 000       | < 1 s                | 2 s                   | 1 M bits    |
//! | 1 million     | 1.67 s               | 18.4 s                | 10 M bits   |
//! | 5 million     | 6.8 s                | 91.6 s                | 50 M bits   |
//!
//! Reproduced claims: update time scales with filter size over the shaped
//! WAN link; filter *generation* from the catalog costs far more than a
//! send but is a one-time cost (the counting filter is maintained
//! incrementally afterwards); filter sizes are 10 bits/mapping.

use std::sync::Arc;
use std::time::Instant;

use rls_bench::{banner, header, manual_updates, row, start_rli, Scale};
use rls_bloom::{BloomFilter, BloomParams};
use rls_core::{UpdateConfig, UpdateMode, Updater};
use rls_net::LinkProfile;
use rls_storage::BackendProfile;
use rls_types::Dn;
use rls_workload::{preload_lrc, NameGen};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table 3",
        "Bloom filter update performance over the WAN (63.8 ms RTT)",
        &scale,
    );
    let sizes: Vec<u64> = if scale.full {
        vec![100_000, 1_000_000, 5_000_000]
    } else {
        vec![
            scale.pick(10_000, 0).max(1),
            scale.pick(100_000, 0).max(1),
            scale.pick(500_000, 0).max(1),
        ]
    };
    header(&[
        "entries",
        "update (s)",
        "generate (s)",
        "filter bits",
        "filter MB",
    ]);

    let rli = start_rli();
    for &entries in &sizes {
        // LRC in Bloom mode: counting filter maintained incrementally.
        let update_cfg = UpdateConfig {
            mode: UpdateMode::Bloom {
                interval: std::time::Duration::from_secs(3600),
                params: BloomParams::PAPER,
            },
            link: LinkProfile::wan_la_chicago(),
            ..manual_updates()
        };
        let server = rls_bench::start_lrc_with_updates(
            BackendProfile::mysql_buffered(),
            update_cfg.clone(),
            &rli.addr().to_string(),
            true,
        );
        let gen = NameGen::new("table3");
        preload_lrc(&server, &gen, entries).expect("preload");
        let lrc = server.lrc().expect("lrc role");

        // Column 3: time to generate the filter from the catalog (the
        // one-time cost). Measured as a fresh build, as a
        // pre-counting-filter implementation pays on every update.
        let t0 = Instant::now();
        let mut fresh = BloomFilter::with_capacity(BloomParams::PAPER, entries);
        lrc.catalog().for_each_lfn(|lfn| fresh.insert(lfn));
        let generate_s = t0.elapsed().as_secs_f64();

        // Column 2: soft-state update time over the WAN, mean over trials.
        let mut updater = Updater::new(
            server.name().to_owned(),
            Dn::anonymous(),
            Arc::clone(lrc),
            &update_cfg,
        );
        let target = rls_storage::RliTarget {
            name: rli.addr().to_string(),
            flags: rls_core::FLAG_BLOOM,
            patterns: vec![],
        };
        // Warm-up send: performs the one-time regeneration that resizes the
        // counting filter to the catalog (its cost is column 3's story).
        updater.send_bloom(&target).expect("warm-up bloom update");
        let mut times = Vec::new();
        for _ in 0..scale.trials {
            let outcome = updater.send_bloom(&target).expect("bloom update");
            assert_eq!(
                outcome.generate_seconds, 0.0,
                "incrementally-maintained filter must not regenerate"
            );
            times.push(outcome.duration.as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let bits = fresh.bit_len();
        row(&[
            entries.to_string(),
            format!("{mean:.2}"),
            format!("{generate_s:.2}"),
            bits.to_string(),
            format!("{:.2}", bits as f64 / 8.0 / 1e6),
        ]);
    }
    println!("\n    paper: <1 s / 1.67 s / 6.8 s updates; 2 s / 18.4 s / 91.6 s generation;");
    println!("           1 M / 10 M / 50 M filter bits (10 bits per mapping)");
}
