/root/repo/target/debug/deps/fig08_pg_vacuum-0e46c661c76c59d6.d: crates/bench/benches/fig08_pg_vacuum.rs

/root/repo/target/debug/deps/fig08_pg_vacuum-0e46c661c76c59d6: crates/bench/benches/fig08_pg_vacuum.rs

crates/bench/benches/fig08_pg_vacuum.rs:
