//! # `rls-types`
//!
//! Core vocabulary shared by every crate in the RLS workspace:
//!
//! * [`LogicalName`] / [`TargetName`] — the two sides of a replica mapping.
//!   *Logical names* are unique identifiers for data content; *target names*
//!   are typically physical replica locations (but may be further logical
//!   names, which is what enables hierarchical catalog structures).
//! * [`attribute`] — the typed user-attribute model of the LRC (string,
//!   int, float, date), mirroring the `t_attribute` / `t_*_attr` tables of
//!   the paper's Figure 3.
//! * [`error`] — the unified [`error::RlsError`] type and RPC
//!   error codes.
//! * [`pattern`] — a small self-contained pattern engine: a Thompson-NFA
//!   regex subset (used for access-control lists and namespace partitioning)
//!   and a glob matcher (used for wildcard queries).
//! * [`auth`] — distinguished names, privileges and access-control entries.
//! * [`time`] — a monotonic/unix timestamp pair used for soft-state expiry.

pub mod attribute;
pub mod auth;
pub mod error;
pub mod names;
pub mod pattern;
pub mod time;

pub use attribute::{AttrCompare, AttrValue, AttrValueType, AttributeDef, ObjectType};
pub use auth::{AclEntry, AclSubject, Dn, Privilege};
pub use error::{ErrorCode, RlsError, RlsResult};
pub use names::{LogicalName, Mapping, TargetName};
pub use pattern::{Glob, Regex};
pub use time::Timestamp;
