//! End-to-end tests: real servers on loopback TCP, real clients, full
//! soft-state flows.

use std::sync::Arc;
use std::time::Duration;

use rls_core::testkit::TestDeployment;
use rls_core::{AuthConfig, LrcConfig, RliConfig, RlsClient, Server, ServerConfig};
use rls_types::{AclEntry, AclSubject, Dn, ErrorCode, Mapping, Privilege};

fn anon() -> Dn {
    Dn::anonymous()
}

#[test]
fn lrc_crud_over_the_wire() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    assert!(c.server_is_lrc());
    assert!(!c.server_is_rli());
    c.ping().unwrap();

    c.create_mapping("lfn://e2e/a", "gsiftp://site/a").unwrap();
    c.add_mapping("lfn://e2e/a", "gsiftp://mirror/a").unwrap();
    let mut targets = c.query_lfn("lfn://e2e/a").unwrap();
    targets.sort();
    assert_eq!(targets, vec!["gsiftp://mirror/a", "gsiftp://site/a"]);

    let logicals = c.query_pfn("gsiftp://site/a").unwrap();
    assert_eq!(logicals, vec!["lfn://e2e/a"]);

    let err = c.create_mapping("lfn://e2e/a", "gsiftp://x").unwrap_err();
    assert_eq!(err.code(), ErrorCode::MappingExists);

    c.delete_mapping("lfn://e2e/a", "gsiftp://site/a").unwrap();
    c.delete_mapping("lfn://e2e/a", "gsiftp://mirror/a").unwrap();
    let err = c.query_lfn("lfn://e2e/a").unwrap_err();
    assert_eq!(err.code(), ErrorCode::LogicalNameNotFound);
}

#[test]
fn bulk_operations_over_the_wire() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    let mappings: Vec<Mapping> = (0..100)
        .map(|i| Mapping::new(format!("lfn://bulk/{i}"), format!("pfn://bulk/{i}")).unwrap())
        .collect();
    let failures = c.bulk_create(mappings.clone()).unwrap();
    assert!(failures.is_empty());
    // Re-creating everything fails per item.
    let failures = c.bulk_create(mappings.clone()).unwrap();
    assert_eq!(failures.len(), 100);
    // Bulk query mixes hits and misses.
    let mut names: Vec<String> = (0..5).map(|i| format!("lfn://bulk/{i}")).collect();
    names.push("lfn://missing".to_owned());
    let results = c.bulk_query_lfn(names).unwrap();
    assert_eq!(results.len(), 6);
    assert!(results[..5].iter().all(|(_, r)| r.is_ok()));
    assert!(results[5].1.is_err());
    // Wildcard.
    let hits = c.wildcard_query_lfn("lfn://bulk/1*", 1000).unwrap();
    assert_eq!(hits.len(), 11); // 1, 10..19
    let failures = c.bulk_delete(mappings).unwrap();
    assert!(failures.is_empty());
}

#[test]
fn uncompressed_soft_state_flow() {
    let dep = TestDeployment::builder().lrcs(2).rlis(1).build().unwrap();
    let mut c0 = dep.lrc_client(0).unwrap();
    let mut c1 = dep.lrc_client(1).unwrap();
    c0.create_mapping("lfn://shared", "pfn://site0/f").unwrap();
    c1.create_mapping("lfn://shared", "pfn://site1/f").unwrap();
    c1.create_mapping("lfn://only-1", "pfn://site1/g").unwrap();

    let outcomes = dep.force_updates();
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.is_ok(), "{o:?}");
    }

    let mut rli = dep.rli_client(0).unwrap();
    let mut hits = rli.rli_query_lfn("lfn://shared").unwrap();
    hits.sort_by(|a, b| a.lrc.cmp(&b.lrc));
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].lrc, "lrc-0");
    assert_eq!(hits[1].lrc, "lrc-1");
    let hits = rli.rli_query_lfn("lfn://only-1").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].lrc, "lrc-1");
    // RLI wildcard works in uncompressed mode.
    let pairs = rli.rli_wildcard_query("lfn://*", 100).unwrap();
    assert_eq!(pairs.len(), 3);
    // LRC list.
    let lrcs = rli.rli_list_lrcs().unwrap();
    assert_eq!(lrcs, vec!["lrc-0", "lrc-1"]);
}

#[test]
fn bloom_soft_state_flow() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .bloom(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..500 {
        c.create_mapping(&format!("lfn://bloom/{i}"), &format!("pfn://b/{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    // Every registered name must hit (no false negatives).
    for i in (0..500).step_by(50) {
        let hits = rli.rli_query_lfn(&format!("lfn://bloom/{i}")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lrc, "lrc-0");
    }
    // Wildcard impossible against a bloom-only RLI: empty results.
    let pairs = rli.rli_wildcard_query("lfn://bloom/*", 10).unwrap();
    assert!(pairs.is_empty());
    // Stats report one bloom filter.
    let stats = rli.stats().unwrap();
    assert_eq!(stats.rli_bloom_filters, 1);
    assert!(stats.updates_received >= 1);

    // Deletions propagate on the next filter push.
    for i in 0..500 {
        c.delete_mapping(&format!("lfn://bloom/{i}"), &format!("pfn://b/{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        o.unwrap();
    }
    let err = rli.rli_query_lfn("lfn://bloom/0").unwrap_err();
    assert_eq!(err.code(), ErrorCode::LogicalNameNotFound);
}

#[test]
fn immediate_mode_delta_flow() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://imm/a", "pfn://1").unwrap();
    c.create_mapping("lfn://imm/b", "pfn://2").unwrap();
    // Deltas flushed manually (auto threads are off in the testkit).
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    assert_eq!(rli.rli_query_lfn("lfn://imm/a").unwrap().len(), 1);
    // A removal travels in the next delta.
    c.delete_mapping("lfn://imm/b", "pfn://2").unwrap();
    for r in dep.flush_deltas() {
        r.unwrap();
    }
    let err = rli.rli_query_lfn("lfn://imm/b").unwrap_err();
    assert_eq!(err.code(), ErrorCode::LogicalNameNotFound);
    // Flushing with no pending deltas is a no-op.
    for r in dep.flush_deltas() {
        assert!(r.unwrap().is_empty());
    }
}

#[test]
fn soft_state_expiry_over_the_wire() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .expire_timeout(Duration::from_millis(80))
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://exp/a", "pfn://1").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    assert_eq!(rli.rli_query_lfn("lfn://exp/a").unwrap().len(), 1);
    std::thread::sleep(Duration::from_millis(150));
    let expired = dep.force_expire().unwrap();
    assert_eq!(expired, 1);
    assert!(rli.rli_query_lfn("lfn://exp/a").is_err());
    // A fresh update resurrects the entry (soft-state refresh).
    for o in dep.force_updates() {
        o.unwrap();
    }
    assert_eq!(rli.rli_query_lfn("lfn://exp/a").unwrap().len(), 1);
}

#[test]
fn namespace_partitioning_routes_updates() {
    // One LRC, two RLIs: ligo names to rli-0, sdss names to rli-1.
    let dep = TestDeployment::builder().lrcs(1).rlis(2).build().unwrap();
    {
        let lrc = dep.lrcs[0].lrc().unwrap();
        let catalog = lrc.catalog();
        // Replace the default (unpartitioned) update list.
        catalog.remove_rli(&dep.rlis[0].addr().to_string()).unwrap();
        catalog.remove_rli(&dep.rlis[1].addr().to_string()).unwrap();
        catalog
            .add_rli(
                &dep.rlis[0].addr().to_string(),
                0,
                &["^lfn://ligo/.*".to_owned()],
            )
            .unwrap();
        catalog
            .add_rli(
                &dep.rlis[1].addr().to_string(),
                0,
                &["^lfn://sdss/.*".to_owned()],
            )
            .unwrap();
    }
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://ligo/frame1", "pfn://l/1").unwrap();
    c.create_mapping("lfn://sdss/plate1", "pfn://s/1").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli0 = dep.rli_client(0).unwrap();
    let mut rli1 = dep.rli_client(1).unwrap();
    assert!(rli0.rli_query_lfn("lfn://ligo/frame1").is_ok());
    assert!(rli0.rli_query_lfn("lfn://sdss/plate1").is_err());
    assert!(rli1.rli_query_lfn("lfn://sdss/plate1").is_ok());
    assert!(rli1.rli_query_lfn("lfn://ligo/frame1").is_err());
}

#[test]
fn auth_enforced_over_the_wire() {
    let mut auth = AuthConfig {
        enabled: true,
        ..Default::default()
    };
    auth.gridmap
        .insert("/O=Grid/OU=ISI/CN=Writer".to_owned(), "grid-writer".to_owned());
    auth.acl.push(
        AclEntry::new(AclSubject::Dn, "/O=Grid/.*", vec![Privilege::LrcRead]).unwrap(),
    );
    auth.acl.push(
        AclEntry::new(
            AclSubject::LocalUser,
            "grid-writer",
            vec![Privilege::LrcWrite],
        )
        .unwrap(),
    );
    let server = Server::start(ServerConfig {
        lrc: Some(LrcConfig::default()),
        auth,
        ..ServerConfig::default()
    })
    .unwrap();

    let writer = Dn::new("/O=Grid/OU=ISI/CN=Writer");
    let reader = Dn::new("/O=Grid/OU=UCLA/CN=Reader");
    let stranger = Dn::new("/nobody");

    let mut wc = RlsClient::connect(server.addr(), &writer).unwrap();
    wc.create_mapping("lfn://auth/a", "pfn://1").unwrap();

    let mut rc = RlsClient::connect(server.addr(), &reader).unwrap();
    assert_eq!(rc.query_lfn("lfn://auth/a").unwrap().len(), 1);
    let err = rc.create_mapping("lfn://auth/b", "pfn://2").unwrap_err();
    assert_eq!(err.code(), ErrorCode::PermissionDenied);

    let mut sc = RlsClient::connect(server.addr(), &stranger).unwrap();
    let err = sc.query_lfn("lfn://auth/a").unwrap_err();
    assert_eq!(err.code(), ErrorCode::PermissionDenied);
    sc.ping().unwrap(); // ping needs no privilege
}

#[test]
fn attributes_over_the_wire() {
    use rls_types::{AttrCompare, AttrValue, AttrValueType, AttributeDef, ObjectType};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://f", "pfn://f").unwrap();
    c.define_attribute(
        AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap(),
    )
    .unwrap();
    c.add_attribute("pfn://f", ObjectType::Target, "size", AttrValue::Int(4096))
        .unwrap();
    let attrs = c.get_attributes("pfn://f", ObjectType::Target, None).unwrap();
    assert_eq!(attrs, vec![("size".to_owned(), AttrValue::Int(4096))]);
    let found = c
        .search_attribute(
            "size",
            ObjectType::Target,
            AttrCompare::Ge,
            Some(AttrValue::Int(1000)),
        )
        .unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, "pfn://f");
    c.modify_attribute("pfn://f", ObjectType::Target, "size", AttrValue::Int(1))
        .unwrap();
    c.remove_attribute("pfn://f", ObjectType::Target, "size")
        .unwrap();
    c.undefine_attribute("size", ObjectType::Target, false).unwrap();
}

#[test]
fn bulk_attribute_ops_over_the_wire() {
    use rls_proto::AttrAssignment;
    use rls_types::{AttrValue, AttrValueType, AttributeDef, ObjectType};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..20 {
        c.create_mapping(&format!("lfn://ba/{i}"), &format!("pfn://ba/{i}"))
            .unwrap();
    }
    c.define_attribute(
        AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap(),
    )
    .unwrap();
    let assign = |v: i64| -> Vec<AttrAssignment> {
        (0..20)
            .map(|i| AttrAssignment {
                obj: format!("pfn://ba/{i}"),
                objtype: ObjectType::Target,
                name: "size".into(),
                value: AttrValue::Int(v + i),
            })
            .collect()
    };
    assert!(c.bulk_add_attributes(assign(100)).unwrap().is_empty());
    // Re-adding fails per item; modifying succeeds.
    assert_eq!(c.bulk_add_attributes(assign(100)).unwrap().len(), 20);
    assert!(c.bulk_modify_attributes(assign(500)).unwrap().is_empty());
    let attrs = c
        .get_attributes("pfn://ba/3", ObjectType::Target, Some("size"))
        .unwrap();
    assert_eq!(attrs[0].1, AttrValue::Int(503));
    // Bulk remove, half of them twice (second pass fails per item).
    let keys: Vec<(String, ObjectType, String)> = (0..20)
        .map(|i| (format!("pfn://ba/{i}"), ObjectType::Target, "size".to_owned()))
        .collect();
    assert!(c.bulk_remove_attributes(keys.clone()).unwrap().is_empty());
    assert_eq!(c.bulk_remove_attributes(keys).unwrap().len(), 20);
}

#[test]
fn combined_server_full_mesh_esg_style() {
    // Four combined LRC+RLI servers in a fully-connected configuration,
    // like the Earth System Grid deployment (§6).
    let mut servers = Vec::new();
    for i in 0..4 {
        let server = Server::start(ServerConfig {
            name: format!("esg-{i}"),
            lrc: Some(LrcConfig::default()),
            rli: Some(RliConfig::default()),
            ..ServerConfig::default()
        })
        .unwrap();
        servers.push(server);
    }
    // Everyone updates everyone else.
    for (i, s) in servers.iter().enumerate() {
        let lrc = s.lrc().unwrap();
        for (j, other) in servers.iter().enumerate() {
            if i != j {
                lrc.catalog()
                    .add_rli(&other.addr().to_string(), 0, &[])
                    .unwrap();
            }
        }
    }
    // Register a different file on each site.
    for (i, s) in servers.iter().enumerate() {
        let mut c = RlsClient::connect(s.addr(), &anon()).unwrap();
        c.create_mapping(&format!("lfn://esg/file{i}"), &format!("pfn://esg{i}/f"))
            .unwrap();
    }
    for s in &servers {
        for o in s.run_update_cycle().unwrap() {
            o.unwrap();
        }
    }
    // Any server's RLI can locate any site's file.
    let mut c = RlsClient::connect(servers[0].addr(), &anon()).unwrap();
    for i in 1..4 {
        let hits = c.rli_query_lfn(&format!("lfn://esg/file{i}")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lrc, format!("esg-{i}"));
    }
}

#[test]
fn hierarchical_rli_forwarding() {
    use rls_core::hierarchy::RliForwarder;
    use rls_net::LinkProfile;
    // LRC → child RLI → parent RLI.
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let parent = Server::start(ServerConfig {
        name: "parent-rli".into(),
        rli: Some(RliConfig::default()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://hier/a", "pfn://1").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    let forwarder = RliForwarder::new(
        dep.rlis[0].addr().to_string(),
        anon(),
        Arc::clone(dep.rlis[0].rli().unwrap()),
        LinkProfile::unshaped(),
    );
    let shipped = forwarder.forward(&parent.addr().to_string()).unwrap();
    assert_eq!(shipped, 1); // one relational summary, no per-LRC filters
    // Parent points at the child RLI; client then queries the child.
    let mut pc = RlsClient::connect(parent.addr(), &anon()).unwrap();
    let hits = pc.rli_query_lfn("lfn://hier/a").unwrap();
    assert_eq!(hits.len(), 1);
    let child_addr = hits[0].lrc.clone();
    let mut cc = RlsClient::connect(child_addr.as_str(), &anon()).unwrap();
    let hits = cc.rli_query_lfn("lfn://hier/a").unwrap();
    assert_eq!(hits[0].lrc, "lrc-0");
}

#[test]
fn hierarchical_forwarding_relays_bloom_filters() {
    use rls_core::hierarchy::RliForwarder;
    use rls_net::LinkProfile;
    use std::sync::Arc;
    // Bloom-mode LRC → child RLI (holds a per-LRC filter) → parent RLI.
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .bloom(true)
        .build()
        .unwrap();
    let parent = Server::start(ServerConfig {
        name: "parent-rli".into(),
        rli: Some(RliConfig::default()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://hierbloom/a", "pfn://1").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    let forwarder = RliForwarder::new(
        dep.rlis[0].addr().to_string(),
        anon(),
        Arc::clone(dep.rlis[0].rli().unwrap()),
        LinkProfile::unshaped(),
    );
    // One per-LRC filter forwarded verbatim; relational store empty so no
    // child summary ships.
    let shipped = forwarder.forward(&parent.addr().to_string()).unwrap();
    assert_eq!(shipped, 1);
    // The parent points straight at the original LRC (no extra hop).
    let mut pc = RlsClient::connect(parent.addr(), &anon()).unwrap();
    let hits = pc.rli_query_lfn("lfn://hierbloom/a").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].lrc, "lrc-0");
}

#[test]
fn concurrent_clients_hammer_one_lrc() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let addr = dep.lrcs[0].addr();
    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &anon()).unwrap();
                for i in 0..50 {
                    c.create_mapping(
                        &format!("lfn://conc/{t}/{i}"),
                        &format!("pfn://conc/{t}/{i}"),
                    )
                    .unwrap();
                }
                for i in 0..50 {
                    assert_eq!(c.query_lfn(&format!("lfn://conc/{t}/{i}")).unwrap().len(), 1);
                }
            });
        }
    });
    let mut c = dep.lrc_client(0).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.lrc_lfn_count, 400);
    assert_eq!(stats.adds, 400);
}

// -- pipelined RPC path (fig07 gap) ------------------------------------------

fn counter(stats: &rls_proto::ServerStatsWire, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn pipelined_window_over_the_wire() {
    use rls_proto::{Request, Response, PROTOCOL_VERSION_PIPELINED};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..32 {
        c.create_mapping(&format!("lfn://pipe/{i}"), &format!("pfn://pipe/{i}"))
            .unwrap();
    }

    c.set_pipeline_depth(8).unwrap();
    let mut expected = Vec::new();
    for i in 0..32 {
        let id = c
            .pipeline_submit(&Request::QueryLfn(format!("lfn://pipe/{i}")))
            .unwrap();
        expected.push((id, format!("pfn://pipe/{i}")));
    }
    assert_eq!(c.negotiated_protocol(), PROTOCOL_VERSION_PIPELINED);
    let mut results = c.pipeline_drain().unwrap();
    assert_eq!(c.pipeline_in_flight(), 0);
    assert_eq!(results.len(), 32);
    // Every submitted request resolved exactly once, matched by ID.
    results.sort_by_key(|(id, _)| *id);
    expected.sort_by_key(|(id, _)| *id);
    for ((id, resp), (want_id, want_pfn)) in results.into_iter().zip(expected) {
        assert_eq!(id, want_id);
        match resp.unwrap() {
            Response::Targets(t) => assert_eq!(t, vec![want_pfn]),
            other => panic!("expected Targets, got {other:?}"),
        }
    }
    // The server answered these off the out-of-order path, and says so.
    let stats = c.stats().unwrap();
    assert!(
        counter(&stats, "net.pipeline.offloaded") >= 32,
        "offload counter: {stats:?}"
    );
}

#[test]
fn pipeline_depth_one_stays_on_the_legacy_protocol() {
    use rls_proto::{Request, Response, PROTOCOL_VERSION};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    // Depth 1 is the default: no negotiation, no ID envelopes, and the
    // server serves every frame inline (zero-copy), none off the
    // out-of-order queue.
    let id = c.pipeline_submit(&Request::Ping).unwrap();
    let results = c.pipeline_drain().unwrap();
    assert_eq!(c.negotiated_protocol(), PROTOCOL_VERSION);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, id);
    assert!(matches!(results[0].1, Ok(Response::Pong)));
    let stats = c.stats().unwrap();
    assert_eq!(counter(&stats, "net.pipeline.offloaded"), 0);
    assert!(counter(&stats, "net.pipeline.inline") >= 1);
}

#[test]
fn pipelined_client_replays_in_flight_after_connection_loss() {
    use rls_proto::{Request, Response};
    use rls_faults::FaultPlan;
    use rls_net::{LinkProfile, RetryPolicy};
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    {
        let mut seedc = dep.lrc_client(0).unwrap();
        for i in 0..4 {
            seedc
                .create_mapping(&format!("lfn://replay/{i}"), &format!("pfn://replay/{i}"))
                .unwrap();
        }
    }
    // Seeded plan: the 4th frame this client sends dies mid-wire. Sends
    // 0 and 1 are the two Hellos (the initial v1 dial, then the v2
    // renegotiation redial), so index 3 is the second query — it dies
    // with the window partly in flight.
    let plan = Arc::new(FaultPlan::builder(0xD1A7).drop_mid_frame("*", 3).build());
    let policy = RetryPolicy {
        max_retries: 4,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(20),
        jitter_pct: 50,
        connect_timeout: Some(Duration::from_secs(2)),
        request_timeout: None,
    };
    let mut c = RlsClient::connect_with(
        dep.lrcs[0].addr(),
        &anon(),
        LinkProfile::unshaped(),
        None,
        policy,
        Some(plan.clone()),
        None,
    )
    .unwrap();
    c.set_pipeline_depth(4).unwrap();
    for i in 0..4 {
        c.pipeline_submit(&Request::QueryLfn(format!("lfn://replay/{i}")))
            .unwrap();
    }
    let mut results = c.pipeline_drain().unwrap();
    // The fault fired, the client reconnected, and every in-flight
    // request still resolved successfully (queries replay cleanly).
    assert_eq!(plan.stats().dropped(), 1);
    assert!(c.reconnects_performed() >= 1, "reconnects: {}", c.reconnects_performed());
    assert_eq!(c.pipeline_replays(), 2, "one in flight plus the dying frame");
    assert_eq!(results.len(), 4);
    results.sort_by_key(|(id, _)| *id);
    for (i, (id, resp)) in results.into_iter().enumerate() {
        assert_eq!(id, i as u64 + 1);
        match resp.unwrap() {
            Response::Targets(t) => assert_eq!(t, vec![format!("pfn://replay/{i}")]),
            other => panic!("expected Targets, got {other:?}"),
        }
    }
}

#[test]
fn pipelined_client_falls_back_against_v1_only_peer() {
    use rls_net::Listener;
    use rls_proto::{Request, Response, PROTOCOL_VERSION};
    // A peer that speaks only the original protocol: acks v1 Hellos,
    // rejects anything newer the way the pre-pipelining server did, and
    // then answers legacy (un-stamped) requests in lockstep.
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            while let Ok(Some(frame)) = conn.recv() {
                let Ok((meta, req)) = Request::decode_framed(&frame) else { break };
                assert!(
                    meta.request_id.is_none(),
                    "client leaked an ID envelope to an old peer"
                );
                let resp = match req {
                    Request::Hello { version, .. } if version == PROTOCOL_VERSION => {
                        Response::HelloAck {
                            server_version: "2.0.9-legacy".into(),
                            is_lrc: true,
                            is_rli: false,
                            protocol: PROTOCOL_VERSION,
                        }
                    }
                    Request::Hello { version, .. } => Response::Error(
                        rls_types::RlsError::protocol(format!(
                            "unsupported protocol version {version}"
                        )),
                    ),
                    _ => Response::Pong,
                };
                if conn.send(&resp.encode().into_bytes()).is_err() {
                    break;
                }
            }
        }
    });

    let mut c = RlsClient::connect(addr, &anon()).unwrap();
    // Asking for a deeper window renegotiates on the next call; the old
    // peer refuses the pipelined protocol and the client falls back to
    // lockstep transparently — the calls still succeed.
    c.set_pipeline_depth(8).unwrap();
    let a = c.pipeline_submit(&Request::Ping).unwrap();
    let b = c.pipeline_submit(&Request::Ping).unwrap();
    let results = c.pipeline_drain().unwrap();
    assert_eq!(c.negotiated_protocol(), PROTOCOL_VERSION, "clamped to v1");
    assert_eq!(c.pipeline_depth(), 8, "configured depth survives the clamp");
    let ids: Vec<u64> = results.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![a, b]);
    for (_, resp) in results {
        assert!(matches!(resp.unwrap(), Response::Pong));
    }
}

#[test]
fn stale_read_window_and_refresh() {
    // A client may see stale RLI info between updates (§3.2): deleted
    // mappings remain visible at the RLI until the next update, and the
    // application recovers by querying the LRC.
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://stale/a", "pfn://1").unwrap();
    for o in dep.force_updates() {
        o.unwrap();
    }
    c.delete_mapping("lfn://stale/a", "pfn://1").unwrap();
    let mut rli = dep.rli_client(0).unwrap();
    // RLI still points at lrc-0 (stale)...
    assert_eq!(rli.rli_query_lfn("lfn://stale/a").unwrap().len(), 1);
    // ...but the LRC correctly reports the mapping gone.
    assert!(c.query_lfn("lfn://stale/a").is_err());
}
