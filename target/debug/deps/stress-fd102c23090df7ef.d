/root/repo/target/debug/deps/stress-fd102c23090df7ef.d: crates/core/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-fd102c23090df7ef.rmeta: crates/core/tests/stress.rs Cargo.toml

crates/core/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
