//! Pipelining suite (tier-1): the transport-level contracts the pipelined
//! RPC path stands on.
//!
//! * out-of-order completion — a stalled slow request must not block the
//!   responses behind it;
//! * depth-1 wire equivalence — the lockstep path's bytes are identical
//!   to the legacy protocol's;
//! * reconnect-with-in-flight replay determinism under a seeded
//!   [`FaultPlan`];
//! * interop with an un-negotiated (old-protocol) peer.
//!
//! The servers here are miniature hand-rolled peers over [`Listener`] —
//! deliberately: this crate sits below `rls-core`, so the suite proves
//! the framing/pipeline layer alone is enough to get these semantics,
//! with no help from the dispatch machinery above it.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rls_faults::FaultPlan;
use rls_net::{connect, connect_with, Conn, ConnectOptions, LinkProfile, Listener, Pipeline};
use rls_proto::{
    Request, Response, PROTOCOL_VERSION, PROTOCOL_VERSION_PIPELINED,
};
use rls_types::{Dn, ErrorCode, RlsResult};

/// A miniature pipelined RLS peer: answers `Ping` immediately and
/// `QueryLfn("slow")` after `stall`, each response on its own thread so
/// completions genuinely race — the shared send half (a lock, like the
/// real server's) is what keeps the socket coherent.
fn spawn_pipelined_peer(stall: Duration) -> std::net::SocketAddr {
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept() {
            let stall = stall;
            std::thread::spawn(move || {
                let (mut rx, tx) = conn.split();
                let tx = Arc::new(Mutex::new(tx));
                while let Ok(Some(frame)) = rx.recv_ref() {
                    let Ok((meta, req)) = Request::decode_framed(frame) else {
                        break;
                    };
                    let id = meta.request_id;
                    let tx = Arc::clone(&tx);
                    std::thread::spawn(move || {
                        let resp = match req {
                            Request::Ping => Response::Pong,
                            Request::QueryLfn(lfn) => {
                                if lfn == "slow" {
                                    std::thread::sleep(stall);
                                }
                                Response::Targets(vec![format!("pfn://{lfn}")])
                            }
                            _ => Response::Pong,
                        };
                        let _ = tx.lock().send(&resp.encode_with_id(id).into_bytes());
                    });
                }
            });
        }
    });
    addr
}

/// Submits a request into the window: stamps the next ID, sends, records.
/// The frame is recorded even when the send dies mid-frame — exactly
/// then it is in flight from the window's point of view and must be
/// replayed after a reconnect.
fn submit(conn: &mut Conn, pipe: &mut Pipeline, req: &Request) -> (u64, RlsResult<()>) {
    let id = pipe.next_id();
    let frame = req
        .encode_framed_with_id(&[], None, Some(id))
        .into_bytes()
        .to_vec();
    let sent = conn.send(&frame);
    pipe.record(id, frame);
    (id, sent)
}

/// Receives one response, matches it by ID, returns `(id, response)`.
fn drain_one(conn: &mut Conn, pipe: &mut Pipeline) -> RlsResult<(u64, Response)> {
    let frame = conn
        .recv()?
        .ok_or_else(|| rls_types::RlsError::protocol("peer closed mid-window"))?;
    let (id, resp) = Response::decode_framed(&frame)?;
    let id = id.expect("pipelined peer echoes the id");
    pipe.complete(id)?;
    Ok((id, resp))
}

#[test]
fn out_of_order_completion_under_stalled_slow_request() {
    let addr = spawn_pipelined_peer(Duration::from_millis(300));
    let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
    let mut pipe = Pipeline::new(3);

    // The slow request goes first; two fast pings follow on the same
    // connection while it stalls server-side.
    let (slow, sent) = submit(&mut conn, &mut pipe, &Request::QueryLfn("slow".into()));
    sent.unwrap();
    let (fast_a, sent) = submit(&mut conn, &mut pipe, &Request::Ping);
    sent.unwrap();
    let (fast_b, sent) = submit(&mut conn, &mut pipe, &Request::Ping);
    sent.unwrap();
    assert_eq!(pipe.in_flight(), 3);

    // Both fast responses must complete *before* the stalled one: the
    // whole point of per-request IDs over strict FIFO responses.
    let (first, _) = drain_one(&mut conn, &mut pipe).unwrap();
    let (second, _) = drain_one(&mut conn, &mut pipe).unwrap();
    let mut early = [first, second];
    early.sort_unstable();
    let mut expected = [fast_a, fast_b];
    expected.sort_unstable();
    assert_eq!(early, expected, "fast responses overtook the stalled one");

    let (last, resp) = drain_one(&mut conn, &mut pipe).unwrap();
    assert_eq!(last, slow);
    assert!(matches!(resp, Response::Targets(t) if t == vec!["pfn://slow".to_string()]));
    assert_eq!(pipe.in_flight(), 0);
}

#[test]
fn depth_one_wire_bytes_are_identical_to_legacy() {
    // The lockstep path never stamps an ID envelope, so its frames are
    // the legacy encoder's frames, byte for byte — for a traced call, an
    // untraced one, and the v1 handshake.
    let req = Request::QueryLfn("lfn://file".into());
    assert_eq!(
        req.encode_framed_with_id(&[0xBEEF], None, None).into_bytes(),
        req.encode_framed(&[0xBEEF], None).into_bytes(),
    );
    assert_eq!(
        req.encode_framed_with_id(&[], None, None).into_bytes(),
        req.encode().into_bytes(),
    );
    let hello = Request::Hello {
        dn: Dn::new("/C=US/O=test"),
        version: PROTOCOL_VERSION,
    };
    assert_eq!(
        hello.encode_framed_with_id(&[], None, None).into_bytes(),
        hello.encode().into_bytes(),
    );
    // And the un-stamped response decodes with no ID, as a legacy peer
    // would produce it.
    let ack = Response::Pong.encode_with_id(None).into_bytes();
    assert_eq!(ack, Response::Pong.encode().into_bytes());
    let (id, resp) = Response::decode_framed(&ack).unwrap();
    assert_eq!(id, None);
    assert!(matches!(resp, Response::Pong));
}

#[test]
fn reconnect_replays_in_flight_requests_deterministically() {
    let addr = spawn_pipelined_peer(Duration::ZERO);
    // Seeded plan: the 4th frame sent (index 3, 0-based) dies mid-frame,
    // severing the connection with requests in flight. Everything about
    // the run is deterministic — which send dies, what is in flight,
    // what replays.
    let plan = Arc::new(FaultPlan::builder(0x5EED).drop_mid_frame("*", 3).build());
    let opts = ConnectOptions {
        timeout: None,
        hook: Some(plan.clone() as Arc<dyn rls_net::FaultHook>),
    };
    let mut conn = connect_with(addr, LinkProfile::unshaped(), None, &opts).unwrap();
    let mut pipe = Pipeline::new(4);

    let mut severed = false;
    for i in 0..4u32 {
        let req = Request::QueryLfn(format!("lfn-{i}"));
        let (_, sent) = submit(&mut conn, &mut pipe, &req);
        if sent.is_err() {
            // Reconnect and replay the window in submission order —
            // including the frame whose send just died, which `submit`
            // already recorded under its original ID.
            severed = true;
            conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
            let frames: Vec<Vec<u8>> =
                pipe.replayable().map(|(_, f)| f.to_vec()).collect();
            for bytes in frames {
                conn.send(&bytes).unwrap();
            }
            pipe.note_replayed();
        }
    }
    assert!(severed, "the seeded plan must sever the 4th send");
    assert_eq!(plan.stats().dropped(), 1);
    assert_eq!(pipe.replayed(), 4, "three in flight plus the dying frame");

    // Every request — replayed or not — resolves exactly once.
    let mut got = Vec::new();
    while pipe.in_flight() > 0 {
        let (id, resp) = drain_one(&mut conn, &mut pipe).unwrap();
        let Response::Targets(t) = resp else {
            panic!("expected targets")
        };
        got.push((id, t));
    }
    got.sort_unstable();
    assert_eq!(got.len(), 4);
    for (i, (id, targets)) in got.iter().enumerate() {
        assert_eq!(*id, i as u64 + 1);
        assert_eq!(targets, &vec![format!("pfn://lfn-{i}")]);
    }
}

#[test]
fn exhausted_reconnects_fail_the_window_as_a_unit() {
    let mut pipe = Pipeline::new(3);
    for i in 0..3u64 {
        let id = pipe.next_id();
        pipe.record(id, vec![i as u8]);
    }
    // No partial outcomes: every in-flight request fails, in submission
    // order, and the window is empty afterwards.
    assert_eq!(pipe.fail_all(), vec![1, 2, 3]);
    assert_eq!(pipe.in_flight(), 0);
    assert_eq!(pipe.failed(), 3);
}

/// A peer that only speaks the original protocol: it rejects a pipelined
/// Hello the way the pre-pipelining server did, and answers exactly one
/// legacy request per Hello'd connection.
fn spawn_old_protocol_peer() -> std::net::SocketAddr {
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            let Ok(Some(frame)) = conn.recv() else { continue };
            match Request::decode_framed(&frame) {
                Ok((_, Request::Hello { version, .. })) if version == PROTOCOL_VERSION => {
                    let ack = Response::HelloAck {
                        server_version: "2.0.9-legacy".into(),
                        is_lrc: true,
                        is_rli: false,
                        // A v1 ack encodes without the negotiation field —
                        // these are the legacy server's exact bytes.
                        protocol: PROTOCOL_VERSION,
                    };
                    conn.send(&ack.encode().into_bytes()).unwrap();
                    if let Ok(Some(frame)) = conn.recv() {
                        // An old decoder knows nothing of ID envelopes;
                        // a legacy-framed request must still decode.
                        let (meta, req) = Request::decode_framed(&frame).unwrap();
                        assert!(
                            meta.request_id.is_none(),
                            "lockstep client leaked an ID envelope to an old peer"
                        );
                        let resp = match req {
                            Request::Ping => Response::Pong,
                            _ => Response::Pong,
                        };
                        conn.send(&resp.encode().into_bytes()).unwrap();
                    }
                }
                Ok((_, Request::Hello { version, .. })) => {
                    let resp = Response::Error(rls_types::RlsError::protocol(format!(
                        "unsupported protocol version {version}"
                    )));
                    conn.send(&resp.encode().into_bytes()).unwrap();
                }
                _ => {}
            }
        }
    });
    addr
}

#[test]
fn interop_with_unnegotiated_old_protocol_peer() {
    let addr = spawn_old_protocol_peer();

    // First dial asks for the pipelined protocol; the old peer refuses
    // with a protocol error (not a hang, not a close-without-answer).
    let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
    let hello_v2 = Request::Hello {
        dn: Dn::new("/C=US/O=new-client"),
        version: PROTOCOL_VERSION_PIPELINED,
    };
    let resp = conn.request(&hello_v2.encode().into_bytes()).unwrap();
    let (_, resp) = Response::decode_framed(&resp).unwrap();
    match resp {
        Response::Error(e) => assert_eq!(e.code(), ErrorCode::Protocol),
        other => panic!("old peer must reject v2, got {other:?}"),
    }

    // Fallback redial with the baseline version: handshake succeeds and a
    // lockstep (un-stamped) exchange completes — full interop, one
    // request in flight, no ID envelopes on the wire.
    let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
    let hello_v1 = Request::Hello {
        dn: Dn::new("/C=US/O=new-client"),
        version: PROTOCOL_VERSION,
    };
    let resp = conn.request(&hello_v1.encode().into_bytes()).unwrap();
    let (id, resp) = Response::decode_framed(&resp).unwrap();
    assert_eq!(id, None);
    match resp {
        Response::HelloAck { protocol, .. } => assert_eq!(protocol, PROTOCOL_VERSION),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    let mut pipe = Pipeline::new(1); // clamped: un-negotiated peer
    let ping = Request::Ping.encode_framed_with_id(&[], None, None).into_bytes();
    conn.send(&ping).unwrap();
    let id = pipe.next_id();
    pipe.record(id, ping.to_vec());
    let frame = conn.recv().unwrap().expect("response");
    let (got, resp) = Response::decode_framed(&frame).unwrap();
    assert_eq!(got, None, "legacy peer cannot stamp IDs");
    pipe.complete(pipe.oldest_id().unwrap()).unwrap();
    assert!(matches!(resp, Response::Pong));
    assert_eq!(pipe.in_flight(), 0);
}
