//! The typed user-attribute model of the Local Replica Catalog.
//!
//! The paper's LRC schema (Figure 3) has a `t_attribute` table of attribute
//! *definitions* — each with a name, an object type (whether it attaches to
//! logical or target names) and a value type — plus one value table per type:
//! `t_str_attr`, `t_int_attr`, `t_flt_attr`, `t_date_attr`. Typical use is
//! attaching a `size` to a physical file name.
//!
//! This module defines the definition/value vocabulary; storage lives in
//! `rls-storage`, and the wire encoding in `rls-proto`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ErrorCode, RlsError, RlsResult};
use crate::time::Timestamp;

/// Which kind of name an attribute attaches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ObjectType {
    /// Attribute of a logical name.
    Logical = 0,
    /// Attribute of a target name.
    Target = 1,
}

impl ObjectType {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Logical),
            1 => Some(Self::Target),
            _ => None,
        }
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Logical => "logical",
            Self::Target => "target",
        })
    }
}

/// The value type of an attribute definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AttrValueType {
    /// UTF-8 string values (`t_str_attr`).
    Str = 0,
    /// 64-bit signed integers (`t_int_attr`).
    Int = 1,
    /// 64-bit floats (`t_flt_attr`).
    Float = 2,
    /// Timestamps (`t_date_attr`).
    Date = 3,
}

impl AttrValueType {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Str),
            1 => Some(Self::Int),
            2 => Some(Self::Float),
            3 => Some(Self::Date),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Str => "string",
            Self::Int => "int",
            Self::Float => "float",
            Self::Date => "date",
        })
    }
}

/// An attribute *definition*: row of the `t_attribute` table.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name, e.g. `"size"`.
    pub name: String,
    /// Whether this attribute attaches to logical or target names.
    pub object_type: ObjectType,
    /// The type of values this attribute holds.
    pub value_type: AttrValueType,
}

impl AttributeDef {
    /// Creates a definition, validating the attribute name.
    pub fn new(
        name: impl Into<String>,
        object_type: ObjectType,
        value_type: AttrValueType,
    ) -> RlsResult<Self> {
        let name = name.into();
        if name.is_empty() || name.len() > 250 || name.chars().any(|c| c.is_control()) {
            return Err(RlsError::new(
                ErrorCode::InvalidName,
                format!("invalid attribute name {name:?}"),
            ));
        }
        Ok(Self {
            name,
            object_type,
            value_type,
        })
    }
}

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// String value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Date (timestamp) value.
    Date(Timestamp),
}

impl AttrValue {
    /// The type tag of this value.
    pub fn value_type(&self) -> AttrValueType {
        match self {
            Self::Str(_) => AttrValueType::Str,
            Self::Int(_) => AttrValueType::Int,
            Self::Float(_) => AttrValueType::Float,
            Self::Date(_) => AttrValueType::Date,
        }
    }

    /// Checks this value against a definition's declared type.
    pub fn check_type(&self, def: &AttributeDef) -> RlsResult<()> {
        if self.value_type() == def.value_type {
            Ok(())
        } else {
            Err(RlsError::new(
                ErrorCode::AttributeTypeMismatch,
                format!(
                    "attribute {:?} expects {} but value is {}",
                    def.name,
                    def.value_type,
                    self.value_type()
                ),
            ))
        }
    }

    /// Total order used for attribute-comparison queries (`>=`, `<=`, ...).
    ///
    /// Values of different types are ordered by type tag; floats use IEEE
    /// total ordering so that the comparison is a genuine total order.
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Self::Str(a), Self::Str(b)) => a.cmp(b),
            (Self::Int(a), Self::Int(b)) => a.cmp(b),
            (Self::Float(a), Self::Float(b)) => a.total_cmp(b),
            (Self::Date(a), Self::Date(b)) => a.cmp(b),
            (a, b) => (a.value_type() as u8).cmp(&(b.value_type() as u8)).then(Ordering::Equal),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Str(s) => write!(f, "{s}"),
            Self::Int(i) => write!(f, "{i}"),
            Self::Float(x) => write!(f, "{x}"),
            Self::Date(t) => write!(f, "{t}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        Self::Str(s.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}
impl From<Timestamp> for AttrValue {
    fn from(v: Timestamp) -> Self {
        Self::Date(v)
    }
}

/// Comparison operators usable in attribute-search queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AttrCompare {
    /// All values of the attribute, regardless of value.
    All = 0,
    /// Equal.
    Eq = 1,
    /// Not equal.
    Ne = 2,
    /// Greater than.
    Gt = 3,
    /// Greater than or equal.
    Ge = 4,
    /// Less than.
    Lt = 5,
    /// Less than or equal.
    Le = 6,
}

impl AttrCompare {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        use AttrCompare::*;
        Some(match v {
            0 => All,
            1 => Eq,
            2 => Ne,
            3 => Gt,
            4 => Ge,
            5 => Lt,
            6 => Le,
            _ => return None,
        })
    }

    /// Evaluates `lhs OP rhs`.
    pub fn eval(self, lhs: &AttrValue, rhs: &AttrValue) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.total_cmp(rhs);
        match self {
            Self::All => true,
            Self::Eq => ord == Equal,
            Self::Ne => ord != Equal,
            Self::Gt => ord == Greater,
            Self::Ge => ord != Less,
            Self::Lt => ord == Less,
            Self::Le => ord != Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(vt: AttrValueType) -> AttributeDef {
        AttributeDef::new("size", ObjectType::Target, vt).unwrap()
    }

    #[test]
    fn type_checking() {
        let d = def(AttrValueType::Int);
        assert!(AttrValue::Int(5).check_type(&d).is_ok());
        let err = AttrValue::Str("5".into()).check_type(&d).unwrap_err();
        assert_eq!(err.code(), ErrorCode::AttributeTypeMismatch);
    }

    #[test]
    fn invalid_def_name_rejected() {
        assert!(AttributeDef::new("", ObjectType::Logical, AttrValueType::Str).is_err());
        assert!(AttributeDef::new("a\nb", ObjectType::Logical, AttrValueType::Str).is_err());
    }

    #[test]
    fn object_and_value_type_round_trip() {
        for v in 0..4u8 {
            assert_eq!(AttrValueType::from_u8(v).unwrap() as u8, v);
        }
        assert!(AttrValueType::from_u8(4).is_none());
        for v in 0..2u8 {
            assert_eq!(ObjectType::from_u8(v).unwrap() as u8, v);
        }
        assert!(ObjectType::from_u8(2).is_none());
    }

    #[test]
    fn comparisons() {
        use AttrCompare::*;
        let five = AttrValue::Int(5);
        let six = AttrValue::Int(6);
        assert!(Eq.eval(&five, &five));
        assert!(Ne.eval(&five, &six));
        assert!(Lt.eval(&five, &six));
        assert!(Le.eval(&five, &five));
        assert!(Gt.eval(&six, &five));
        assert!(Ge.eval(&six, &six));
        assert!(All.eval(&five, &six));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = AttrValue::Float(f64::NAN);
        let one = AttrValue::Float(1.0);
        // IEEE total order: NaN sorts above +inf; comparisons stay total.
        assert!(AttrCompare::Gt.eval(&nan, &one));
        assert!(AttrCompare::Eq.eval(&nan, &nan));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(AttrValue::from(3i64).value_type(), AttrValueType::Int);
        assert_eq!(AttrValue::from(3.5f64).value_type(), AttrValueType::Float);
        assert_eq!(AttrValue::from("x").value_type(), AttrValueType::Str);
        assert_eq!(
            AttrValue::from(Timestamp::from_unix_secs(1)).value_type(),
            AttrValueType::Date
        );
    }

    #[test]
    fn cross_type_order_is_by_type_tag() {
        let s = AttrValue::Str("z".into());
        let i = AttrValue::Int(0);
        assert_eq!(s.total_cmp(&i), std::cmp::Ordering::Less);
    }

    #[test]
    fn compare_from_u8_round_trip() {
        for v in 0..7u8 {
            assert_eq!(AttrCompare::from_u8(v).unwrap() as u8, v);
        }
        assert!(AttrCompare::from_u8(7).is_none());
    }
}
