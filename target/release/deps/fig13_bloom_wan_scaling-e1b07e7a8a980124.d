/root/repo/target/release/deps/fig13_bloom_wan_scaling-e1b07e7a8a980124.d: crates/bench/benches/fig13_bloom_wan_scaling.rs

/root/repo/target/release/deps/fig13_bloom_wan_scaling-e1b07e7a8a980124: crates/bench/benches/fig13_bloom_wan_scaling.rs

crates/bench/benches/fig13_bloom_wan_scaling.rs:
