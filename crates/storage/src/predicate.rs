//! Row predicates for scans.

use rls_types::Glob;

use crate::value::{Row, Value};

/// Comparison operator for [`Predicate::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Self::Eq => ord == Equal,
            Self::Ne => ord != Equal,
            Self::Lt => ord == Less,
            Self::Le => ord != Greater,
            Self::Gt => ord == Greater,
            Self::Ge => ord != Less,
        }
    }
}

/// A filter over rows, evaluated column-by-column.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Column equals value.
    Eq(usize, Value),
    /// String column matches a glob pattern (SQL `LIKE` analogue used by
    /// the wildcard queries of the paper's Table 1).
    Glob(usize, Glob),
    /// Column compares against a value.
    Cmp(usize, CmpOp, Value),
    /// All sub-predicates hold.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against a row.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Self::True => true,
            Self::Eq(col, v) => &row[*col] == v,
            Self::Glob(col, g) => g.matches(row[*col].as_str()),
            Self::Cmp(col, op, v) => op.eval(row[*col].cmp(v)),
            Self::And(ps) => ps.iter().all(|p| p.eval(row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![Value::Int(5), Value::str("lfn://x/file1"), Value::Float(2.5)]
    }

    #[test]
    fn eq_and_cmp() {
        let r = row();
        assert!(Predicate::Eq(0, Value::Int(5)).eval(&r));
        assert!(!Predicate::Eq(0, Value::Int(6)).eval(&r));
        assert!(Predicate::Cmp(2, CmpOp::Gt, Value::Float(2.0)).eval(&r));
        assert!(Predicate::Cmp(2, CmpOp::Le, Value::Float(2.5)).eval(&r));
        assert!(Predicate::Cmp(0, CmpOp::Ne, Value::Int(4)).eval(&r));
        assert!(!Predicate::Cmp(0, CmpOp::Lt, Value::Int(5)).eval(&r));
        assert!(Predicate::Cmp(0, CmpOp::Ge, Value::Int(5)).eval(&r));
    }

    #[test]
    fn glob_predicate() {
        let r = row();
        let g = Glob::new("lfn://x/*").unwrap();
        assert!(Predicate::Glob(1, g).eval(&r));
        let g2 = Glob::new("lfn://y/*").unwrap();
        assert!(!Predicate::Glob(1, g2).eval(&r));
    }

    #[test]
    fn and_and_true() {
        let r = row();
        assert!(Predicate::True.eval(&r));
        let p = Predicate::And(vec![
            Predicate::Eq(0, Value::Int(5)),
            Predicate::Cmp(2, CmpOp::Lt, Value::Float(3.0)),
        ]);
        assert!(p.eval(&r));
        let p2 = Predicate::And(vec![
            Predicate::Eq(0, Value::Int(5)),
            Predicate::Eq(0, Value::Int(6)),
        ]);
        assert!(!p2.eval(&r));
        assert!(Predicate::And(vec![]).eval(&r));
    }
}
