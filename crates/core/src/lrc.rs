//! The LRC service: the catalog plus the bookkeeping that feeds soft-state
//! updates.
//!
//! Every mapping mutation flows through this layer so that:
//!
//! * **immediate mode** can journal LFN-level changes (`added`/`removed`)
//!   for the next incremental update (§3.3);
//! * **Bloom mode** can maintain a counting filter incrementally — the
//!   paper's point that filter generation is "a one-time cost, since
//!   subsequent updates to LRC mappings can be reflected by setting or
//!   unsetting the corresponding bits" (§3.5, Table 3 column 3).
//!
//! The catalog itself is a [`ShardedCatalog`]: N independent engines routed
//! by LFN hash ([`LrcConfig::shards`], default 1). Mutations take only the
//! owning shard's write lock; the commit sequence is stamped *inside* that
//! critical section, so the delta journal and counting Bloom filter still
//! observe every LFN's changes in commit order — per-LFN ordering is what
//! the soft-state plane needs, and a name's commits always serialize on
//! its own shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use rls_bloom::{BloomFilter, BloomParams, CountingBloomFilter};
use rls_metrics::{Counter, Registry};
use rls_storage::{BulkAttrOp, BulkMappingOp, MappingChange};
use rls_types::{Mapping, ObjectType, RlsError, RlsResult};

use crate::config::{LrcConfig, UpdateMode};
use crate::shard::ShardedCatalog;

/// Cap on buffered originating trace IDs per delta journal; beyond this a
/// flush simply attributes the send to the IDs it kept (the span journal is
/// best-effort observability, not an audit log).
const TRACE_IDS_CAP: usize = 1024;

/// Journal of LFN-level changes since the last incremental update.
///
/// The wire form of a delta (`SoftStateDelta`) carries separate
/// added/removed lists and the RLI applies **all adds before all removes**,
/// so the journal maintains an ordering invariant instead of event order: a
/// name sits in `removed` only if it is absent *as of the newest change
/// folded in*. [`DeltaLog::note_add`] cancels any buffered removal of the
/// same name (a delete-then-recreate nets to "present", and a stale removal
/// applied after the re-add would wrongly win at the RLI). Changes are
/// folded in commit order — [`LrcService`] stamps them with a commit
/// sequence inside the catalog's write critical section.
#[derive(Debug, Default)]
pub struct DeltaLog {
    /// Logical names registered since the last flush.
    pub added: Vec<String>,
    /// Logical names fully removed since the last flush.
    pub removed: Vec<String>,
    /// Trace IDs of the client operations that produced these changes
    /// (deduplicated consecutively, capped at [`TRACE_IDS_CAP`]); the
    /// updater attributes its `softstate.delta_send` spans to them so a
    /// trace follows the change across the soft-state plane.
    pub trace_ids: Vec<u64>,
    /// Commit sequence of the newest change folded into this log (0 when
    /// empty). Monotonic across the service; lets tests and debugging
    /// assert journal order matches commit order.
    pub seq: u64,
}

impl DeltaLog {
    /// Total buffered changes (trace IDs are metadata, not changes).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Folds in "this name now exists", stamped with its commit sequence.
    /// Cancels any buffered removal of the same name (see type docs).
    pub fn note_add(&mut self, name: String, seq: u64) {
        self.removed.retain(|n| n != &name);
        self.added.push(name);
        self.seq = self.seq.max(seq);
    }

    /// Folds in "this name is now gone", stamped with its commit sequence.
    pub fn note_remove(&mut self, name: String, seq: u64) {
        self.removed.push(name);
        self.seq = self.seq.max(seq);
    }

    /// Appends a strictly newer log after this one, preserving the
    /// removal-cancellation invariant across the merge (a re-add in the
    /// newer log must cancel a removal buffered in the older one).
    pub fn merge_newer(&mut self, newer: DeltaLog) {
        for name in newer.added {
            self.note_add(name, newer.seq);
        }
        for name in newer.removed {
            self.note_remove(name, newer.seq);
        }
        for id in newer.trace_ids {
            self.note_trace(id);
        }
        self.seq = self.seq.max(newer.seq);
    }

    fn note_trace(&mut self, trace_id: u64) {
        if trace_id != 0
            && self.trace_ids.last() != Some(&trace_id)
            && self.trace_ids.len() < TRACE_IDS_CAP
        {
            self.trace_ids.push(trace_id);
        }
    }
}

/// The LRC role of a server.
pub struct LrcService {
    /// The sharded catalog: per-shard engines, each readable concurrently
    /// and writable exclusively under its own lock.
    catalog: ShardedCatalog,
    config: LrcConfig,
    /// Pre-resolved `storage.shard.<i>.commits` counter handles, one per
    /// shard, so the write path never takes the registry lock.
    shard_commits: Vec<Counter>,
    deltas: Mutex<DeltaLog>,
    /// Per-RLI backlog of deltas whose send failed: the partial-flush
    /// requeue target. Keyed by the RLI address exactly as it appears on
    /// the update list, so a delivered target never re-receives deltas
    /// that only failed toward a *different* RLI.
    backlog: Mutex<HashMap<String, DeltaLog>>,
    /// Counting filter maintained incrementally in Bloom mode.
    bloom: Option<Mutex<CountingBloomFilter>>,
    bloom_params: BloomParams,
    /// Times the filter had to be regenerated from the catalog.
    bloom_regenerations: AtomicU64,
    /// Commit sequence: bumped for every journaled LFN-level change
    /// *inside* the catalog's write critical section, so delta-journal and
    /// Bloom-filter order always matches commit order (two concurrent
    /// writers can no longer publish delete/add to the RLI inverted).
    commit_seq: AtomicU64,
    queries: AtomicU64,
    /// Role-level metrics: `storage.*` mutation/query latencies plus the
    /// `softstate.*` series recorded by the updater.
    metrics: Registry,
}

impl std::fmt::Debug for LrcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LrcService").finish_non_exhaustive()
    }
}

/// Initial counting-filter capacity when the catalog is still empty. The
/// filter is regenerated at the right size (10 bits per mapping, §3.4) by
/// the next [`LrcService::bloom_snapshot`] once the catalog outgrows it.
const INITIAL_BLOOM_CAPACITY: u64 = 4_096;

impl LrcService {
    /// Builds the service, opening or creating the catalog (replaying one
    /// WAL per shard for durable configurations).
    pub fn new(config: LrcConfig) -> RlsResult<Self> {
        let catalog = ShardedCatalog::open(&config)?;
        let bloom_params = match config.update.mode {
            UpdateMode::Bloom { params, .. } => params,
            _ => BloomParams::PAPER,
        };
        let bloom = if config.update.mode.is_bloom() {
            let capacity = catalog.lfn_count().max(INITIAL_BLOOM_CAPACITY);
            let mut filter = CountingBloomFilter::with_capacity(bloom_params, capacity);
            catalog.for_each_lfn(|lfn| filter.insert(lfn));
            Some(Mutex::new(filter))
        } else {
            None
        };
        let metrics = Registry::new();
        let shard_commits = (0..catalog.shard_count())
            .map(|i| metrics.counter(&format!("storage.shard.{i}.commits")))
            .collect();
        Ok(Self {
            catalog,
            config,
            shard_commits,
            deltas: Mutex::new(DeltaLog::default()),
            backlog: Mutex::new(HashMap::new()),
            bloom,
            bloom_params,
            bloom_regenerations: AtomicU64::new(0),
            commit_seq: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            metrics,
        })
    }

    /// The role configuration.
    pub fn config(&self) -> &LrcConfig {
        &self.config
    }

    /// The sharded catalog (reads, per-shard access, fan-out queries).
    pub fn catalog(&self) -> &ShardedCatalog {
        &self.catalog
    }

    /// Refreshes the `storage.shard.*` skew gauges from live per-shard
    /// mapping counts: `storage.shard.imbalance_ppm` is the hottest
    /// shard's excess over the mean, in parts per million (0 = perfectly
    /// balanced or empty). Called on the telemetry sampler's cadence
    /// (`ServerState::refresh_gauges`), so the stats RPC reads a current
    /// value without paying the per-shard count walk itself.
    pub fn record_shard_gauges(&self) {
        let counts = self.catalog.per_shard_mapping_counts();
        let total: u64 = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / counts.len() as f64;
        let imbalance = if mean > 0.0 {
            (((max as f64 - mean) / mean) * 1_000_000.0) as u64
        } else {
            0
        };
        self.metrics
            .counter("storage.shard.imbalance_ppm")
            .set(imbalance);
    }

    /// The LRC's metrics registry, merged into the server's stats report.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Counts a served query (wildcard and point) for the stats RPC.
    pub fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries served so far via the RPC surface.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Journals one mapping mutation's LFN-level effect. MUST be called
    /// while the catalog write guard is still held: the commit-sequence
    /// stamp and the delta/Bloom updates happen inside the critical
    /// section, so journal order always matches commit order (the fix for
    /// the delete-then-add inversion two concurrent writers could race
    /// into when these locks were taken after the guard dropped).
    fn note_change(&self, m: &Mapping, change: MappingChange, trace_id: u64) {
        if change.lfn_created || change.lfn_deleted {
            let seq = self.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let track_deltas = matches!(self.config.update.mode, UpdateMode::Immediate { .. });
            if track_deltas {
                let mut log = self.deltas.lock();
                if change.lfn_created {
                    log.note_add(m.logical.as_str().to_owned(), seq);
                } else {
                    log.note_remove(m.logical.as_str().to_owned(), seq);
                }
                log.note_trace(trace_id);
            }
            if let Some(bloom) = &self.bloom {
                let mut filter = bloom.lock();
                if change.lfn_created {
                    filter.insert(m.logical.as_str());
                } else if !filter.remove(m.logical.as_str()) {
                    // The guard refused a remove of a key the filter never
                    // saw — accounting drift worth surfacing (the filter
                    // heals at the next regeneration).
                    self.metrics.counter("softstate.bloom_remove_misses").inc();
                }
            }
        }
    }

    /// `create` through the service (journals the change).
    pub fn create_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.create_mapping_traced(m, 0)
    }

    /// `create` attributed to a trace (0 means untraced).
    pub fn create_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = {
            let (shard, mut db) = self.catalog.write_owner(m.logical.as_str());
            let change = db.create_mapping(m)?;
            self.note_change(m, change, trace_id);
            self.shard_commits[shard].inc();
            change
        };
        self.metrics.histogram("storage.create").record(t0.elapsed());
        Ok(change)
    }

    /// `add` through the service.
    pub fn add_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.add_mapping_traced(m, 0)
    }

    /// `add` attributed to a trace (0 means untraced).
    pub fn add_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = {
            let (shard, mut db) = self.catalog.write_owner(m.logical.as_str());
            let change = db.add_mapping(m)?;
            self.note_change(m, change, trace_id);
            self.shard_commits[shard].inc();
            change
        };
        self.metrics.histogram("storage.add").record(t0.elapsed());
        Ok(change)
    }

    /// `delete` through the service.
    pub fn delete_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.delete_mapping_traced(m, 0)
    }

    /// `delete` attributed to a trace (0 means untraced).
    pub fn delete_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = {
            let (shard, mut db) = self.catalog.write_owner(m.logical.as_str());
            let change = db.delete_mapping(m)?;
            self.note_change(m, change, trace_id);
            self.shard_commits[shard].inc();
            change
        };
        self.metrics.histogram("storage.delete").record(t0.elapsed());
        Ok(change)
    }

    /// Applies a bulk mapping batch through the group-commit path. Items
    /// are partitioned by owning shard; each shard's sub-batch reaches that
    /// shard's WAL as **one** record with one flush
    /// ([`rls_storage::LrcDatabase::bulk_mappings_indexed`]), and the delta
    /// journal and counting Bloom filter are updated in commit order inside
    /// each shard's critical section. Shards are visited in ascending order
    /// holding one shard lock at a time, so concurrent bulks on disjoint
    /// shards proceed in parallel. Per-item failures occupy their `Err`
    /// slot without aborting the rest — on any shard; a failed item stages
    /// nothing anywhere.
    ///
    /// With [`LrcConfig::group_commit`] disabled the batch degrades to the
    /// per-item commit path (one WAL record + flush each) — the
    /// write-amplified behaviour Fig. 11 compares against.
    pub fn bulk_mappings_traced(
        &self,
        op: BulkMappingOp,
        items: &[Mapping],
        trace_id: u64,
    ) -> RlsResult<Vec<Result<MappingChange, RlsError>>> {
        let t0 = std::time::Instant::now();
        let n_shards = self.catalog.shard_count();
        let mut group_commits = 0u64;
        let mut shards_touched = 0u64;
        let results = if !self.config.group_commit {
            // Per-item commit path: each item routes to its owner shard and
            // pays its own WAL record + flush.
            items
                .iter()
                .map(|m| {
                    let (shard, mut db) = self.catalog.write_owner(m.logical.as_str());
                    let r = match op {
                        BulkMappingOp::Create => db.create_mapping(m),
                        BulkMappingOp::Add => db.add_mapping(m),
                        BulkMappingOp::Delete => db.delete_mapping(m),
                    };
                    if let Ok(change) = r {
                        self.note_change(m, change, trace_id);
                        self.shard_commits[shard].inc();
                    }
                    r
                })
                .collect()
        } else if n_shards == 1 {
            // Single shard: the whole batch is one transaction, exactly the
            // pre-sharding behaviour.
            let mut db = self.catalog.shard(0).write();
            let results = db.bulk_mappings(op, items)?;
            for (m, r) in items.iter().zip(&results) {
                if let Ok(change) = r {
                    self.note_change(m, *change, trace_id);
                }
            }
            if results.iter().any(Result::is_ok) {
                group_commits = 1;
                shards_touched = 1;
                self.shard_commits[0].inc();
            }
            results
        } else {
            // Fan out: group item indices by owning shard, then run one
            // group-committed transaction per shard, merging results back
            // into the caller's slots.
            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
            for (i, m) in items.iter().enumerate() {
                by_shard[self.catalog.shard_of(m.logical.as_str())].push(i);
            }
            let mut results: Vec<Option<Result<MappingChange, RlsError>>> =
                (0..items.len()).map(|_| None).collect();
            for (shard, idx) in by_shard.iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                let mut db = self.catalog.shard(shard).write();
                let shard_results = db.bulk_mappings_indexed(op, items, idx)?;
                let mut any_ok = false;
                for (&i, r) in idx.iter().zip(shard_results) {
                    if let Ok(change) = &r {
                        self.note_change(&items[i], *change, trace_id);
                        any_ok = true;
                    }
                    results[i] = Some(r);
                }
                if any_ok {
                    group_commits += 1;
                    shards_touched += 1;
                    self.shard_commits[shard].inc();
                }
            }
            results
                .into_iter()
                .map(|r| r.expect("every item routed to exactly one shard"))
                .collect()
        };
        self.metrics
            .histogram("storage.bulk_batch_size")
            .record_micros(items.len() as u64);
        if group_commits > 0 {
            self.metrics.counter("wal.group_commits").add(group_commits);
            // Cross-shard fan-out width: how many shard transactions one
            // bulk request became (a histogram over counts, not latencies).
            self.metrics
                .histogram("storage.shard.bulk_fanout")
                .record_micros(shards_touched);
        }
        let name = match op {
            BulkMappingOp::Create => "storage.bulk_create",
            BulkMappingOp::Add => "storage.bulk_add",
            BulkMappingOp::Delete => "storage.bulk_delete",
        };
        self.metrics.histogram(name).record(t0.elapsed());
        Ok(results)
    }

    /// Untraced [`Self::bulk_mappings_traced`].
    pub fn bulk_mappings(
        &self,
        op: BulkMappingOp,
        items: &[Mapping],
    ) -> RlsResult<Vec<Result<MappingChange, RlsError>>> {
        self.bulk_mappings_traced(op, items, 0)
    }

    /// Applies a bulk attribute batch as one group commit per shard
    /// (attributes are not part of soft state, so no journaling — just the
    /// single-flush write path). Logical-object items group-commit on
    /// their owner shard; target-object items route through the catalog's
    /// broadcast path individually, since a target's rows may live on
    /// several shards.
    pub fn bulk_attributes(
        &self,
        items: &[BulkAttrOp<'_>],
    ) -> RlsResult<Vec<Result<(), RlsError>>> {
        fn obj_of<'a>(op: &BulkAttrOp<'a>) -> (&'a str, ObjectType) {
            match *op {
                BulkAttrOp::Add { obj, objtype, .. }
                | BulkAttrOp::Modify { obj, objtype, .. }
                | BulkAttrOp::Remove { obj, objtype, .. } => (obj, objtype),
            }
        }
        let t0 = std::time::Instant::now();
        let n_shards = self.catalog.shard_count();
        let results = if !self.config.group_commit {
            items
                .iter()
                .map(|op| match *op {
                    BulkAttrOp::Add {
                        obj,
                        objtype,
                        name,
                        value,
                    } => self.catalog.add_attribute(obj, objtype, name, value),
                    BulkAttrOp::Modify {
                        obj,
                        objtype,
                        name,
                        value,
                    } => self.catalog.modify_attribute(obj, objtype, name, value),
                    BulkAttrOp::Remove { obj, objtype, name } => {
                        self.catalog.remove_attribute(obj, objtype, name)
                    }
                })
                .collect()
        } else if n_shards == 1 {
            self.catalog.shard(0).write().bulk_attributes(items)?
        } else {
            // Partition: logical items by owner shard (one group commit
            // each), target items through the broadcast router.
            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
            let mut broadcast: Vec<usize> = Vec::new();
            for (i, op) in items.iter().enumerate() {
                let (obj, objtype) = obj_of(op);
                match objtype {
                    ObjectType::Logical => by_shard[self.catalog.shard_of(obj)].push(i),
                    ObjectType::Target => broadcast.push(i),
                }
            }
            let mut results: Vec<Option<Result<(), RlsError>>> =
                (0..items.len()).map(|_| None).collect();
            for (shard, idx) in by_shard.iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                let subset: Vec<BulkAttrOp<'_>> = idx.iter().map(|&i| items[i]).collect();
                let shard_results = self.catalog.shard(shard).write().bulk_attributes(&subset)?;
                for (&i, r) in idx.iter().zip(shard_results) {
                    results[i] = Some(r);
                }
            }
            for i in broadcast {
                let r = match items[i] {
                    BulkAttrOp::Add {
                        obj,
                        objtype,
                        name,
                        value,
                    } => self.catalog.add_attribute(obj, objtype, name, value),
                    BulkAttrOp::Modify {
                        obj,
                        objtype,
                        name,
                        value,
                    } => self.catalog.modify_attribute(obj, objtype, name, value),
                    BulkAttrOp::Remove { obj, objtype, name } => {
                        self.catalog.remove_attribute(obj, objtype, name)
                    }
                };
                results[i] = Some(r);
            }
            results
                .into_iter()
                .map(|r| r.expect("every item routed"))
                .collect()
        };
        self.metrics
            .histogram("storage.bulk_batch_size")
            .record_micros(items.len() as u64);
        if self.config.group_commit && results.iter().any(Result::is_ok) {
            self.metrics.counter("wal.group_commits").inc();
        }
        self.metrics.histogram("storage.bulk_attr").record(t0.elapsed());
        Ok(results)
    }

    /// The commit sequence of the newest journaled LFN-level change.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Relaxed)
    }

    /// Drains the delta journal (the payload of one incremental update).
    pub fn take_deltas(&self) -> DeltaLog {
        std::mem::take(&mut *self.deltas.lock())
    }

    /// Buffered delta count (drives threshold-triggered flushes).
    pub fn pending_deltas(&self) -> usize {
        self.deltas.lock().len()
    }

    /// Re-queues deltas that failed to send so they retry next cycle.
    pub fn requeue_deltas(&self, log: DeltaLog) {
        let mut cur = self.deltas.lock();
        // Prepend: the failed log is older than whatever has accumulated
        // since, and the normalizing merge keeps a newer re-add from being
        // shadowed by the requeued removal.
        let mut restored = log;
        restored.merge_newer(std::mem::take(&mut *cur));
        *cur = restored;
    }

    /// Takes the failed-send backlog for one RLI target, if any. The
    /// caller (the updater) prepends it to the fresh payload so a target
    /// that missed a flush catches up in order on the next one.
    pub fn take_backlog(&self, target: &str) -> Option<DeltaLog> {
        self.backlog.lock().remove(target)
    }

    /// Queues deltas that failed to reach `target` for that target's next
    /// flush. Appends after any backlog already waiting (older first).
    pub fn put_backlog(&self, target: &str, log: DeltaLog) {
        if log.is_empty() && log.trace_ids.is_empty() {
            return;
        }
        let mut map = self.backlog.lock();
        map.entry(target.to_owned()).or_default().merge_newer(log);
    }

    /// Total deltas parked in per-target backlogs (a target that missed a
    /// flush counts its copy; the same LFN toward two dead RLIs counts
    /// twice, because it must be re-sent twice).
    pub fn pending_backlog(&self) -> usize {
        self.backlog.lock().values().map(DeltaLog::len).sum()
    }

    /// Drops backlog entries for targets no longer on the update list
    /// (an RLI removed from `t_rli` must not pin its queue forever).
    pub fn prune_backlog(&self, live: impl Fn(&str) -> bool) -> usize {
        let mut map = self.backlog.lock();
        let before: usize = map.values().map(DeltaLog::len).sum();
        map.retain(|target, _| live(target));
        before - map.values().map(DeltaLog::len).sum::<usize>()
    }

    /// Produces the Bloom bitmap for the next update, regenerating the
    /// counting filter from the catalog when the catalog has outgrown (or
    /// far undershoots) the filter's design capacity.
    ///
    /// Returns `(bitmap, generation_cost_seconds)` where the cost is zero
    /// when the incremental filter could be reused — the distinction
    /// Table 3's columns 2 and 3 draw.
    pub fn bloom_snapshot(&self) -> (BloomFilter, f64) {
        let Some(bloom) = self.bloom.as_ref() else {
            // Not in Bloom update mode: no incrementally-maintained filter
            // exists, so generate one from the catalog (full cost, every
            // time) — what a pre-counting-filter implementation would do.
            // All shard read guards are taken (ascending) for a consistent
            // point-in-time scan.
            let t0 = std::time::Instant::now();
            let guards = self.catalog.read_all();
            let n: u64 = guards.iter().map(|g| g.lfn_count()).sum();
            let mut filter =
                BloomFilter::with_capacity(self.bloom_params, n.max(INITIAL_BLOOM_CAPACITY));
            for g in &guards {
                g.for_each_lfn(|lfn| filter.insert(lfn));
            }
            return (filter, t0.elapsed().as_secs_f64());
        };
        // Shard read guards (ascending) before the filter lock — the same
        // order writers use (owner shard guard, then filter), so a regen
        // scan can never deadlock with a writer or miss its change.
        let guards = self.catalog.read_all();
        let n: u64 = guards.iter().map(|g| g.lfn_count()).sum();
        let mut filter = bloom.lock();
        let capacity_bits = filter.bit_len();
        let needed_bits = self
            .bloom_params
            .bits_for_capacity(n.max(INITIAL_BLOOM_CAPACITY));
        // Regenerate when the live filter is under-provisioned (fpp would
        // exceed design) or wildly over-provisioned (wasting update bytes).
        let regen = needed_bits > capacity_bits || needed_bits * 16 < capacity_bits;
        if regen {
            let t0 = std::time::Instant::now();
            let mut fresh = CountingBloomFilter::with_capacity(
                self.bloom_params,
                n.max(INITIAL_BLOOM_CAPACITY),
            );
            for g in &guards {
                g.for_each_lfn(|lfn| fresh.insert(lfn));
            }
            *filter = fresh;
            self.bloom_regenerations.fetch_add(1, Ordering::Relaxed);
            let cost = t0.elapsed().as_secs_f64();
            (filter.to_bitmap(), cost)
        } else {
            (filter.to_bitmap(), 0.0)
        }
    }

    /// Times the counting filter has been rebuilt from the catalog.
    pub fn bloom_regenerations(&self) -> u64 {
        self.bloom_regenerations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdateConfig;
    use std::time::Duration;

    fn service(mode: UpdateMode) -> LrcService {
        LrcService::new(LrcConfig {
            update: UpdateConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    #[test]
    fn immediate_mode_journals_lfn_level_changes() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        svc.add_mapping(&m("lfn://a", "pfn://2")).unwrap(); // no LFN change
        svc.create_mapping(&m("lfn://b", "pfn://3")).unwrap();
        svc.delete_mapping(&m("lfn://b", "pfn://3")).unwrap();
        let log = svc.take_deltas();
        assert_eq!(log.added, vec!["lfn://a", "lfn://b"]);
        assert_eq!(log.removed, vec!["lfn://b"]);
        assert!(svc.take_deltas().is_empty());
    }

    #[test]
    fn recreate_cancels_buffered_removal() {
        // Regression: the wire delta applies adds before removes, so a
        // buffered removal surviving a later re-add would delete the name
        // at the RLI even though it exists. note_add must cancel it.
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://x", "pfn://1")).unwrap();
        svc.take_deltas();
        svc.delete_mapping(&m("lfn://x", "pfn://1")).unwrap();
        svc.create_mapping(&m("lfn://x", "pfn://2")).unwrap();
        let log = svc.take_deltas();
        assert_eq!(log.added, vec!["lfn://x"]);
        assert!(log.removed.is_empty(), "stale removal survived: {log:?}");
        // Create-then-delete still nets to absent (add applied, then remove).
        svc.create_mapping(&m("lfn://y", "pfn://1")).unwrap();
        svc.delete_mapping(&m("lfn://y", "pfn://1")).unwrap();
        let log = svc.take_deltas();
        assert_eq!(log.removed, vec!["lfn://y"]);
    }

    #[test]
    fn requeue_then_readd_cancels_requeued_removal() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://x", "pfn://1")).unwrap();
        svc.take_deltas();
        svc.delete_mapping(&m("lfn://x", "pfn://1")).unwrap();
        let failed = svc.take_deltas(); // removal that failed to send
        svc.create_mapping(&m("lfn://x", "pfn://2")).unwrap();
        svc.requeue_deltas(failed);
        let merged = svc.take_deltas();
        assert_eq!(merged.added, vec!["lfn://x"]);
        assert!(merged.removed.is_empty(), "requeued removal must be cancelled");
        // Same invariant through the per-target backlog.
        svc.delete_mapping(&m("lfn://x", "pfn://2")).unwrap();
        svc.put_backlog("rli-a", svc.take_deltas());
        svc.create_mapping(&m("lfn://x", "pfn://3")).unwrap();
        svc.put_backlog("rli-a", svc.take_deltas());
        let got = svc.take_backlog("rli-a").unwrap();
        assert_eq!(got.added, vec!["lfn://x"]);
        assert!(got.removed.is_empty());
    }

    #[test]
    fn journal_order_matches_commit_order_under_concurrency() {
        // Replaying the delta journal over the last-flushed snapshot must
        // always reproduce the catalog's LFN set, no matter how writers
        // interleave. Before notes moved inside the write critical
        // section, a delete/create race could invert the journal.
        use std::collections::BTreeSet;
        use std::sync::Arc;
        let svc = Arc::new(service(UpdateMode::immediate_default()));
        svc.create_mapping(&m("lfn://hot", "pfn://seed")).unwrap();
        let baseline: BTreeSet<String> =
            svc.take_deltas().added.into_iter().collect();
        let churn = |svc: Arc<LrcService>, tgt: &'static str| {
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let _ = svc.delete_mapping(&m("lfn://hot", tgt));
                    let _ = svc.create_mapping(&m("lfn://hot", tgt));
                }
            })
        };
        let h1 = churn(svc.clone(), "pfn://a");
        let h2 = churn(svc.clone(), "pfn://b");
        h1.join().unwrap();
        h2.join().unwrap();
        let log = svc.take_deltas();
        let mut replayed = baseline;
        for a in &log.added {
            replayed.insert(a.clone());
        }
        for r in &log.removed {
            replayed.remove(r);
        }
        let actual: BTreeSet<String> = svc
            .catalog()
            .all_lfns()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(replayed, actual, "journal replay diverged from catalog");
        assert!(log.seq <= svc.commit_seq());
    }

    #[test]
    fn bulk_apply_journals_in_commit_order() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://pre", "pfn://pre")).unwrap();
        svc.take_deltas();
        let items = vec![
            m("lfn://b0", "pfn://0"),
            m("lfn://pre", "pfn://x"), // fails: already registered
            m("lfn://b1", "pfn://1"),
        ];
        let results = svc
            .bulk_mappings(rls_storage::BulkMappingOp::Create, &items)
            .unwrap();
        assert!(results[0].is_ok() && results[1].is_err() && results[2].is_ok());
        let log = svc.take_deltas();
        assert_eq!(log.added, vec!["lfn://b0", "lfn://b1"]);
        assert!(log.removed.is_empty());
        // One group commit for the whole batch.
        assert_eq!(svc.catalog().engine_stats().group_commits, 1);
        assert_eq!(svc.metrics().counter("wal.group_commits").get(), 1);
    }

    #[test]
    fn bulk_apply_maintains_bloom_filter() {
        let svc = service(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER,
        });
        let items: Vec<Mapping> = (0..20)
            .map(|i| m(&format!("lfn://bb/{i}"), &format!("pfn://bb/{i}")))
            .collect();
        svc.bulk_mappings(rls_storage::BulkMappingOp::Create, &items)
            .unwrap();
        let (snap, cost) = svc.bloom_snapshot();
        assert!(snap.contains("lfn://bb/0") && snap.contains("lfn://bb/19"));
        assert_eq!(cost, 0.0, "bulk path must maintain the filter incrementally");
        svc.bulk_mappings(rls_storage::BulkMappingOp::Delete, &items[..10])
            .unwrap();
        let (snap, _) = svc.bloom_snapshot();
        assert!(!snap.contains("lfn://bb/3"));
        assert!(snap.contains("lfn://bb/15"));
    }

    #[test]
    fn non_immediate_modes_skip_the_journal() {
        let svc = service(UpdateMode::Full {
            interval: Duration::from_secs(60),
        });
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        assert_eq!(svc.pending_deltas(), 0);
    }

    #[test]
    fn immediate_mode_journals_originating_trace_ids() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping_traced(&m("lfn://a", "pfn://1"), 77).unwrap();
        svc.add_mapping_traced(&m("lfn://a", "pfn://2"), 77).unwrap(); // no LFN change
        svc.create_mapping_traced(&m("lfn://b", "pfn://3"), 77).unwrap(); // consecutive dupe
        svc.delete_mapping_traced(&m("lfn://b", "pfn://3"), 88).unwrap();
        svc.create_mapping_traced(&m("lfn://c", "pfn://4"), 0).unwrap(); // untraced
        let log = svc.take_deltas();
        assert_eq!(log.trace_ids, vec![77, 88]);
        // Requeue merges the IDs back for the retry.
        svc.create_mapping_traced(&m("lfn://d", "pfn://5"), 99).unwrap();
        svc.requeue_deltas(log);
        assert_eq!(svc.take_deltas().trace_ids, vec![77, 88, 99]);
    }

    #[test]
    fn requeue_preserves_order() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        let log = svc.take_deltas();
        svc.create_mapping(&m("lfn://b", "pfn://2")).unwrap();
        svc.requeue_deltas(log);
        let merged = svc.take_deltas();
        assert_eq!(merged.added, vec!["lfn://a", "lfn://b"]);
    }

    #[test]
    fn backlog_is_scoped_per_target() {
        let svc = service(UpdateMode::immediate_default());
        assert_eq!(svc.pending_backlog(), 0);
        assert!(svc.take_backlog("rli-a").is_none());
        let log = DeltaLog {
            added: vec!["lfn://x".into()],
            removed: vec![],
            trace_ids: vec![7],
            seq: 1,
        };
        svc.put_backlog("rli-a", log);
        assert_eq!(svc.pending_backlog(), 1);
        // Another target's backlog is independent.
        assert!(svc.take_backlog("rli-b").is_none());
        let got = svc.take_backlog("rli-a").unwrap();
        assert_eq!(got.added, vec!["lfn://x"]);
        assert_eq!(got.trace_ids, vec![7]);
        // take drains it.
        assert!(svc.take_backlog("rli-a").is_none());
        assert_eq!(svc.pending_backlog(), 0);
    }

    #[test]
    fn backlog_appends_in_failure_order() {
        let svc = service(UpdateMode::immediate_default());
        svc.put_backlog(
            "rli-a",
            DeltaLog {
                added: vec!["lfn://first".into()],
                removed: vec![],
                trace_ids: vec![1],
                seq: 1,
            },
        );
        svc.put_backlog(
            "rli-a",
            DeltaLog {
                added: vec!["lfn://second".into()],
                removed: vec!["lfn://first".into()],
                trace_ids: vec![1, 2],
                seq: 2,
            },
        );
        let got = svc.take_backlog("rli-a").unwrap();
        assert_eq!(got.added, vec!["lfn://first", "lfn://second"]);
        assert_eq!(got.removed, vec!["lfn://first"]);
        // note_trace dedups the consecutive repeat of 1.
        assert_eq!(got.trace_ids, vec![1, 2]);
        // Empty logs are not stored.
        svc.put_backlog("rli-a", DeltaLog::default());
        assert!(svc.take_backlog("rli-a").is_none());
    }

    #[test]
    fn prune_backlog_drops_dead_targets() {
        let svc = service(UpdateMode::immediate_default());
        for t in ["rli-a", "rli-b"] {
            svc.put_backlog(
                t,
                DeltaLog {
                    added: vec![format!("lfn://for-{t}")],
                    removed: vec![],
                    trace_ids: vec![],
                    seq: 0,
                },
            );
        }
        let dropped = svc.prune_backlog(|t| t == "rli-a");
        assert_eq!(dropped, 1);
        assert_eq!(svc.pending_backlog(), 1);
        assert!(svc.take_backlog("rli-a").is_some());
    }

    #[test]
    fn bloom_mode_maintains_filter_incrementally() {
        let svc = service(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER,
        });
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        svc.create_mapping(&m("lfn://b", "pfn://2")).unwrap();
        let (snap, cost) = svc.bloom_snapshot();
        assert!(snap.contains("lfn://a"));
        assert!(snap.contains("lfn://b"));
        assert_eq!(cost, 0.0, "incremental path must not regenerate");
        svc.delete_mapping(&m("lfn://a", "pfn://1")).unwrap();
        let (snap, _) = svc.bloom_snapshot();
        assert!(!snap.contains("lfn://a"));
        assert!(snap.contains("lfn://b"));
        assert_eq!(svc.bloom_regenerations(), 0);
    }

    #[test]
    fn bloom_regenerates_when_catalog_outgrows_filter() {
        let svc = service(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER,
        });
        // INITIAL_BLOOM_CAPACITY is 100k; inserting beyond it must force a
        // regeneration on the next snapshot. Use a smaller proxy: shrink by
        // inserting > capacity would be slow, so instead check the
        // over-provisioning path never fires with few entries...
        let (_, cost) = svc.bloom_snapshot();
        assert_eq!(cost, 0.0);
        // ...and the under-provisioning predicate itself:
        let params = BloomParams::PAPER;
        assert!(params.bits_for_capacity(200_000) > params.bits_for_capacity(100_000));
    }

    #[test]
    fn bloom_filter_rebuilt_on_startup_from_durable_catalog() {
        let dir = std::env::temp_dir().join(format!("rls-lrcsvc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("svc.wal");
        let _ = std::fs::remove_file(&wal);
        let cfg = || LrcConfig {
            wal_path: Some(wal.clone()),
            update: UpdateConfig {
                mode: UpdateMode::Bloom {
                    interval: Duration::from_secs(60),
                    params: BloomParams::PAPER,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        {
            let svc = LrcService::new(cfg()).unwrap();
            svc.create_mapping(&m("lfn://persist", "pfn://p")).unwrap();
        }
        let svc = LrcService::new(cfg()).unwrap();
        let (snap, _) = svc.bloom_snapshot();
        assert!(snap.contains("lfn://persist"));
    }
}
