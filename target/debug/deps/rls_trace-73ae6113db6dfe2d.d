/root/repo/target/debug/deps/rls_trace-73ae6113db6dfe2d.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/librls_trace-73ae6113db6dfe2d.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
