/root/repo/target/debug/deps/rls_net-6a21070e1bdf2813.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/debug/deps/librls_net-6a21070e1bdf2813.rlib: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/debug/deps/librls_net-6a21070e1bdf2813.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/pipeline.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
