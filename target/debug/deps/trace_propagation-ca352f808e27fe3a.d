/root/repo/target/debug/deps/trace_propagation-ca352f808e27fe3a.d: crates/core/tests/trace_propagation.rs

/root/repo/target/debug/deps/libtrace_propagation-ca352f808e27fe3a.rmeta: crates/core/tests/trace_propagation.rs

crates/core/tests/trace_propagation.rs:
