/root/repo/target/debug/deps/rls_proto-53d589188d828269.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/rls_proto-53d589188d828269: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/frame.rs:
crates/proto/src/message.rs:
