/root/repo/target/release/deps/rls_workload-adce5d38ee494cfa.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-adce5d38ee494cfa.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-adce5d38ee494cfa.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
