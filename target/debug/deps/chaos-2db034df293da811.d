/root/repo/target/debug/deps/chaos-2db034df293da811.d: crates/core/tests/chaos.rs

/root/repo/target/debug/deps/libchaos-2db034df293da811.rmeta: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
