//! Counting Bloom filter for incremental LRC-side maintenance.
//!
//! The wire format and the RLI store plain bitmaps, but an LRC that wants to
//! keep its summary current *without regenerating it from the database*
//! (Table 3 shows regeneration costs 18.4 s at 1 M entries, 91.6 s at 5 M)
//! must track per-bit contributor counts so a deletion clears a bit only
//! when its last contributor is gone. This is the "summary cache" technique
//! of Fan et al. (summary cache, ref \[3\] of the paper), cited by the paper as the origin of its compression
//! scheme.
//!
//! Counters are 4-bit saturating nibbles (the standard choice from the
//! summary-cache paper: overflow probability is negligible at design load,
//! and a saturated counter simply becomes sticky — the filter stays
//! *correct*, i.e. free of false negatives, and only loses the ability to
//! clear that one bit).

use serde::{Deserialize, Serialize};

use crate::filter::BloomFilter;
use crate::hash::DoubleHasher;
use crate::params::BloomParams;

const NIBBLE_MAX: u8 = 0xF;

/// A counting Bloom filter: 4-bit counters, exportable as a plain bitmap.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    params: BloomParams,
    bits: u64,
    /// Two 4-bit counters per byte.
    nibbles: Vec<u8>,
    entries: u64,
    /// Counters that have hit the saturation cap (sticky bits).
    saturated: u64,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter sized for `capacity` entries.
    pub fn with_capacity(params: BloomParams, capacity: u64) -> Self {
        let bits = params.bits_for_capacity(capacity);
        Self {
            params,
            bits,
            nibbles: vec![0u8; bits.div_ceil(2) as usize],
            entries: 0,
            saturated: 0,
        }
    }

    /// The filter parameters.
    #[inline]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of addressable counters (== exported bitmap size in bits).
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.bits
    }

    /// Number of tracked entries (inserts minus removes).
    #[inline]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of counters currently saturated (stuck at max).
    #[inline]
    pub fn saturated_counters(&self) -> u64 {
        self.saturated
    }

    #[inline]
    fn get(&self, idx: u64) -> u8 {
        let byte = self.nibbles[(idx / 2) as usize];
        if idx.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    #[inline]
    fn set(&mut self, idx: u64, v: u8) {
        debug_assert!(v <= NIBBLE_MAX);
        let slot = &mut self.nibbles[(idx / 2) as usize];
        if idx.is_multiple_of(2) {
            *slot = (*slot & 0xF0) | v;
        } else {
            *slot = (*slot & 0x0F) | (v << 4);
        }
    }

    /// Inserts a key, incrementing its counters (saturating).
    pub fn insert(&mut self, key: &str) {
        let h = DoubleHasher::new(key.as_bytes());
        for i in 0..self.params.hashes {
            let idx = h.index(i, self.bits);
            let c = self.get(idx);
            if c < NIBBLE_MAX {
                self.set(idx, c + 1);
                if c + 1 == NIBBLE_MAX {
                    self.saturated += 1;
                }
            }
        }
        self.entries += 1;
    }

    /// Removes a key, decrementing its counters. Returns whether the key
    /// tested present (and was therefore removed).
    ///
    /// A key that was never inserted fails the membership test and is a
    /// **no-op**: decrementing its counters anyway would steal counts from
    /// keys that genuinely share those positions and eventually produce
    /// false negatives — the one failure a Bloom filter must never have.
    /// (A false-positive key can still pass the test and decrement shared
    /// counters; that risk is inherent to counting filters and bounded by
    /// the filter's false-positive rate.)
    ///
    /// Saturated counters are sticky (never decremented), preserving the
    /// no-false-negative invariant for remaining keys.
    pub fn remove(&mut self, key: &str) -> bool {
        let h = DoubleHasher::new(key.as_bytes());
        if !(0..self.params.hashes).all(|i| self.get(h.index(i, self.bits)) > 0) {
            return false;
        }
        for i in 0..self.params.hashes {
            let idx = h.index(i, self.bits);
            let c = self.get(idx);
            if c > 0 && c < NIBBLE_MAX {
                self.set(idx, c - 1);
            }
        }
        self.entries = self.entries.saturating_sub(1);
        true
    }

    /// Membership test (same semantics as the plain filter).
    pub fn contains(&self, key: &str) -> bool {
        let h = DoubleHasher::new(key.as_bytes());
        (0..self.params.hashes).all(|i| self.get(h.index(i, self.bits)) > 0)
    }

    /// Exports the plain bitmap an RLI expects: bit set ⇔ counter > 0.
    pub fn to_bitmap(&self) -> BloomFilter {
        let mut f = BloomFilter::with_bits(self.params, self.bits);
        // Build words directly rather than re-hashing every key.
        let mut words = vec![0u64; (self.bits.div_ceil(64)) as usize];
        for idx in 0..self.bits {
            if self.get(idx) > 0 {
                words[(idx / 64) as usize] |= 1 << (idx % 64);
            }
        }
        let entries = self.entries;
        f = BloomFilter::from_parts(self.params, f.bit_len().max(self.bits), words, entries)
            .expect("shape consistent by construction");
        f
    }

    /// Clears all counters.
    pub fn clear(&mut self) {
        self.nibbles.iter_mut().for_each(|b| *b = 0);
        self.entries = 0;
        self.saturated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbf(cap: u64) -> CountingBloomFilter {
        CountingBloomFilter::with_capacity(BloomParams::PAPER, cap)
    }

    #[test]
    fn insert_then_remove_clears() {
        let mut f = cbf(100);
        f.insert("lfn://a");
        assert!(f.contains("lfn://a"));
        f.remove("lfn://a");
        assert!(!f.contains("lfn://a"));
        assert_eq!(f.entries(), 0);
    }

    #[test]
    fn shared_bits_survive_removal_of_one_key() {
        let mut f = cbf(100);
        // Insert many keys so bit sharing is likely, then remove half and
        // verify the other half still tests positive (no false negatives).
        let keep: Vec<String> = (0..200).map(|i| format!("keep{i}")).collect();
        let drop: Vec<String> = (0..200).map(|i| format!("drop{i}")).collect();
        for k in keep.iter().chain(&drop) {
            f.insert(k);
        }
        for k in &drop {
            f.remove(k);
        }
        for k in &keep {
            assert!(f.contains(k), "false negative on {k} after removals");
        }
    }

    #[test]
    fn bitmap_export_matches_plain_filter() {
        let mut c = cbf(1000);
        let mut p = BloomFilter::with_capacity(BloomParams::PAPER, 1000);
        for i in 0..1000 {
            let k = format!("lfn://x/{i}");
            c.insert(&k);
            p.insert(&k);
        }
        let exported = c.to_bitmap();
        assert_eq!(exported.words(), p.words());
        assert_eq!(exported.entries(), 1000);
    }

    #[test]
    fn bitmap_export_reflects_removals() {
        let mut c = cbf(1000);
        for i in 0..100 {
            c.insert(&format!("k{i}"));
        }
        for i in 0..100 {
            c.remove(&format!("k{i}"));
        }
        let exported = c.to_bitmap();
        assert!(exported.is_empty(), "set_bits={}", exported.set_bits());
    }

    #[test]
    fn removing_a_never_inserted_key_is_a_guarded_no_op() {
        let mut f = cbf(1000);
        for i in 0..50 {
            f.insert(&format!("present{i}"));
        }
        let before = f.nibbles.clone();
        // A key that fails the membership test must not touch any counter:
        // blind decrements would steal counts from genuinely present keys
        // and open the door to false negatives.
        assert!(!f.remove("never-inserted-key-xyz"));
        assert_eq!(f.nibbles, before, "guarded remove must not alter counters");
        assert_eq!(f.entries(), 50);
        for i in 0..50 {
            assert!(f.contains(&format!("present{i}")));
        }
        // A genuinely present key still removes and reports true.
        assert!(f.remove("present0"));
        assert_eq!(f.entries(), 49);
    }

    #[test]
    fn counter_saturation_is_sticky_and_safe() {
        let mut f = CountingBloomFilter::with_capacity(BloomParams::PAPER, 1);
        // 64-bit filter: hammer one key far past the nibble cap.
        for _ in 0..100 {
            f.insert("same-key");
        }
        assert!(f.saturated_counters() > 0);
        for _ in 0..100 {
            f.remove("same-key");
        }
        // Saturated counters never decrement: key still present (sticky),
        // which is safe (no false negatives for other keys).
        assert!(f.contains("same-key"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = cbf(10);
        f.insert("a");
        f.insert("b");
        f.clear();
        assert_eq!(f.entries(), 0);
        assert!(!f.contains("a"));
        assert!(f.to_bitmap().is_empty());
    }

    #[test]
    fn nibble_packing_is_isolated() {
        let mut f = cbf(100);
        // Directly exercise even/odd nibble neighbours.
        f.set(10, 7);
        f.set(11, 3);
        assert_eq!(f.get(10), 7);
        assert_eq!(f.get(11), 3);
        f.set(10, 0);
        assert_eq!(f.get(11), 3);
    }
}
