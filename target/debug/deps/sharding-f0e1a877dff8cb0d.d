/root/repo/target/debug/deps/sharding-f0e1a877dff8cb0d.d: crates/core/tests/sharding.rs Cargo.toml

/root/repo/target/debug/deps/libsharding-f0e1a877dff8cb0d.rmeta: crates/core/tests/sharding.rs Cargo.toml

crates/core/tests/sharding.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
