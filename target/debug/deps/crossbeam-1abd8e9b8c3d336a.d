/root/repo/target/debug/deps/crossbeam-1abd8e9b8c3d336a.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1abd8e9b8c3d336a.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1abd8e9b8c3d336a.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
