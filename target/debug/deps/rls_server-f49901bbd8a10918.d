/root/repo/target/debug/deps/rls_server-f49901bbd8a10918.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/rls_server-f49901bbd8a10918: src/bin/rls-server.rs

src/bin/rls-server.rs:
