/root/repo/target/debug/deps/chaos-2b883c7bbafb2386.d: crates/core/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-2b883c7bbafb2386.rmeta: crates/core/tests/chaos.rs Cargo.toml

crates/core/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
