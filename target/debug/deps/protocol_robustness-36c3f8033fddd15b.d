/root/repo/target/debug/deps/protocol_robustness-36c3f8033fddd15b.d: tests/protocol_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_robustness-36c3f8033fddd15b.rmeta: tests/protocol_robustness.rs Cargo.toml

tests/protocol_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
