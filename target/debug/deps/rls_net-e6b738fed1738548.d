/root/repo/target/debug/deps/rls_net-e6b738fed1738548.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/debug/deps/librls_net-e6b738fed1738548.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/retry.rs crates/net/src/shaper.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
