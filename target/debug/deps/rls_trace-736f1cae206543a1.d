/root/repo/target/debug/deps/rls_trace-736f1cae206543a1.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/librls_trace-736f1cae206543a1.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
