/root/repo/target/release/deps/fig13_bloom_wan_scaling-9c2a35bcab5951c3.d: crates/bench/benches/fig13_bloom_wan_scaling.rs

/root/repo/target/release/deps/fig13_bloom_wan_scaling-9c2a35bcab5951c3: crates/bench/benches/fig13_bloom_wan_scaling.rs

crates/bench/benches/fig13_bloom_wan_scaling.rs:
