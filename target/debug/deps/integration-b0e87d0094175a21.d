/root/repo/target/debug/deps/integration-b0e87d0094175a21.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-b0e87d0094175a21.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
