/root/repo/target/release/deps/rls_metrics-7594a261fac9c8ae.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/release/deps/librls_metrics-7594a261fac9c8ae.rlib: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/release/deps/librls_metrics-7594a261fac9c8ae.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/telemetry.rs:
