/root/repo/target/debug/deps/micro_softstate-163b80652b875b51.d: crates/bench/benches/micro_softstate.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_softstate-163b80652b875b51.rmeta: crates/bench/benches/micro_softstate.rs Cargo.toml

crates/bench/benches/micro_softstate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
