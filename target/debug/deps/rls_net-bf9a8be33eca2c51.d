/root/repo/target/debug/deps/rls_net-bf9a8be33eca2c51.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/debug/deps/rls_net-bf9a8be33eca2c51: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/pipeline.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
