/root/repo/target/release/deps/fig09_rli_query_db-060e7df8989f12bd.d: crates/bench/benches/fig09_rli_query_db.rs

/root/repo/target/release/deps/fig09_rli_query_db-060e7df8989f12bd: crates/bench/benches/fig09_rli_query_db.rs

crates/bench/benches/fig09_rli_query_db.rs:
