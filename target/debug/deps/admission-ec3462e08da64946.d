/root/repo/target/debug/deps/admission-ec3462e08da64946.d: crates/core/tests/admission.rs

/root/repo/target/debug/deps/admission-ec3462e08da64946: crates/core/tests/admission.rs

crates/core/tests/admission.rs:
