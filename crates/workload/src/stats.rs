//! Measurement statistics: per-trial aggregation as in the paper's
//! methodology ("we perform several trials (typically 5) and calculate the
//! mean rate over those trials").

/// Summary statistics over a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

/// Percentile with linear interpolation over a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Summarizes a sample.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        p50: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.p50 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(summarize(&[]).n, 0);
        let s = summarize(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&sorted, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
    }
}
