/root/repo/target/debug/deps/rand-8d2ea7d87b7c7930.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8d2ea7d87b7c7930.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8d2ea7d87b7c7930.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
