/root/repo/target/release/deps/fig08_pg_vacuum-36a74cd33a2ecd63.d: crates/bench/benches/fig08_pg_vacuum.rs

/root/repo/target/release/deps/fig08_pg_vacuum-36a74cd33a2ecd63: crates/bench/benches/fig08_pg_vacuum.rs

crates/bench/benches/fig08_pg_vacuum.rs:
