//! Secondary indexes: hash for point lookups, ordered for range/prefix
//! scans.
//!
//! Index entries reference heap [`RowId`]s and are
//! *not* eagerly removed when the PostgreSQL-like profile merely marks a row
//! dead — probes return candidate ids that the table must liveness-check,
//! exactly the index-bloat effect that makes the paper's Figure 8 decay. The
//! MySQL-like profile removes entries synchronously at delete time.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::schema::IndexKind;
use crate::table::RowId;
use crate::value::Value;

/// Postings list for one key. Most keys have exactly one live row, so the
/// single-element case avoids a heap allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Postings {
    /// Exactly one row.
    One(RowId),
    /// Two or more rows (insertion order).
    Many(Vec<RowId>),
}

impl Postings {
    fn push(&mut self, id: RowId) {
        match self {
            Self::One(a) => *self = Self::Many(vec![*a, id]),
            Self::Many(v) => v.push(id),
        }
    }

    /// Removes one id; returns true if the postings list became empty.
    fn remove(&mut self, id: RowId) -> bool {
        match self {
            Self::One(a) => *a == id,
            Self::Many(v) => {
                if let Some(pos) = v.iter().position(|&x| x == id) {
                    v.swap_remove(pos);
                }
                v.is_empty()
            }
        }
    }

    /// Iterates the ids.
    pub fn iter(&self) -> PostingsIter<'_> {
        match self {
            Self::One(a) => PostingsIter::One(Some(*a)),
            Self::Many(v) => PostingsIter::Many(v.iter()),
        }
    }

    /// Number of ids (live + dead).
    pub fn len(&self) -> usize {
        match self {
            Self::One(_) => 1,
            Self::Many(v) => v.len(),
        }
    }

    /// Never true while stored (empty lists are removed from the map).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator over a postings list.
pub enum PostingsIter<'a> {
    /// Single element.
    One(Option<RowId>),
    /// Slice iterator.
    Many(std::slice::Iter<'a, RowId>),
}

impl Iterator for PostingsIter<'_> {
    type Item = RowId;
    fn next(&mut self) -> Option<RowId> {
        match self {
            Self::One(v) => v.take(),
            Self::Many(it) => it.next().copied(),
        }
    }
}

/// A single-column secondary index.
#[derive(Clone, Debug)]
pub enum Index {
    /// Hash-map index.
    Hash(HashMap<Value, Postings>),
    /// Ordered (B-tree) index.
    Ordered(BTreeMap<Value, Postings>),
}

impl Index {
    /// Creates an empty index of the given kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => Self::Hash(HashMap::new()),
            IndexKind::Ordered => Self::Ordered(BTreeMap::new()),
        }
    }

    /// Adds `id` under `key`.
    pub fn insert(&mut self, key: Value, id: RowId) {
        match self {
            Self::Hash(m) => match m.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Postings::One(id));
                }
            },
            Self::Ordered(m) => match m.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().push(id),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Postings::One(id));
                }
            },
        }
    }

    /// Removes `id` from under `key` (used by the MySQL-like profile at
    /// delete time, and by vacuum for the PostgreSQL-like profile).
    pub fn remove(&mut self, key: &Value, id: RowId) {
        match self {
            Self::Hash(m) => {
                if let Some(p) = m.get_mut(key) {
                    if p.remove(id) {
                        m.remove(key);
                    }
                }
            }
            Self::Ordered(m) => {
                if let Some(p) = m.get_mut(key) {
                    if p.remove(id) {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// All candidate row ids for an exact key (may include dead rows under
    /// the PostgreSQL-like profile — callers must liveness-check).
    pub fn lookup(&self, key: &Value) -> Option<&Postings> {
        match self {
            Self::Hash(m) => m.get(key),
            Self::Ordered(m) => m.get(key),
        }
    }

    /// Candidate ids for keys in `[lo, hi)`; ordered indexes only.
    ///
    /// # Panics
    /// Panics when invoked on a hash index — a planner bug, not a runtime
    /// condition.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> impl Iterator<Item = (&'a Value, &'a Postings)> + 'a {
        match self {
            Self::Hash(_) => panic!("range scan on hash index"),
            Self::Ordered(m) => m.range::<Value, _>((lo, hi)),
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match self {
            Self::Hash(m) => m.len(),
            Self::Ordered(m) => m.len(),
        }
    }

    /// Total postings across all keys (live + dead) — index bloat metric.
    pub fn entry_count(&self) -> usize {
        match self {
            Self::Hash(m) => m.values().map(Postings::len).sum(),
            Self::Ordered(m) => m.values().map(Postings::len).sum(),
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        match self {
            Self::Hash(m) => m.clear(),
            Self::Ordered(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(p: Option<&Postings>) -> Vec<u64> {
        let mut v: Vec<u64> = p.into_iter().flat_map(|p| p.iter()).map(|r| r.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn hash_insert_lookup_remove() {
        let mut idx = Index::new(IndexKind::Hash);
        idx.insert(Value::str("a"), RowId(1));
        idx.insert(Value::str("a"), RowId(2));
        idx.insert(Value::str("b"), RowId(3));
        assert_eq!(ids(idx.lookup(&Value::str("a"))), vec![1, 2]);
        idx.remove(&Value::str("a"), RowId(1));
        assert_eq!(ids(idx.lookup(&Value::str("a"))), vec![2]);
        idx.remove(&Value::str("a"), RowId(2));
        assert!(idx.lookup(&Value::str("a")).is_none());
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn ordered_range_scan() {
        let mut idx = Index::new(IndexKind::Ordered);
        for (i, name) in ["apple", "apricot", "banana", "cherry"].iter().enumerate() {
            idx.insert(Value::str(name), RowId(i as u64));
        }
        let hits: Vec<&str> = idx
            .range(
                Bound::Included(&Value::str("ap")),
                Bound::Excluded(&Value::str("aq")),
            )
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(hits, vec!["apple", "apricot"]);
    }

    #[test]
    #[should_panic(expected = "range scan on hash index")]
    fn range_on_hash_panics() {
        let idx = Index::new(IndexKind::Hash);
        let _ = idx
            .range(Bound::Unbounded, Bound::Unbounded)
            .next();
    }

    #[test]
    fn postings_small_case_avoids_alloc() {
        let mut p = Postings::One(RowId(5));
        assert_eq!(p.len(), 1);
        p.push(RowId(6));
        assert_eq!(p.len(), 2);
        assert!(!p.remove(RowId(5)));
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![RowId(6)]);
    }

    #[test]
    fn entry_count_tracks_bloat() {
        let mut idx = Index::new(IndexKind::Hash);
        for i in 0..10 {
            idx.insert(Value::str("same"), RowId(i));
        }
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.entry_count(), 10);
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut idx = Index::new(IndexKind::Ordered);
        idx.insert(Value::Int(1), RowId(1));
        idx.remove(&Value::Int(1), RowId(99));
        assert_eq!(ids(idx.lookup(&Value::Int(1))), vec![1]);
        idx.remove(&Value::Int(2), RowId(1)); // absent key
        assert_eq!(idx.key_count(), 1);
    }
}
