/root/repo/target/release/deps/fig10_rli_query_bloom-b089f3e4ffe2d391.d: crates/bench/benches/fig10_rli_query_bloom.rs

/root/repo/target/release/deps/fig10_rli_query_bloom-b089f3e4ffe2d391: crates/bench/benches/fig10_rli_query_bloom.rs

crates/bench/benches/fig10_rli_query_bloom.rs:
