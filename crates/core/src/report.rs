//! Human-readable rendering of server statistics.
//!
//! Turns a [`ServerStatsWire`] snapshot (opcode 50) into the operator
//! report printed by `rls-cli stats`: catalog sizes, per-operation latency
//! quantiles (the live counterpart of the paper's Figures 4–6), soft-state
//! and storage histograms, and the labeled counter list.

use rls_metrics::HistogramSnapshot;
use rls_proto::ServerStatsWire;

/// Renders one latency value; the saturating bucket's upper bound is
/// `u64::MAX`, which we print as an open interval rather than the number.
fn fmt_micros(v: u64) -> String {
    if v == u64::MAX {
        ">=2^30".to_owned()
    } else {
        v.to_string()
    }
}

fn histogram_row(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        name,
        h.count,
        // Saturating cast: a mean pinned at u64::MAX renders as the
        // open interval like the quantiles do.
        fmt_micros(h.mean_micros() as u64),
        fmt_micros(h.p50()),
        fmt_micros(h.p90()),
        fmt_micros(h.p99()),
        fmt_micros(h.max_micros),
    )
}

fn histogram_header(title: &str) -> String {
    format!(
        "{title}\n  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "name", "count", "mean", "p50", "p90", "p99", "max"
    )
}

/// Formats a stats snapshot as a multi-line operator report.
///
/// Sections with no data are omitted, so a freshly started server prints
/// only the role/catalog summary.
pub fn format_stats_report(stats: &ServerStatsWire) -> String {
    let mut out = String::new();
    let roles = match (stats.is_lrc, stats.is_rli) {
        (true, true) => "LRC+RLI",
        (true, false) => "LRC",
        (false, true) => "RLI",
        (false, false) => "none",
    };
    out.push_str(&format!("roles: {roles}\n"));
    if stats.is_lrc {
        out.push_str(&format!(
            "lrc: {} lfns, {} mappings\n",
            stats.lrc_lfn_count, stats.lrc_mapping_count
        ));
    }
    if stats.is_rli {
        out.push_str(&format!(
            "rli: {} associations, {} bloom filters\n",
            stats.rli_association_count, stats.rli_bloom_filters
        ));
    }
    out.push_str(&format!(
        "totals: adds={} deletes={} queries={} updates_received={} expired={}\n",
        stats.adds, stats.deletes, stats.queries, stats.updates_received, stats.expired
    ));

    let (ops, other): (Vec<_>, Vec<_>) = stats
        .op_latencies
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .partition(|(name, _)| name.starts_with("op."));
    if !ops.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("operation latencies (us):"));
        for (name, h) in &ops {
            out.push_str(&histogram_row(name, h));
        }
    }
    if !other.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("internal latencies (us):"));
        for (name, h) in &other {
            out.push_str(&histogram_row(name, h));
        }
    }
    if !stats.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &stats.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_metrics::LatencyHistogram;

    fn snap(samples: &[u64]) -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        for &s in samples {
            h.record_micros(s);
        }
        h.snapshot()
    }

    #[test]
    fn report_includes_quantiles_and_counters() {
        let stats = ServerStatsWire {
            is_lrc: true,
            is_rli: false,
            lrc_lfn_count: 10,
            lrc_mapping_count: 20,
            adds: 3,
            op_latencies: vec![
                ("op.create".into(), snap(&[5, 7, 900])),
                ("storage.query_lfn".into(), snap(&[2])),
                ("op.never_called".into(), HistogramSnapshot::default()),
            ],
            counters: vec![("lrc.engine.inserts".into(), 42)],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains("roles: LRC"));
        assert!(report.contains("lrc: 10 lfns, 20 mappings"));
        assert!(report.contains("operation latencies"));
        assert!(report.contains("op.create"));
        assert!(report.contains("internal latencies"));
        assert!(report.contains("storage.query_lfn"));
        assert!(report.contains("lrc.engine.inserts"));
        // Empty histograms are suppressed.
        assert!(!report.contains("op.never_called"));
        // p50 of [5, 7, 900] falls in the [4,7] bucket → 7.
        assert!(report.lines().any(|l| l.contains("op.create") && l.contains(" 7 ")));
    }

    #[test]
    fn empty_snapshot_is_compact() {
        let report = format_stats_report(&ServerStatsWire::default());
        assert!(report.contains("roles: none"));
        assert!(!report.contains("latencies"));
        assert!(!report.contains("counters:"));
    }

    #[test]
    fn saturated_max_prints_open_interval() {
        let stats = ServerStatsWire {
            op_latencies: vec![("op.slow".into(), snap(&[u64::MAX]))],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains(">=2^30"));
    }
}
