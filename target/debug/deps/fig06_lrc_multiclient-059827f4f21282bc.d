/root/repo/target/debug/deps/fig06_lrc_multiclient-059827f4f21282bc.d: crates/bench/benches/fig06_lrc_multiclient.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_lrc_multiclient-059827f4f21282bc.rmeta: crates/bench/benches/fig06_lrc_multiclient.rs Cargo.toml

crates/bench/benches/fig06_lrc_multiclient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
