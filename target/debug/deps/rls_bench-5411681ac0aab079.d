/root/repo/target/debug/deps/rls_bench-5411681ac0aab079.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls_bench-5411681ac0aab079.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
