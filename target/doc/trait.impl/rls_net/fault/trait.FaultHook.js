(function() {
    const implementors = Object.fromEntries([["rls_faults",[["impl FaultHook for <a class=\"struct\" href=\"rls_faults/struct.FaultPlan.html\" title=\"struct rls_faults::FaultPlan\">FaultPlan</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[156]}