/root/repo/target/debug/deps/rls_server-1cc74485fbe19596.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/librls_server-1cc74485fbe19596.rmeta: src/bin/rls-server.rs

src/bin/rls-server.rs:
