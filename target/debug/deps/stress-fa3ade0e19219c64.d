/root/repo/target/debug/deps/stress-fa3ade0e19219c64.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/stress-fa3ade0e19219c64: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
