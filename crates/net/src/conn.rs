//! Framed, optionally-shaped connections.
//!
//! A [`Conn`] is the composition of a [`RecvHalf`] and a [`SendHalf`] over
//! one TCP stream. The halves can be borrowed disjointly
//! ([`Conn::halves`]) or split into owned handles ([`Conn::split`]), which
//! is what lets a pipelining client keep sending while earlier responses
//! are still in flight, and lets the server answer one connection's
//! requests from several workers (the send half behind a lock) while the
//! receive half stays with the readiness poller.
//!
//! The receive path is allocation-free in steady state: frames are
//! decoded as `&[u8]` borrows out of a per-connection buffer
//! ([`RecvHalf::try_recv_ref`]), and the buffer's retained capacity is
//! capped once it drains ([`RX_RETAIN_CAP`]) so a one-off bulk frame does
//! not pin its high-water mark forever. The send path coalesces the
//! length prefix and body into a single `write_vectored` call with a
//! short-write continuation loop.

use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rls_proto::DEFAULT_MAX_FRAME;
use rls_types::{ErrorCode, RlsError, RlsResult};

use crate::fault::{FaultDecision, FaultHook};
use crate::shaper::{sleep_until, ConnCursor, LinkProfile, SharedIngress};

/// Chunk size for speculative socket reads when the next frame's length
/// is not yet known (or to over-read into back-to-back frames).
const READ_CHUNK: usize = 16 * 1024;

/// Retained receive-buffer capacity after the buffer drains. A frame
/// larger than this grows the buffer for as long as it is being
/// assembled, but the excess is released at the next receive call once
/// every buffered byte has been consumed.
pub const RX_RETAIN_CAP: usize = 64 * 1024;

/// Byte and frame counters shared across connections.
///
/// A server attaches one meter to every accepted [`Conn`]; the counters
/// then aggregate transport volume server-wide (`net.*` metrics in the
/// stats report). Directions are from the meter owner's point of view:
/// `bytes_in` is what the server received. Counts include the 4-byte
/// length prefix of each frame — they measure wire bytes, not payload.
#[derive(Debug, Default)]
pub struct ConnMeter {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    tx_writev: AtomicU64,
    tx_writev_resumes: AtomicU64,
    tx_errors: AtomicU64,
}

impl ConnMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes received, including frame headers.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Total bytes sent, including frame headers.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Total frames received.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Total frames sent.
    pub fn frames_out(&self) -> u64 {
        self.frames_out.load(Ordering::Relaxed)
    }

    /// Total `write_vectored` syscalls issued on the send path.
    pub fn tx_writev(&self) -> u64 {
        self.tx_writev.load(Ordering::Relaxed)
    }

    /// Continuation iterations of the vectored-write loop: short writes
    /// and `EWOULDBLOCK` retries that needed a second (or later) syscall
    /// to finish a frame. `tx_writev == frames_out` and zero resumes is
    /// the ideal one-syscall-per-frame steady state.
    pub fn tx_writev_resumes(&self) -> u64 {
        self.tx_writev_resumes.load(Ordering::Relaxed)
    }

    /// Hard send errors (the connection is closed and poisoned).
    pub fn tx_errors(&self) -> u64 {
        self.tx_errors.load(Ordering::Relaxed)
    }

    fn on_recv(&self, wire_bytes: u64) {
        self.bytes_in.fetch_add(wire_bytes, Ordering::Relaxed);
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    fn on_send(&self, wire_bytes: u64) {
        self.bytes_out.fetch_add(wire_bytes, Ordering::Relaxed);
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// The receive side of a connection: a buffered, resumable frame reader.
///
/// Frames are returned as borrows out of the internal buffer
/// ([`RecvHalf::try_recv_ref`], [`RecvHalf::recv_ref`]) — no per-frame
/// allocation. The compatibility methods ([`RecvHalf::try_recv`],
/// [`RecvHalf::recv`]) copy into a `Vec` for callers that need ownership.
pub struct RecvHalf {
    stream: TcpStream,
    profile: LinkProfile,
    cursor: Arc<Mutex<ConnCursor>>,
    max_frame: usize,
    peer: SocketAddr,
    peer_label: String,
    meter: Option<Arc<ConnMeter>>,
    hook: Option<Arc<dyn FaultHook>>,
    /// Receive window: `buf[start..end]` holds unconsumed wire bytes.
    /// The buffer's len tracks its capacity (bytes past `end` are
    /// uninitialized garbage from the reader's point of view).
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Cached socket read mode so mode changes only issue a syscall on
    /// transitions: `Some(ZERO)` is `O_NONBLOCK`, `Some(d)` is blocking
    /// with `SO_RCVTIMEO d`, `None` is plain blocking.
    rx_timeout: Option<Duration>,
}

impl std::fmt::Debug for RecvHalf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvHalf")
            .field("peer", &self.peer)
            .field("buffered", &(self.end - self.start))
            .finish_non_exhaustive()
    }
}

/// Readiness of a connection as seen by [`RecvHalf::poll_ready`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// A complete frame is buffered; a receive call will not block.
    Ready,
    /// No complete frame arrived within the wait.
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
}

/// Outcome of one [`RecvHalf::try_recv_ref`] attempt: like [`TryRecv`]
/// but the frame borrows the connection's receive buffer.
#[derive(Debug)]
pub enum TryRecvRef<'a> {
    /// A complete frame arrived; valid until the next receive call.
    Frame(&'a [u8]),
    /// Nothing (or only part of a frame) arrived within the wait; the
    /// partial bytes are buffered and a later call resumes the read.
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
}

impl RecvHalf {
    /// The remote address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Current receive-buffer capacity (regression surface for the
    /// retained-capacity cap).
    pub fn rx_capacity(&self) -> usize {
        self.buf.len()
    }

    /// Sets a read timeout on the underlying socket. Clears any
    /// non-blocking mode a zero-wait probe left behind.
    pub fn set_read_timeout(&mut self, d: Option<Duration>) -> RlsResult<()> {
        if self.rx_timeout == Some(Duration::ZERO) {
            self.stream.set_nonblocking(false)?;
        }
        self.stream.set_read_timeout(d)?;
        self.rx_timeout = d;
        Ok(())
    }

    /// Acts on a hook decision for the receive path.
    fn apply_recv_fault(&mut self) -> RlsResult<()> {
        let Some(hook) = &self.hook else { return Ok(()) };
        match hook.on_recv(&self.peer_label) {
            FaultDecision::Allow => Ok(()),
            FaultDecision::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected read stall from {}", self.peer_label),
                ))
            }
            FaultDecision::Refuse | FaultDecision::DropMidFrame => Err(RlsError::new(
                ErrorCode::Io,
                format!("injected receive failure from {}", self.peer_label),
            )),
        }
    }

    fn shape_inbound(&mut self, bytes: usize) {
        if self.profile.is_unshaped() {
            return;
        }
        let serialized = self.cursor.lock().acquire(&self.profile, bytes);
        sleep_until(serialized + self.profile.rtt / 2);
    }

    /// Releases excess retained capacity once the buffer has fully
    /// drained. Deferred to the entry of the next receive call because
    /// the previous call's frame borrow may still be alive until then.
    fn release_excess(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > RX_RETAIN_CAP {
                self.buf = vec![0u8; RX_RETAIN_CAP];
            }
        }
    }

    /// Switches the socket read mode for a bounded wait (see the
    /// `rx_timeout` field for the encoding).
    fn set_mode(&mut self, wait: Duration) -> RlsResult<()> {
        if wait.is_zero() {
            if self.rx_timeout != Some(Duration::ZERO) {
                self.stream.set_nonblocking(true)?;
                self.rx_timeout = Some(Duration::ZERO);
            }
        } else {
            // SO_RCVTIMEO of zero means "block forever" — clamp up instead.
            let wait = wait.max(Duration::from_millis(1));
            if self.rx_timeout != Some(wait) {
                if self.rx_timeout == Some(Duration::ZERO) {
                    self.stream.set_nonblocking(false)?;
                }
                self.stream.set_read_timeout(Some(wait))?;
                self.rx_timeout = Some(wait);
            }
        }
        Ok(())
    }

    /// Leaves the socket blocking: after a completed frame the caller's
    /// next move is usually sending a response, and a short write on a
    /// full send buffer must block, not error (`O_NONBLOCK` covers the
    /// write half of the shared socket too).
    fn restore_blocking(&mut self) -> RlsResult<()> {
        if self.rx_timeout == Some(Duration::ZERO) {
            self.stream.set_nonblocking(false)?;
            self.stream.set_read_timeout(None)?;
            self.rx_timeout = None;
        }
        Ok(())
    }

    /// Checks whether a complete frame is buffered, validating the
    /// claimed length against the frame cap as soon as the header is
    /// visible — *before* any buffer space is reserved for the body, so
    /// a hostile 4-byte header can never drive a large allocation.
    /// Returns the body's `(start, end)` window without consuming it.
    fn buffered_frame(&self) -> RlsResult<Option<(usize, usize)>> {
        let avail = self.end - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > self.max_frame {
            return Err(RlsError::new(
                ErrorCode::ResourceLimit,
                format!("frame of {len} bytes exceeds cap of {}", self.max_frame),
            ));
        }
        if avail >= 4 + len {
            Ok(Some((self.start + 4, self.start + 4 + len)))
        } else {
            Ok(None)
        }
    }

    /// Makes room to read more bytes: enough for the current frame's
    /// validated remainder (plus a chunk of over-read for back-to-back
    /// frames), compacting the window to the buffer's front first so a
    /// long-lived connection reuses the same allocation.
    fn reserve_for_read(&mut self) {
        let avail = self.end - self.start;
        let needed = if avail >= 4 {
            // `buffered_frame` already validated this length against the
            // cap before we got here.
            let len = u32::from_le_bytes(
                self.buf[self.start..self.start + 4]
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            (4 + len).saturating_sub(avail)
        } else {
            READ_CHUNK
        };
        let want = needed.max(READ_CHUNK);
        if self.buf.len() - self.end >= want {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.end < want {
            self.buf.resize(self.end + want, 0);
        }
    }

    /// Consumes the buffered frame at `(bs, be)`: advances the window,
    /// applies shaping and metering, restores blocking mode, and returns
    /// the borrow.
    fn take_frame(&mut self, bs: usize, be: usize) -> RlsResult<&[u8]> {
        let len = be - bs;
        self.start = be;
        self.shape_inbound(len + 4);
        if let Some(meter) = &self.meter {
            meter.on_recv(len as u64 + 4);
        }
        self.restore_blocking()?;
        Ok(&self.buf[bs..be])
    }

    /// Attempts to receive one frame as a borrow of the connection's
    /// receive buffer, waiting at most `wait` for bytes to arrive. The
    /// read is **resumable**: a frame that is only partially on the wire
    /// when the wait expires stays buffered and is completed by a later
    /// call, so a worker pool can time-slice many connections without
    /// losing mid-frame bytes.
    ///
    /// `wait == 0` is a true non-blocking probe (`O_NONBLOCK`, not
    /// `SO_RCVTIMEO`): it returns immediately with whatever is buffered,
    /// which is what a readiness poller sweeping hundreds of parked
    /// connections needs. The socket is switched back to blocking before
    /// a completed frame is returned.
    ///
    /// Fault hooks are *not* consulted here — this is the server-side
    /// read path, and hooks are an initiator-side (client) surface.
    pub fn try_recv_ref(&mut self, wait: Duration) -> RlsResult<TryRecvRef<'_>> {
        self.release_excess();
        self.set_mode(wait)?;
        loop {
            if let Some((bs, be)) = self.buffered_frame()? {
                let frame = self.take_frame(bs, be)?;
                return Ok(TryRecvRef::Frame(frame));
            }
            self.reserve_for_read();
            let end = self.end;
            match self.stream.read(&mut self.buf[end..]) {
                Ok(0) => {
                    return if self.start == self.end {
                        Ok(TryRecvRef::Closed)
                    } else {
                        Err(RlsError::protocol("connection closed mid-frame"))
                    };
                }
                Ok(n) => self.end += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(TryRecvRef::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Owned-copy variant of [`RecvHalf::try_recv_ref`] for callers that
    /// need the frame to outlive the connection borrow.
    pub fn try_recv(&mut self, wait: Duration) -> RlsResult<TryRecv> {
        Ok(match self.try_recv_ref(wait)? {
            TryRecvRef::Frame(f) => TryRecv::Frame(f.to_vec()),
            TryRecvRef::Idle => TryRecv::Idle,
            TryRecvRef::Closed => TryRecv::Closed,
        })
    }

    /// Probes whether a complete frame is buffered, filling the receive
    /// buffer from the socket but **not** consuming the frame (and not
    /// charging shaping or metering — those happen when the frame is
    /// actually received). This is the readiness poller's sweep
    /// primitive: a `Ready` connection can be handed to a worker whose
    /// receive call is then guaranteed not to block.
    pub fn poll_ready(&mut self, wait: Duration) -> RlsResult<Readiness> {
        self.release_excess();
        self.set_mode(wait)?;
        loop {
            if self.buffered_frame()?.is_some() {
                return Ok(Readiness::Ready);
            }
            self.reserve_for_read();
            let end = self.end;
            match self.stream.read(&mut self.buf[end..]) {
                Ok(0) => {
                    return if self.start == self.end {
                        Ok(Readiness::Closed)
                    } else {
                        Err(RlsError::protocol("connection closed mid-frame"))
                    };
                }
                Ok(n) => self.end += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Readiness::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Receives one frame as a borrow, blocking (subject to any
    /// configured read timeout); `None` on clean EOF. Like the classic
    /// blocking reader, EOF inside a partial length prefix counts as
    /// EOF-at-boundary; EOF inside a frame body is a protocol error.
    pub fn recv_ref(&mut self) -> RlsResult<Option<&[u8]>> {
        self.apply_recv_fault()?;
        self.release_excess();
        // A zero-wait probe may have left the socket non-blocking; a
        // plain recv must block (honoring a user-set read timeout).
        if self.rx_timeout == Some(Duration::ZERO) {
            self.stream.set_nonblocking(false)?;
            self.stream.set_read_timeout(None)?;
            self.rx_timeout = None;
        }
        loop {
            if let Some((bs, be)) = self.buffered_frame()? {
                let frame = self.take_frame(bs, be)?;
                return Ok(Some(frame));
            }
            self.reserve_for_read();
            let end = self.end;
            match self.stream.read(&mut self.buf[end..]) {
                Ok(0) => {
                    return if self.end - self.start < 4 {
                        Ok(None)
                    } else {
                        Err(RlsError::protocol(
                            "frame body truncated: connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.end += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Receives one frame as an owned copy; `None` on clean EOF.
    pub fn recv(&mut self) -> RlsResult<Option<Vec<u8>>> {
        Ok(self.recv_ref()?.map(|f| f.to_vec()))
    }
}

/// The send side of a connection: vectored frame writes.
///
/// A send error marks the half **poisoned** — the stream position is
/// unknown after a short write, so every subsequent send fails fast and
/// the socket is shut down (both directions, so the peer and any poller
/// on the receive half observe the closure deterministically).
pub struct SendHalf {
    stream: TcpStream,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
    cursor: Arc<Mutex<ConnCursor>>,
    peer: SocketAddr,
    peer_label: String,
    meter: Option<Arc<ConnMeter>>,
    hook: Option<Arc<dyn FaultHook>>,
    poisoned: bool,
}

impl std::fmt::Debug for SendHalf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendHalf")
            .field("peer", &self.peer)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl SendHalf {
    /// The remote address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Whether a previous send failed mid-frame (the connection is dead).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Acts on a hook decision for the send path.
    fn apply_send_fault(&mut self, body: &[u8]) -> RlsResult<()> {
        let Some(hook) = &self.hook else { return Ok(()) };
        match hook.on_send(&self.peer_label, body.len() + 4) {
            FaultDecision::Allow => Ok(()),
            FaultDecision::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultDecision::Refuse => Err(RlsError::new(
                ErrorCode::Io,
                format!("injected send failure to {}", self.peer_label),
            )),
            FaultDecision::DropMidFrame => {
                // Write the length prefix plus half the body, then sever the
                // connection: the peer observes a truncated frame (protocol
                // error), the sender an I/O failure — a crash mid-update.
                // Write errors here are irrelevant: the injected outcome is
                // an unconditional failure either way.
                let len = body.len() as u32;
                let _ = self.stream.write_all(&len.to_le_bytes());
                let _ = self.stream.write_all(&body[..body.len() / 2]);
                self.poisoned = true;
                self.shutdown();
                Err(RlsError::new(
                    ErrorCode::Io,
                    format!("injected mid-frame disconnect to {}", self.peer_label),
                ))
            }
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected send stall to {}", self.peer_label),
                ))
            }
        }
    }

    fn shape_outbound(&mut self, bytes: usize) {
        if self.profile.is_unshaped() && self.ingress.is_none() {
            return;
        }
        // Serialization first (per-connection NIC, then the shared server
        // ingress link), then propagation (half the RTT) on top — the
        // components of one-way delivery are sequential.
        let mut serialized = self.cursor.lock().acquire(&self.profile, bytes);
        if let Some(pool) = &self.ingress {
            serialized = serialized.max(pool.acquire(bytes));
        }
        sleep_until(serialized + self.profile.rtt / 2);
    }

    /// Writes one frame as a single vectored write (header + body in one
    /// syscall in the common case), with a continuation loop for short
    /// writes. `EWOULDBLOCK` (possible when a zero-wait probe on the
    /// shared socket's receive half has set `O_NONBLOCK`) backs off
    /// briefly and resumes — a partially-written frame must always be
    /// finished or the stream is desynchronized.
    fn write_frame_vectored(&mut self, body: &[u8]) -> std::io::Result<()> {
        let header = u32::try_from(body.len())
            .map_err(|_| std::io::Error::other("frame body exceeds u32 length"))?
            .to_le_bytes();
        let total = 4 + body.len();
        let mut written = 0usize;
        let mut calls = 0u64;
        let mut resumes = 0u64;
        let result = loop {
            let bufs = if written < 4 {
                [IoSlice::new(&header[written..]), IoSlice::new(body)]
            } else {
                [IoSlice::new(&body[written - 4..]), IoSlice::new(&[])]
            };
            match self.stream.write_vectored(&bufs) {
                Ok(0) => break Err(std::io::Error::from(std::io::ErrorKind::WriteZero)),
                Ok(n) => {
                    calls += 1;
                    written += n;
                    if written >= total {
                        break Ok(());
                    }
                    resumes += 1;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    resumes += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        if let Some(meter) = &self.meter {
            meter.tx_writev.fetch_add(calls, Ordering::Relaxed);
            meter.tx_writev_resumes.fetch_add(resumes, Ordering::Relaxed);
        }
        result
    }

    /// Sends one frame. Errors are never silent: a failure (including a
    /// short write that could not be continued) poisons the half, shuts
    /// the socket down, and counts in the meter's `tx_errors` — the
    /// stream cannot be trusted after a partial frame.
    pub fn send(&mut self, body: &[u8]) -> RlsResult<()> {
        if self.poisoned {
            return Err(RlsError::new(
                ErrorCode::Io,
                format!("connection to {} poisoned by an earlier send error", self.peer_label),
            ));
        }
        self.apply_send_fault(body)?;
        self.shape_outbound(body.len() + 4);
        if let Err(e) = self.write_frame_vectored(body) {
            self.poisoned = true;
            if let Some(meter) = &self.meter {
                meter.tx_errors.fetch_add(1, Ordering::Relaxed);
            }
            self.shutdown();
            return Err(e.into());
        }
        if let Some(meter) = &self.meter {
            meter.on_send(body.len() as u64 + 4);
        }
        Ok(())
    }

    /// Shuts down both directions, signalling EOF to the peer (and to
    /// any poller holding this connection's receive half).
    pub fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A framed connection, optionally shaped by a [`LinkProfile`] and charged
/// against a [`SharedIngress`] pool.
///
/// Shaping is applied on the *initiating* side of each frame: `send`
/// charges half the RTT plus serialization delay (per-connection and, if
/// configured, shared-ingress) before the bytes hit the socket; `recv`
/// charges half the RTT plus serialization delay for the received bytes
/// after they arrive. End-to-end request/response latency observed by a
/// shaped client therefore includes one full RTT plus both directions'
/// transfer time — what the paper's measurements see. Both halves meter
/// their serialization delay against one shared cursor, so pipelined
/// sends and receives queue behind each other as on a real link.
pub struct Conn {
    rx: RecvHalf,
    tx: SendHalf,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("peer", &self.rx.peer)
            .field("profile", &self.rx.profile)
            .finish_non_exhaustive()
    }
}

impl Conn {
    fn from_stream(
        stream: TcpStream,
        profile: LinkProfile,
        ingress: Option<SharedIngress>,
        max_frame: usize,
    ) -> RlsResult<Self> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let peer_label = peer.to_string();
        let cursor = Arc::new(Mutex::new(ConnCursor::new()));
        let rx = RecvHalf {
            stream: stream.try_clone()?,
            profile,
            cursor: Arc::clone(&cursor),
            max_frame,
            peer,
            peer_label: peer_label.clone(),
            meter: None,
            hook: None,
            buf: Vec::new(),
            start: 0,
            end: 0,
            rx_timeout: None,
        };
        let tx = SendHalf {
            stream,
            profile,
            ingress,
            cursor,
            peer,
            peer_label,
            meter: None,
            hook: None,
            poisoned: false,
        };
        Ok(Self { rx, tx })
    }

    /// The remote address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.rx.peer
    }

    /// Replaces the link profile (tests / reconfiguration).
    pub fn set_profile(&mut self, profile: LinkProfile) {
        self.rx.profile = profile;
        self.tx.profile = profile;
    }

    /// Attaches a shared ingress pool charged on every `send`.
    pub fn set_ingress(&mut self, ingress: SharedIngress) {
        self.tx.ingress = Some(ingress);
    }

    /// Attaches a traffic meter; every subsequent frame is counted.
    pub fn set_meter(&mut self, meter: Arc<ConnMeter>) {
        self.rx.meter = Some(Arc::clone(&meter));
        self.tx.meter = Some(meter);
    }

    /// Sets a read timeout on the underlying socket. Clears any
    /// non-blocking mode a zero-wait [`Conn::try_recv`] left behind.
    pub fn set_read_timeout(&mut self, d: Option<Duration>) -> RlsResult<()> {
        self.rx.set_read_timeout(d)
    }

    /// Attaches a fault-injection hook consulted around every frame.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.rx.hook = Some(Arc::clone(&hook));
        self.tx.hook = Some(hook);
    }

    /// Current receive-buffer capacity (regression surface for the
    /// retained-capacity cap).
    pub fn rx_capacity(&self) -> usize {
        self.rx.rx_capacity()
    }

    /// Borrows the two halves disjointly, so a caller can hold a
    /// borrowed frame from the receive half while sending on the send
    /// half (the pipelined client's steady state).
    pub fn halves(&mut self) -> (&mut RecvHalf, &mut SendHalf) {
        (&mut self.rx, &mut self.tx)
    }

    /// Splits into owned halves. The server uses this to park the
    /// receive half with the readiness poller while response writers
    /// share the send half behind a lock.
    pub fn split(self) -> (RecvHalf, SendHalf) {
        (self.rx, self.tx)
    }

    /// Reassembles a connection from its halves (they must come from the
    /// same [`Conn::split`] — pairing halves of different connections
    /// would cross-wire streams).
    pub fn join(rx: RecvHalf, tx: SendHalf) -> Self {
        Self { rx, tx }
    }

    /// Sends one frame.
    pub fn send(&mut self, body: &[u8]) -> RlsResult<()> {
        self.tx.send(body)
    }

    /// Receives one frame; `None` on clean EOF.
    pub fn recv(&mut self) -> RlsResult<Option<Vec<u8>>> {
        self.rx.recv()
    }

    /// Receives one frame as a borrow of the connection's receive
    /// buffer; `None` on clean EOF. The borrow is valid until the next
    /// receive or request call.
    pub fn recv_ref(&mut self) -> RlsResult<Option<&[u8]>> {
        self.rx.recv_ref()
    }

    /// Attempts to receive one frame, waiting at most `wait`; see
    /// [`RecvHalf::try_recv_ref`] for semantics. This owned-copy variant
    /// is kept for callers that need the frame to outlive the borrow.
    pub fn try_recv(&mut self, wait: Duration) -> RlsResult<TryRecv> {
        self.rx.try_recv(wait)
    }

    /// Attempts to receive one frame as a borrow; see
    /// [`RecvHalf::try_recv_ref`].
    pub fn try_recv_ref(&mut self, wait: Duration) -> RlsResult<TryRecvRef<'_>> {
        self.rx.try_recv_ref(wait)
    }

    /// Request/response exchange.
    pub fn request(&mut self, body: &[u8]) -> RlsResult<Vec<u8>> {
        self.send(body)?;
        self.recv()?
            .ok_or_else(|| RlsError::protocol("connection closed awaiting response"))
    }

    /// Request/response exchange returning the response as a borrow of
    /// the connection's receive buffer (no per-response allocation).
    pub fn request_ref(&mut self, body: &[u8]) -> RlsResult<&[u8]> {
        self.tx.send(body)?;
        self.rx
            .recv_ref()?
            .ok_or_else(|| RlsError::protocol("connection closed awaiting response"))
    }

    /// Shuts down the connection, signalling EOF to the peer.
    pub fn shutdown(&mut self) {
        self.tx.shutdown();
    }
}

/// Outcome of one [`Conn::try_recv`] attempt.
#[derive(Debug)]
pub enum TryRecv {
    /// A complete frame arrived.
    Frame(Vec<u8>),
    /// Nothing (or only part of a frame) arrived within the wait; the
    /// partial bytes are buffered and a later call resumes the read.
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
}

/// Options for [`connect_with`] beyond shaping: a connect timeout and a
/// fault-injection hook.
#[derive(Clone, Debug, Default)]
pub struct ConnectOptions {
    /// TCP connect timeout; `None` uses the OS default.
    pub timeout: Option<Duration>,
    /// Hook consulted before the connect and around every frame on the
    /// resulting connection.
    pub hook: Option<Arc<dyn FaultHook>>,
}

/// Connects to a server with the given shaping.
pub fn connect(
    addr: impl ToSocketAddrs,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
) -> RlsResult<Conn> {
    connect_with(addr, profile, ingress, &ConnectOptions::default())
}

/// Connects with a timeout and/or fault hook (see [`ConnectOptions`]).
pub fn connect_with(
    addr: impl ToSocketAddrs,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
    opts: &ConnectOptions,
) -> RlsResult<Conn> {
    let sa = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| RlsError::bad_request("address resolved to nothing"))?;
    if let Some(hook) = &opts.hook {
        match hook.on_connect(&sa.to_string()) {
            FaultDecision::Allow => {}
            FaultDecision::Delay(d) => std::thread::sleep(d),
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                return Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected connect stall to {sa}"),
                ));
            }
            FaultDecision::Refuse | FaultDecision::DropMidFrame => {
                return Err(RlsError::new(
                    ErrorCode::Io,
                    format!("injected connection refusal to {sa}"),
                ));
            }
        }
    }
    let stream = match opts.timeout {
        Some(d) => TcpStream::connect_timeout(&sa, d)?,
        None => TcpStream::connect(sa)?,
    };
    let mut conn = Conn::from_stream(stream, profile, ingress, DEFAULT_MAX_FRAME)?;
    if let Some(hook) = &opts.hook {
        conn.set_fault_hook(Arc::clone(hook));
    }
    Ok(conn)
}

/// A listening socket producing unshaped server-side [`Conn`]s.
pub struct Listener {
    inner: TcpListener,
    max_frame: usize,
}

impl Listener {
    /// Binds to an address (`port 0` for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs) -> RlsResult<Self> {
        Ok(Self {
            inner: TcpListener::bind(addr)?,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> RlsResult<SocketAddr> {
        Ok(self.inner.local_addr()?)
    }

    /// Overrides the per-frame size cap for accepted connections.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Accepts one connection.
    pub fn accept(&self) -> RlsResult<Conn> {
        self.inner.set_nonblocking(false)?;
        let (stream, _) = self.inner.accept()?;
        Conn::from_stream(stream, LinkProfile::unshaped(), None, self.max_frame)
    }

    /// Accepts one connection, waiting at most `wait`; `Ok(None)` when
    /// nothing arrived in time. Unlike a blocking [`Listener::accept`],
    /// this gives the accept loop a natural shutdown poll point — no
    /// self-connect tricks needed to unblock it.
    pub fn accept_timeout(&self, wait: Duration) -> RlsResult<Option<Conn>> {
        self.inner.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + wait;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    // Non-blocking inheritance from the listener is
                    // platform-dependent; the Conn's reads must block.
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Conn::from_stream(
                        stream,
                        LinkProfile::unshaped(),
                        None,
                        self.max_frame,
                    )?));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Clones the listener handle (for multi-threaded accept loops).
    pub fn try_clone(&self) -> RlsResult<Self> {
        Ok(Self {
            inner: self.inner.try_clone()?,
            max_frame: self.max_frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                std::thread::spawn(move || loop {
                    // Borrowed receive + send through the disjoint halves:
                    // the echo copies once into the response, never into an
                    // intermediate owned frame.
                    let (rx, tx) = conn.halves();
                    match rx.recv_ref() {
                        Ok(Some(body)) => {
                            let body = body.to_vec();
                            if tx.send(&body).is_err() {
                                break;
                            }
                        }
                        _ => break,
                    }
                });
                // Tests use few connections; accept loop exits when the
                // listener is dropped with the test.
            }
        });
        (addr, handle)
    }

    #[test]
    fn unshaped_round_trip() {
        let (addr, _h) = echo_server();
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let resp = conn.request(b"hello").unwrap();
        assert_eq!(resp, b"hello");
        let resp = conn.request(b"").unwrap();
        assert_eq!(resp, b"");
    }

    #[test]
    fn request_ref_round_trip_borrows_buffer() {
        let (addr, _h) = echo_server();
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let resp = conn.request_ref(b"zero-copy").unwrap();
        assert_eq!(resp, b"zero-copy");
        let resp = conn.request_ref(b"").unwrap();
        assert_eq!(resp, b"");
    }

    #[test]
    fn rtt_shaping_delays_round_trip() {
        let (addr, _h) = echo_server();
        let profile = LinkProfile {
            rtt: Duration::from_millis(40),
            bandwidth_bps: None,
        };
        let mut conn = connect(addr, profile, None).unwrap();
        let t0 = Instant::now();
        conn.request(b"ping").unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(38), "elapsed={elapsed:?}");
        assert!(elapsed < Duration::from_millis(400), "elapsed={elapsed:?}");
    }

    #[test]
    fn bandwidth_shaping_scales_with_size() {
        let (addr, _h) = echo_server();
        let profile = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: Some(8_000_000), // 1 MB/s
        };
        let mut conn = connect(addr, profile, None).unwrap();
        let body = vec![7u8; 100_000]; // 0.1 s each way
        let t0 = Instant::now();
        let resp = conn.request(&body).unwrap();
        assert_eq!(resp.len(), body.len());
        let elapsed = t0.elapsed().as_secs_f64();
        assert!((0.18..1.0).contains(&elapsed), "elapsed={elapsed}");
    }

    #[test]
    fn shared_ingress_contention_across_connections() {
        let (addr, _h) = echo_server();
        let pool = SharedIngress::new(8_000_000); // 1 MB/s shared
        let profile = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: None, // isolate the shared pool's effect
        };
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut conn = connect(addr, profile, Some(pool)).unwrap();
                    // 100 kB through a shared 1 MB/s pool: 0.1 s alone.
                    conn.request(&vec![1u8; 100_000]).unwrap();
                });
            }
        });
        // Three concurrent 0.1 s transfers through one pool ≈ 0.3 s.
        let elapsed = t0.elapsed().as_secs_f64();
        assert!((0.28..1.2).contains(&elapsed), "elapsed={elapsed}");
    }

    #[test]
    fn meter_counts_wire_bytes_both_directions() {
        let (addr, _h) = echo_server();
        let meter = Arc::new(ConnMeter::new());
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        conn.set_meter(Arc::clone(&meter));
        conn.request(b"hello").unwrap(); // 5 bytes + 4-byte header each way
        conn.request(b"").unwrap(); // header-only frames still count
        assert_eq!(meter.bytes_out(), 9 + 4);
        assert_eq!(meter.bytes_in(), 9 + 4);
        assert_eq!(meter.frames_out(), 2);
        assert_eq!(meter.frames_in(), 2);
        // Unstalled small frames take exactly one vectored write each.
        assert_eq!(meter.tx_writev(), 2);
        assert_eq!(meter.tx_writev_resumes(), 0);
        assert_eq!(meter.tx_errors(), 0);
    }

    #[test]
    fn try_recv_resumes_partial_frames() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut server = listener.accept().unwrap();
        // Nothing on the wire yet: idle, not an error.
        assert!(matches!(
            server.try_recv(Duration::from_millis(5)).unwrap(),
            TryRecv::Idle
        ));
        // Header plus half the body — the read must park, not fail.
        let body = b"hello-worker-pool";
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&body[..8]).unwrap();
        raw.flush().unwrap();
        assert!(matches!(
            server.try_recv(Duration::from_millis(20)).unwrap(),
            TryRecv::Idle
        ));
        // The rest arrives: the buffered half is completed, nothing lost.
        raw.write_all(&body[8..]).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv(Duration::from_millis(20)).unwrap() {
                TryRecv::Frame(f) => {
                    assert_eq!(f, body);
                    break;
                }
                TryRecv::Idle if Instant::now() < deadline => {}
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_wait_try_recv_probes_without_blocking() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut server = listener.accept().unwrap();
        // An empty socket answers Idle in (much) less than a millisecond —
        // this is the O_NONBLOCK path, not a 1 ms SO_RCVTIMEO wait.
        let start = Instant::now();
        for _ in 0..100 {
            assert!(matches!(
                server.try_recv(Duration::ZERO).unwrap(),
                TryRecv::Idle
            ));
        }
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "zero-wait probes blocked: {:?}",
            start.elapsed()
        );
        // Partial frame: the probe buffers the header and stays Idle.
        let body = b"ready";
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            server.try_recv(Duration::ZERO).unwrap(),
            TryRecv::Idle
        ));
        raw.write_all(body).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let frame = loop {
            match server.try_recv(Duration::ZERO).unwrap() {
                TryRecv::Frame(f) => break f,
                TryRecv::Idle if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected frame, got {other:?}"),
            }
        };
        assert_eq!(frame, body);
        // Returning the frame restored blocking mode: a response send and
        // a timed read both behave normally afterwards.
        server.send(b"ack").unwrap();
        let mut len = [0u8; 4];
        std::io::Read::read_exact(&mut raw, &mut len).unwrap();
        assert_eq!(u32::from_le_bytes(len), 3);
    }

    #[test]
    fn try_recv_drains_back_to_back_frames_and_sees_eof() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let mut server = listener.accept().unwrap();
        client.send(b"one").unwrap();
        client.send(b"two").unwrap();
        client.shutdown();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv(Duration::from_millis(20)).unwrap() {
                TryRecv::Frame(f) => got.push(f),
                TryRecv::Closed => break,
                TryRecv::Idle => assert!(Instant::now() < deadline, "timed out"),
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn try_recv_mid_frame_eof_is_protocol_error() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut server = listener.accept().unwrap();
        // Claim 100 bytes, deliver 3, vanish.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        raw.flush().unwrap();
        drop(raw);
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = loop {
            match server.try_recv(Duration::from_millis(20)) {
                Ok(TryRecv::Idle) if Instant::now() < deadline => {}
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code(), ErrorCode::Protocol);
    }

    #[test]
    fn try_recv_enforces_frame_cap() {
        let mut listener = Listener::bind("127.0.0.1:0").unwrap();
        listener.set_max_frame(64);
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut server = listener.accept().unwrap();
        raw.write_all(&1_000_000u32.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = loop {
            match server.try_recv(Duration::from_millis(20)) {
                Ok(TryRecv::Idle) if Instant::now() < deadline => {}
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code(), ErrorCode::ResourceLimit);
    }

    #[test]
    fn hostile_frame_length_rejected_before_any_allocation() {
        let mut listener = Listener::bind("127.0.0.1:0").unwrap();
        listener.set_max_frame(64);
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut server = listener.accept().unwrap();
        // A hostile header claiming u32::MAX bytes must be rejected from
        // the 4 header bytes alone — the receive buffer must never grow
        // toward the claimed length.
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = loop {
            match server.try_recv(Duration::from_millis(20)) {
                Ok(TryRecv::Idle) if Instant::now() < deadline => {}
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code(), ErrorCode::ResourceLimit);
        assert!(
            server.rx_capacity() <= READ_CHUNK,
            "buffer grew toward hostile length: {}",
            server.rx_capacity()
        );
    }

    #[test]
    fn rx_buffer_capacity_released_after_large_frame() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let mut server = listener.accept().unwrap();
        // One 1 MB bulk frame grows the buffer well past the retain cap…
        let big = vec![42u8; 1_000_000];
        let h = std::thread::spawn(move || {
            client.send(&big).unwrap();
            client.send(b"small").unwrap();
            client
        });
        let frame = server.recv().unwrap().unwrap();
        assert_eq!(frame.len(), 1_000_000);
        assert!(server.rx_capacity() >= 1_000_000);
        // …but once the buffer drains, the next receive call releases the
        // excess: a one-off bulk frame no longer pins ~1 MB per
        // connection forever.
        let frame = server.recv().unwrap().unwrap();
        assert_eq!(frame, b"small");
        let _client = h.join().unwrap();
        assert!(
            server.rx_capacity() <= RX_RETAIN_CAP,
            "retained {} bytes, cap is {}",
            server.rx_capacity(),
            RX_RETAIN_CAP
        );
    }

    #[test]
    fn send_error_poisons_connection_and_counts() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let meter = Arc::new(ConnMeter::new());
        client.set_meter(Arc::clone(&meter));
        let server = listener.accept().unwrap();
        drop(server); // peer gone: sends start failing once buffers fill
        let body = vec![9u8; 1 << 20];
        let mut first_err = None;
        for _ in 0..64 {
            if let Err(e) = client.send(&body) {
                first_err = Some(e);
                break;
            }
        }
        let err = first_err.expect("send into a dead peer must fail");
        assert_ne!(err.code(), ErrorCode::Internal);
        assert_eq!(meter.tx_errors(), 1);
        // Poisoned: the next send fails fast without touching the socket.
        let err = client.send(b"more").unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert_eq!(meter.tx_errors(), 1, "fast-fail must not recount");
    }

    #[test]
    fn split_halves_send_and_receive_concurrently() {
        let (addr, _h) = echo_server();
        let conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let (mut rx, mut tx) = conn.split();
        // Burst 50 frames before reading a single response: with a split
        // connection the sender never waits for the receiver.
        let n = 50u32;
        for i in 0..n {
            tx.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..n {
            let frame = rx.recv_ref().unwrap().expect("response");
            assert_eq!(frame, i.to_le_bytes());
        }
        // Halves rejoin into a working connection.
        let mut conn = Conn::join(rx, tx);
        assert_eq!(conn.request(b"joined").unwrap(), b"joined");
    }

    #[test]
    fn poll_ready_reports_readiness_without_consuming() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let server = listener.accept().unwrap();
        let (mut rx, _tx) = server.split();
        assert_eq!(rx.poll_ready(Duration::ZERO).unwrap(), Readiness::Idle);
        client.send(b"knock").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match rx.poll_ready(Duration::ZERO).unwrap() {
                Readiness::Ready => break,
                Readiness::Idle if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected ready, got {other:?}"),
            }
        }
        // Ready is idempotent and does not consume the frame.
        assert_eq!(rx.poll_ready(Duration::ZERO).unwrap(), Readiness::Ready);
        match rx.try_recv_ref(Duration::ZERO).unwrap() {
            TryRecvRef::Frame(f) => assert_eq!(f, b"knock"),
            other => panic!("expected frame, got {other:?}"),
        }
        client.shutdown();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match rx.poll_ready(Duration::ZERO).unwrap() {
                Readiness::Closed => break,
                Readiness::Idle if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected closed, got {other:?}"),
            }
        }
    }

    #[test]
    fn accept_timeout_times_out_then_accepts() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t0 = Instant::now();
        assert!(listener
            .accept_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        let _client = TcpStream::connect(addr).unwrap();
        let conn = listener.accept_timeout(Duration::from_secs(2)).unwrap();
        assert!(conn.is_some());
    }

    #[test]
    fn clean_eof_is_none() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            assert_eq!(conn.recv().unwrap().unwrap(), b"bye");
            assert_eq!(conn.recv().unwrap(), None);
        });
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        conn.send(b"bye").unwrap();
        conn.shutdown();
        h.join().unwrap();
    }
}
