/root/repo/target/release/deps/snapshot-ad507dc77b716014.d: crates/bench/benches/snapshot.rs

/root/repo/target/release/deps/snapshot-ad507dc77b716014: crates/bench/benches/snapshot.rs

crates/bench/benches/snapshot.rs:
