/root/repo/target/release/deps/rls-e1369e84dad8b127.d: src/lib.rs

/root/repo/target/release/deps/librls-e1369e84dad8b127.rlib: src/lib.rs

/root/repo/target/release/deps/librls-e1369e84dad8b127.rmeta: src/lib.rs

src/lib.rs:
