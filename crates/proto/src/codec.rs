//! Primitive wire encoding: little-endian integers, length-prefixed UTF-8
//! strings, and the shared composite types (attribute values, errors,
//! Bloom parameters).

use bytes::{Buf, BufMut, BytesMut};

use rls_bloom::BloomParams;
use rls_types::{
    AttrCompare, AttrValue, AttrValueType, AttributeDef, Dn, ErrorCode, ObjectType, RlsError,
    RlsResult, Timestamp,
};

/// Maximum length accepted for any single string on the wire.
pub const MAX_WIRE_STRING: usize = 64 * 1024;

/// Growable encode buffer.
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates a writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> BytesMut {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }
    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }
    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }
    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }
    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }
    /// Writes an f64 as its IEEE bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }
    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Length-prefixed list via a per-item closure.
    pub fn list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }

    /// Optional value: presence byte + payload.
    pub fn option<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a timestamp (unix microseconds).
    pub fn timestamp(&mut self, t: Timestamp) {
        self.u64(t.as_micros());
    }

    /// Writes a tagged attribute value.
    pub fn attr_value(&mut self, v: &AttrValue) {
        match v {
            AttrValue::Str(s) => {
                self.u8(AttrValueType::Str as u8);
                self.str(s);
            }
            AttrValue::Int(i) => {
                self.u8(AttrValueType::Int as u8);
                self.i64(*i);
            }
            AttrValue::Float(f) => {
                self.u8(AttrValueType::Float as u8);
                self.f64(*f);
            }
            AttrValue::Date(t) => {
                self.u8(AttrValueType::Date as u8);
                self.timestamp(*t);
            }
        }
    }

    /// Writes an attribute definition.
    pub fn attr_def(&mut self, d: &AttributeDef) {
        self.str(&d.name);
        self.u8(d.object_type as u8);
        self.u8(d.value_type as u8);
    }

    /// Writes an error (code + message).
    pub fn error(&mut self, e: &RlsError) {
        self.u16(e.code().as_u16());
        self.str(e.message());
    }

    /// Writes Bloom filter parameters.
    pub fn bloom_params(&mut self, p: BloomParams) {
        self.u32(p.bits_per_entry);
        self.u32(p.hashes);
    }

    /// Writes a distinguished name.
    pub fn dn(&mut self, dn: &Dn) {
        self.str(dn.as_str());
    }
}

/// Decode cursor over a received frame body.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a frame body.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed (frames must decode exactly).
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize) -> RlsResult<()> {
        if self.buf.len() < n {
            Err(RlsError::protocol(format!(
                "frame truncated: need {n} bytes, have {}",
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> RlsResult<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> RlsResult<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }
    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> RlsResult<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }
    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> RlsResult<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }
    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> RlsResult<i64> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }
    /// Reads an f64 from its IEEE bit pattern.
    pub fn f64(&mut self) -> RlsResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Reads a bool (any nonzero byte is true).
    pub fn bool(&mut self) -> RlsResult<bool> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string (bounded by [`MAX_WIRE_STRING`]).
    pub fn str(&mut self) -> RlsResult<String> {
        let len = self.u32()? as usize;
        if len > MAX_WIRE_STRING {
            return Err(RlsError::protocol(format!(
                "string length {len} exceeds limit"
            )));
        }
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|_| RlsError::protocol("invalid utf-8 string"))?
            .to_owned();
        self.buf = tail;
        Ok(s)
    }

    /// Reads length-prefixed raw bytes (bounded by the frame size).
    pub fn raw_bytes(&mut self) -> RlsResult<Vec<u8>> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        let v = head.to_vec();
        self.buf = tail;
        Ok(v)
    }

    /// Length-prefixed list via a per-item closure, with a sanity cap.
    pub fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> RlsResult<T>,
    ) -> RlsResult<Vec<T>> {
        let n = self.u32()? as usize;
        // Each element costs at least one byte; reject absurd counts before
        // allocating.
        if n > self.remaining() {
            return Err(RlsError::protocol(format!(
                "list count {n} exceeds frame size"
            )));
        }
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads an optional value: a presence bool, then the value if present.
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> RlsResult<T>,
    ) -> RlsResult<Option<T>> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a timestamp.
    pub fn timestamp(&mut self) -> RlsResult<Timestamp> {
        Ok(Timestamp::from_unix_micros(self.u64()?))
    }

    /// Reads a tagged attribute value.
    pub fn attr_value(&mut self) -> RlsResult<AttrValue> {
        let tag = AttrValueType::from_u8(self.u8()?)
            .ok_or_else(|| RlsError::protocol("bad attr value tag"))?;
        Ok(match tag {
            AttrValueType::Str => AttrValue::Str(self.str()?),
            AttrValueType::Int => AttrValue::Int(self.i64()?),
            AttrValueType::Float => AttrValue::Float(self.f64()?),
            AttrValueType::Date => AttrValue::Date(self.timestamp()?),
        })
    }

    /// Reads and validates an attribute definition.
    pub fn attr_def(&mut self) -> RlsResult<AttributeDef> {
        let name = self.str()?;
        let object_type = ObjectType::from_u8(self.u8()?)
            .ok_or_else(|| RlsError::protocol("bad object type"))?;
        let value_type = AttrValueType::from_u8(self.u8()?)
            .ok_or_else(|| RlsError::protocol("bad attr value type"))?;
        AttributeDef::new(name, object_type, value_type)
    }

    /// Reads a comparison operator.
    pub fn attr_compare(&mut self) -> RlsResult<AttrCompare> {
        AttrCompare::from_u8(self.u8()?).ok_or_else(|| RlsError::protocol("bad attr compare op"))
    }

    /// Reads an object-type tag.
    pub fn object_type(&mut self) -> RlsResult<ObjectType> {
        ObjectType::from_u8(self.u8()?).ok_or_else(|| RlsError::protocol("bad object type"))
    }

    /// Reads an error (code + message).
    pub fn error(&mut self) -> RlsResult<RlsError> {
        let code = ErrorCode::from_u16(self.u16()?)
            .ok_or_else(|| RlsError::protocol("unknown error code"))?;
        let msg = self.str()?;
        Ok(RlsError::new(code, msg))
    }

    /// Reads Bloom filter parameters.
    pub fn bloom_params(&mut self) -> RlsResult<BloomParams> {
        Ok(BloomParams {
            bits_per_entry: self.u32()?,
            hashes: self.u32()?,
        })
    }

    /// Reads a distinguished name.
    pub fn dn(&mut self) -> RlsResult<Dn> {
        Ok(Dn::new(self.str()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::with_capacity(64);
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-42);
        w.f64(2.5);
        w.bool(true);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.raw_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::with_capacity(8);
        w.u64(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn string_limit_enforced() {
        let mut w = Writer::with_capacity(8);
        w.u32((MAX_WIRE_STRING + 1) as u32);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let e = r.str().unwrap_err();
        assert_eq!(e.code(), ErrorCode::Protocol);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::with_capacity(8);
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn composite_round_trips() {
        let mut w = Writer::with_capacity(256);
        w.attr_value(&AttrValue::Str("s".into()));
        w.attr_value(&AttrValue::Int(-5));
        w.attr_value(&AttrValue::Float(1.25));
        w.attr_value(&AttrValue::Date(Timestamp::from_unix_secs(3)));
        let def = AttributeDef::new("size", ObjectType::Target, AttrValueType::Int).unwrap();
        w.attr_def(&def);
        w.error(&RlsError::new(ErrorCode::MappingExists, "dup"));
        w.bloom_params(BloomParams::PAPER);
        w.dn(&Dn::new("/O=Grid/CN=x"));
        w.option(Some(&"opt".to_owned()), |w, s| w.str(s));
        w.option(None::<&String>, |w, s| w.str(s));
        w.list(&["a".to_owned(), "b".to_owned()], |w, s| w.str(s));

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.attr_value().unwrap(), AttrValue::Str("s".into()));
        assert_eq!(r.attr_value().unwrap(), AttrValue::Int(-5));
        assert_eq!(r.attr_value().unwrap(), AttrValue::Float(1.25));
        assert_eq!(
            r.attr_value().unwrap(),
            AttrValue::Date(Timestamp::from_unix_secs(3))
        );
        assert_eq!(r.attr_def().unwrap(), def);
        let e = r.error().unwrap();
        assert_eq!(e.code(), ErrorCode::MappingExists);
        assert_eq!(r.bloom_params().unwrap(), BloomParams::PAPER);
        assert_eq!(r.dn().unwrap().as_str(), "/O=Grid/CN=x");
        assert_eq!(r.option(|r| r.str()).unwrap(), Some("opt".to_owned()));
        assert_eq!(r.option(|r| r.str()).unwrap(), None);
        assert_eq!(r.list(|r| r.str()).unwrap(), vec!["a", "b"]);
        assert!(r.is_done());
    }

    #[test]
    fn absurd_list_count_rejected() {
        let mut w = Writer::with_capacity(8);
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.list(|r| r.u8()).is_err());
    }
}
