//! **Figure 12** — Time for uncompressed LFN updates in a LAN to a single
//! RLI as the size and number of LRCs increase (log-linear in the paper).
//!
//! Paper result: update time grows with LRC database size (10 K → 100 K →
//! 1 M entries) and grows roughly linearly in the number of LRCs updating
//! the RLI concurrently (the RLI's ingest rate is the shared bottleneck) —
//! 6 LRCs × 1 M entries averaged 5102 s. The reproduced claims: both
//! growth directions and the multiplicative interaction.
//!
//! `--shards <n>` partitions the target RLI's index into `n` LFN-hash
//! shards (default 1 = the classic single-lock index the paper measured),
//! so the same sweep shows how much of the "linear in LRC count" slope is
//! the shared write lock rather than the ingest work itself.

use std::sync::Arc;

use rls_bench::{banner, header, manual_updates, row, start_rli_sharded, Scale};
use rls_core::{Server, Updater};
use rls_net::LinkProfile;
use rls_storage::BackendProfile;
use rls_types::Dn;
use rls_workload::{preload_lrc, summarize, NameGen};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 12",
        "uncompressed soft-state update times vs LRC size and count (LAN)",
        &scale,
    );
    println!("    rli shards: {}", scale.shards);
    let sizes: Vec<u64> = if scale.full {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![
            scale.pick(1_000, 0).max(1),
            scale.pick(5_000, 0).max(1),
            scale.pick(20_000, 0).max(1),
        ]
    };
    let max_lrcs = 8usize;
    header(&["entries/LRC", "num LRCs", "avg update (s)"]);

    for &entries in &sizes {
        // One set of LRC servers per size, reused across LRC-count points.
        let lrcs: Vec<Server> = (0..max_lrcs)
            .map(|_| {
                let s = rls_bench::start_lrc(BackendProfile::mysql_buffered());
                preload_lrc(&s, &NameGen::new("fig12"), entries).expect("preload");
                s
            })
            .collect();
        for num_lrcs in 1..=max_lrcs {
            // Fresh RLI per point so its ingest table starts empty.
            let rli = start_rli_sharded(BackendProfile::mysql_buffered(), scale.shards);
            let rli_addr = rli.addr().to_string();
            let durations: Vec<f64> = std::thread::scope(|s| {
                let handles: Vec<_> = lrcs[..num_lrcs]
                    .iter()
                    .map(|server| {
                        let rli_addr = rli_addr.clone();
                        s.spawn(move || {
                            let lrc = server.lrc().expect("lrc role");
                            let mut cfg = manual_updates();
                            cfg.link = LinkProfile::lan_100mbit();
                            let mut updater = Updater::new(
                                server.name().to_owned(),
                                Dn::anonymous(),
                                Arc::clone(lrc),
                                &cfg,
                            );
                            let target = rls_storage::RliTarget {
                                name: rli_addr,
                                flags: 0,
                                patterns: vec![],
                            };
                            updater
                                .send_full(&target)
                                .expect("full update")
                                .duration
                                .as_secs_f64()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("join")).collect()
            });
            let s = summarize(&durations);
            row(&[
                entries.to_string(),
                num_lrcs.to_string(),
                format!("{:.3}", s.mean),
            ]);
        }
    }
    println!("\n    expected shape: time grows with entries and ~linearly with concurrent LRCs");
}
