/root/repo/target/debug/deps/rls-a5adf356db569b07.d: src/lib.rs

/root/repo/target/debug/deps/librls-a5adf356db569b07.rlib: src/lib.rs

/root/repo/target/debug/deps/librls-a5adf356db569b07.rmeta: src/lib.rs

src/lib.rs:
