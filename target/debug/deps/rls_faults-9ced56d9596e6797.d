/root/repo/target/debug/deps/rls_faults-9ced56d9596e6797.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/librls_faults-9ced56d9596e6797.rlib: crates/faults/src/lib.rs

/root/repo/target/debug/deps/librls_faults-9ced56d9596e6797.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
