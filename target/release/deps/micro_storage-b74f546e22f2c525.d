/root/repo/target/release/deps/micro_storage-b74f546e22f2c525.d: crates/bench/benches/micro_storage.rs

/root/repo/target/release/deps/micro_storage-b74f546e22f2c525: crates/bench/benches/micro_storage.rs

crates/bench/benches/micro_storage.rs:
