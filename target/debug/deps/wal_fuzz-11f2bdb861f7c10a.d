/root/repo/target/debug/deps/wal_fuzz-11f2bdb861f7c10a.d: crates/storage/tests/wal_fuzz.rs

/root/repo/target/debug/deps/wal_fuzz-11f2bdb861f7c10a: crates/storage/tests/wal_fuzz.rs

crates/storage/tests/wal_fuzz.rs:
