/root/repo/target/debug/deps/softstate_semantics-e79def7392bbb447.d: crates/core/tests/softstate_semantics.rs

/root/repo/target/debug/deps/softstate_semantics-e79def7392bbb447: crates/core/tests/softstate_semantics.rs

crates/core/tests/softstate_semantics.rs:
