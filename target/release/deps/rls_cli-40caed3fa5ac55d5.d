/root/repo/target/release/deps/rls_cli-40caed3fa5ac55d5.d: src/bin/rls-cli.rs

/root/repo/target/release/deps/rls_cli-40caed3fa5ac55d5: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
