/root/repo/target/debug/examples/esg_fullmesh-36b102b5884afaba.d: examples/esg_fullmesh.rs

/root/repo/target/debug/examples/esg_fullmesh-36b102b5884afaba: examples/esg_fullmesh.rs

examples/esg_fullmesh.rs:
