/root/repo/target/release/deps/fig06_lrc_multiclient-ded97551be878b26.d: crates/bench/benches/fig06_lrc_multiclient.rs

/root/repo/target/release/deps/fig06_lrc_multiclient-ded97551be878b26: crates/bench/benches/fig06_lrc_multiclient.rs

crates/bench/benches/fig06_lrc_multiclient.rs:
