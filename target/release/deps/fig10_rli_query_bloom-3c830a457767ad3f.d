/root/repo/target/release/deps/fig10_rli_query_bloom-3c830a457767ad3f.d: crates/bench/benches/fig10_rli_query_bloom.rs

/root/repo/target/release/deps/fig10_rli_query_bloom-3c830a457767ad3f: crates/bench/benches/fig10_rli_query_bloom.rs

crates/bench/benches/fig10_rli_query_bloom.rs:
