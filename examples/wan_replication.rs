//! WAN replication study in miniature: measure soft-state update cost over
//! an emulated Los Angeles → Chicago link, comparing uncompressed and
//! Bloom-compressed updates — the §5.4/§5.5 story of the paper as a
//! runnable demo of the `rls-net` shaping API.
//!
//! Run: `cargo run --release --example wan_replication`

use std::sync::Arc;

use rls::bloom::BloomParams;
use rls::core::{
    LrcConfig, RliConfig, Server, ServerConfig, UpdateConfig, UpdateMode, Updater, FLAG_BLOOM,
};
use rls::net::LinkProfile;
use rls::storage::RliTarget;
use rls::types::{Dn, Mapping};

const ENTRIES: u64 = 30_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wan = LinkProfile::wan_la_chicago();
    println!(
        "emulated WAN: RTT {:?}, per-flow bandwidth {:.1} Mbit/s",
        wan.rtt,
        wan.bandwidth_bps.unwrap_or(0) as f64 / 1e6
    );

    // RLI "in Chicago".
    let rli = Server::start(ServerConfig {
        name: "rli-chicago".into(),
        rli: Some(RliConfig::default()),
        ..ServerConfig::default()
    })?;

    // LRC "in Los Angeles", Bloom mode so the counting filter is
    // maintained incrementally.
    let lrc = Server::start(ServerConfig {
        name: "lrc-losangeles".into(),
        lrc: Some(LrcConfig {
            update: UpdateConfig {
                mode: UpdateMode::Bloom {
                    interval: std::time::Duration::from_secs(3600),
                    params: BloomParams::PAPER,
                },
                link: wan,
                ..Default::default()
            },
            ..Default::default()
        }),
        ..ServerConfig::default()
    })?;

    println!("loading {ENTRIES} mappings into the LRC...");
    {
        let svc = lrc.lrc().expect("lrc role");
        for i in 0..ENTRIES {
            svc.create_mapping(&Mapping::new(
                format!("lfn://wan/file{i:08}"),
                format!("gsiftp://la-storage.example.org/data/file{i:08}"),
            )?)?;
        }
    }

    let svc = Arc::clone(lrc.lrc().expect("lrc role"));
    let cfg = lrc.config().lrc.as_ref().expect("config").update.clone();
    let mut updater = Updater::new(lrc.name().to_owned(), Dn::anonymous(), svc, &cfg);

    // Uncompressed full update over the WAN.
    let full_target = RliTarget {
        name: rli.addr().to_string(),
        flags: 0,
        patterns: vec![],
    };
    let full = updater.send_full(&full_target)?;
    println!(
        "uncompressed update: {} names, {} KB payload, {:?}",
        full.names,
        full.bytes / 1024,
        full.duration
    );

    // Bloom update over the same link (warm-up sizes the filter, the
    // second send is the steady-state cost).
    let bloom_target = RliTarget {
        flags: FLAG_BLOOM,
        ..full_target.clone()
    };
    updater.send_bloom(&bloom_target)?; // one-time generation
    let bloom = updater.send_bloom(&bloom_target)?;
    println!(
        "bloom update:        {} names summarized, {} KB bitmap, {:?}",
        bloom.names,
        bloom.bytes / 1024,
        bloom.duration
    );
    let speedup = full.duration.as_secs_f64() / bloom.duration.as_secs_f64();
    println!("bloom is {speedup:.1}x faster over this link (paper: 2–3 orders of magnitude at 1M+ entries in a congested LAN)");
    assert!(speedup > 1.0);
    Ok(())
}
