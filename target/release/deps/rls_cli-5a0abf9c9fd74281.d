/root/repo/target/release/deps/rls_cli-5a0abf9c9fd74281.d: src/bin/rls-cli.rs

/root/repo/target/release/deps/rls_cli-5a0abf9c9fd74281: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
