/root/repo/target/debug/deps/softstate_semantics-b922135e442f0b07.d: crates/core/tests/softstate_semantics.rs

/root/repo/target/debug/deps/libsoftstate_semantics-b922135e442f0b07.rmeta: crates/core/tests/softstate_semantics.rs

crates/core/tests/softstate_semantics.rs:
