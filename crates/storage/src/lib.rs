//! # `rls-storage`
//!
//! An embedded relational storage engine standing in for the MySQL /
//! PostgreSQL back ends of the original RLS (reached through ODBC in the
//! paper's Figure 2). See DESIGN.md §2 for the substitution argument.
//!
//! Layered as:
//!
//! * a small **generic engine** — typed [`Value`]s, [`TableSchema`]s, heap
//!   [`Table`]s with hash and ordered indexes, [`Predicate`] scans, a
//!   CRC-protected [write-ahead log](wal) with configurable flush modes, and
//!   snapshot persistence;
//! * two **backend profiles** ([`BackendProfile`]) reproducing the database
//!   behaviours the paper measures:
//!   - *MySQL-like*: deleted rows are reclaimed immediately (free-list
//!     reuse); the per-commit WAL flush can be enabled (paper's "database
//!     flush enabled", Fig. 4/5) or left to periodic background syncs;
//!   - *PostgreSQL-like*: deletes leave **dead tuples** in the heap and
//!     index; probes and scans must skip them, so throughput decays until a
//!     [`Database::vacuum`] physically reclaims them — the saw-tooth of
//!     Fig. 8;
//! * the two **paper schemas** from Figure 3: [`LrcDatabase`] (logical
//!   names, target names, mappings, four typed attribute tables, RLI update
//!   list, partition rules) and [`RliDatabase`] (logical names, LRCs, and
//!   timestamped associations with expiry).

#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod lrcdb;
pub mod predicate;
pub mod profile;
pub mod rlidb;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use engine::{Database, TableId};
pub use lrcdb::{BulkAttrOp, BulkMappingOp, LrcDatabase, LrcStats, MappingChange, RliTarget};
pub use rlidb::RliDbStats;
pub use stats::EngineStats;
pub use predicate::Predicate;
pub use profile::{BackendProfile, FlushMode, Vendor};
pub use rlidb::{RliDatabase, RliQueryHit, ShardedRliDatabase};
pub use schema::{ColumnDef, IndexKind, IndexSpec, TableSchema};
pub use table::{RowId, Table};
pub use txn::Transaction;
pub use value::{Value, ValueType};
pub use wal::Wal;
