/root/repo/target/debug/deps/rls-bc4bd3299f17dd97.d: src/lib.rs

/root/repo/target/debug/deps/librls-bc4bd3299f17dd97.rmeta: src/lib.rs

src/lib.rs:
