/root/repo/target/debug/deps/sharding-3d8ad0f3c3ea6063.d: crates/core/tests/sharding.rs

/root/repo/target/debug/deps/sharding-3d8ad0f3c3ea6063: crates/core/tests/sharding.rs

crates/core/tests/sharding.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
