/root/repo/target/debug/deps/rli_sharding-1653b33b4fba05d8.d: crates/core/tests/rli_sharding.rs

/root/repo/target/debug/deps/rli_sharding-1653b33b4fba05d8: crates/core/tests/rli_sharding.rs

crates/core/tests/rli_sharding.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
