/root/repo/target/debug/deps/admission-801406c0918f63e0.d: crates/core/tests/admission.rs

/root/repo/target/debug/deps/libadmission-801406c0918f63e0.rmeta: crates/core/tests/admission.rs

crates/core/tests/admission.rs:
