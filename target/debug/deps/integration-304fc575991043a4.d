/root/repo/target/debug/deps/integration-304fc575991043a4.d: tests/integration.rs

/root/repo/target/debug/deps/integration-304fc575991043a4: tests/integration.rs

tests/integration.rs:
