//! Timestamps for soft-state expiry and date attributes.
//!
//! The RLI mapping table stores an `updatetime` per `{LFN, LRC}` association;
//! an expire thread discards entries older than the allowed timeout. We use
//! a plain unix-epoch microsecond count: cheap to compare, cheap to encode,
//! and stable across the wire.

use std::fmt;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// Microseconds since the unix epoch.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The current wall-clock time.
    pub fn now() -> Self {
        let us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros();
        Self(us.min(u64::MAX as u128) as u64)
    }

    /// Builds a timestamp from whole unix seconds.
    pub const fn from_unix_secs(secs: u64) -> Self {
        Self(secs.saturating_mul(1_000_000))
    }

    /// Builds a timestamp from unix microseconds.
    pub const fn from_unix_micros(us: u64) -> Self {
        Self(us)
    }

    /// The raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// `self + d`, saturating.
    ///
    /// Deliberately an inherent method rather than `impl Add`: the operand
    /// is a `Duration`, and an inherent name keeps call sites explicit
    /// about saturation semantics.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, d: Duration) -> Self {
        Self(self.0.saturating_add(d.as_micros().min(u64::MAX as u128) as u64))
    }

    /// `self - d`, saturating at zero.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, d: Duration) -> Self {
        Self(self.0.saturating_sub(d.as_micros().min(u64::MAX as u128) as u64))
    }

    /// Elapsed time from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// True if this timestamp is older than `timeout` relative to `now`.
    ///
    /// This is the expiry predicate the RLI expire thread evaluates against
    /// `updatetime` columns.
    pub fn is_expired(self, now: Timestamp, timeout: Duration) -> bool {
        now.since(self) > timeout
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.as_secs(), self.0 % 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_enough() {
        let a = Timestamp::now();
        let b = Timestamp::now();
        assert!(b >= a);
    }

    #[test]
    fn arithmetic_round_trip() {
        let t = Timestamp::from_unix_secs(100);
        let later = t.add(Duration::from_millis(1500));
        assert_eq!(later.as_micros(), 101_500_000);
        assert_eq!(later.since(t), Duration::from_millis(1500));
        assert_eq!(later.sub(Duration::from_millis(1500)), t);
    }

    #[test]
    fn since_saturates() {
        let a = Timestamp::from_unix_secs(10);
        let b = Timestamp::from_unix_secs(20);
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn expiry_predicate() {
        let written = Timestamp::from_unix_secs(1000);
        let now = Timestamp::from_unix_secs(1031);
        assert!(written.is_expired(now, Duration::from_secs(30)));
        assert!(!written.is_expired(now, Duration::from_secs(31)));
        // An entry from the future is never expired.
        assert!(!now.is_expired(written, Duration::from_secs(1)));
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_unix_micros(1_500_000);
        assert_eq!(t.to_string(), "1.500000s");
    }

    #[test]
    fn saturating_bounds() {
        let t = Timestamp::from_unix_micros(u64::MAX);
        assert_eq!(t.add(Duration::from_secs(1)).as_micros(), u64::MAX);
        let z = Timestamp::from_unix_micros(0);
        assert_eq!(z.sub(Duration::from_secs(1)).as_micros(), 0);
    }
}
