/root/repo/target/debug/deps/rls_cli-502204d01eacdf00.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/rls_cli-502204d01eacdf00: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
