//! Measured false-positive behaviour at the paper's filter parameters.
//!
//! §3.4 sizes RLI Bloom filters at roughly 10 bits per mapping with 3
//! hash functions, giving a theoretical false-positive probability of
//! `(1 - e^(-k·n/m))^k ≈ 1.7%`. These tests pin both halves of the §3.2
//! soundness contract across several disjoint key universes ("seeds"):
//! an RLI may point a client at an LRC that lacks a mapping (false
//! positive, bounded below 2%), but must never hide an LRC that has one
//! (zero false negatives). Everything here is deterministic — fixed key
//! sets, fixed hash functions — so the measured rate never flakes.

use rls_bloom::{BloomFilter, BloomParams};

const MEMBERS: usize = 2_000;
const PROBES: usize = 20_000;

fn member(seed: u64, i: usize) -> String {
    format!("lfn://seed{seed}/data/file{i:06}")
}

fn non_member(seed: u64, i: usize) -> String {
    // A namespace no member key ever uses, per seed.
    format!("lfn://seed{seed}/absent/ghost{i:06}")
}

#[test]
fn paper_params_are_the_documented_shape() {
    let p = BloomParams::PAPER;
    assert_eq!(p.bits_per_entry, 10, "§3.4: ~10 bits per mapping");
    assert_eq!(p.hashes, 3, "§3.4: 3 hash functions");
}

#[test]
fn zero_false_negatives_and_fp_rate_under_two_percent() {
    for seed in 0u64..5 {
        let mut filter = BloomFilter::with_capacity(BloomParams::PAPER, MEMBERS as u64);
        for i in 0..MEMBERS {
            filter.insert(&member(seed, i));
        }
        // Soundness: every inserted mapping tests positive.
        for i in 0..MEMBERS {
            assert!(
                filter.contains(&member(seed, i)),
                "false negative for {} (seed {seed})",
                member(seed, i)
            );
        }
        // Precision: distinct non-members hit below the design bound.
        let false_positives = (0..PROBES)
            .filter(|&i| filter.contains(&non_member(seed, i)))
            .count();
        let rate = false_positives as f64 / PROBES as f64;
        assert!(
            rate <= 0.02,
            "seed {seed}: measured FP rate {rate:.4} exceeds 2% \
             ({false_positives}/{PROBES})"
        );
    }
}

#[test]
fn counting_filter_survives_remove_heavy_churn() {
    use rls_bloom::CountingBloomFilter;
    // Remove-heavy workload: every odd member churns out, twice over (the
    // second pass hits the guard), plus a stream of never-inserted keys is
    // "removed" (clients retrying deletes of mappings that never existed).
    // The membership guard must keep survivors free of false negatives and
    // the exported bitmap's false-positive rate at the design bound.
    for seed in 0u64..3 {
        let mut filter = CountingBloomFilter::with_capacity(BloomParams::PAPER, MEMBERS as u64);
        for i in 0..MEMBERS {
            filter.insert(&member(seed, i));
        }
        // The guard refuses removes of (almost all) absent keys: only an
        // absent key that false-positives can slip past, so refusals track
        // 1 - FP rate. Probe a clone — the handful that do slip through
        // legitimately decrement shared counters, which is exactly the
        // bounded corruption the guard cannot prevent, and the main
        // filter's no-false-negative assertions below need clean counts.
        let mut probe = filter.clone();
        let refused = (0..PROBES)
            .filter(|&i| !probe.remove(&non_member(seed, i)))
            .count();
        let refusal_rate = refused as f64 / PROBES as f64;
        assert!(
            refusal_rate >= 0.98,
            "seed {seed}: guard refused only {refusal_rate:.4} of absent-key removes"
        );
        // Genuine churn: remove every odd member, then remove it again —
        // the second pass finds the key absent and must change nothing.
        for i in (1..MEMBERS).step_by(2) {
            assert!(
                filter.remove(&member(seed, i)),
                "present member {} failed the remove guard (seed {seed})",
                member(seed, i)
            );
        }
        // (On a clone again: a slipped double-remove decrements counters
        // shared with survivors, and the pristine filter below must show
        // the guard's best case.)
        let mut again = filter.clone();
        let double_removed = (1..MEMBERS)
            .step_by(2)
            .filter(|&i| again.remove(&member(seed, i)))
            .count();
        assert!(
            (double_removed as f64 / (MEMBERS / 2) as f64) <= 0.02,
            "seed {seed}: {double_removed} double-removes slipped past the guard"
        );
        // Survivors must all still test positive, here and in the bitmap
        // an RLI would receive.
        let bitmap = filter.to_bitmap();
        for i in (0..MEMBERS).step_by(2) {
            assert!(
                filter.contains(&member(seed, i)),
                "false negative for {} after churn (seed {seed})",
                member(seed, i)
            );
            assert!(bitmap.contains(&member(seed, i)));
        }
        // Precision holds after churn: the half-empty filter false-positives
        // well under the full-filter design bound.
        let false_positives = (0..PROBES)
            .filter(|&i| bitmap.contains(&format!("lfn://seed{seed}/other/ghost{i:06}")))
            .count();
        let rate = false_positives as f64 / PROBES as f64;
        assert!(
            rate <= 0.02,
            "seed {seed}: post-churn FP rate {rate:.4} exceeds 2%"
        );
    }
}
