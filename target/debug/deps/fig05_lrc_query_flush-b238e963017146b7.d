/root/repo/target/debug/deps/fig05_lrc_query_flush-b238e963017146b7.d: crates/bench/benches/fig05_lrc_query_flush.rs

/root/repo/target/debug/deps/libfig05_lrc_query_flush-b238e963017146b7.rmeta: crates/bench/benches/fig05_lrc_query_flush.rs

crates/bench/benches/fig05_lrc_query_flush.rs:
