/root/repo/target/debug/deps/micro_bloom-fbac6b0724c797e2.d: crates/bench/benches/micro_bloom.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_bloom-fbac6b0724c797e2.rmeta: crates/bench/benches/micro_bloom.rs Cargo.toml

crates/bench/benches/micro_bloom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
