/root/repo/target/release/deps/rls_cli-d28301655ac982c1.d: src/bin/rls-cli.rs

/root/repo/target/release/deps/rls_cli-d28301655ac982c1: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
