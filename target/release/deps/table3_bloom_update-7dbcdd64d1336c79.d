/root/repo/target/release/deps/table3_bloom_update-7dbcdd64d1336c79.d: crates/bench/benches/table3_bloom_update.rs

/root/repo/target/release/deps/table3_bloom_update-7dbcdd64d1336c79: crates/bench/benches/table3_bloom_update.rs

crates/bench/benches/table3_bloom_update.rs:
