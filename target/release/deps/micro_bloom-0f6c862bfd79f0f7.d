/root/repo/target/release/deps/micro_bloom-0f6c862bfd79f0f7.d: crates/bench/benches/micro_bloom.rs

/root/repo/target/release/deps/micro_bloom-0f6c862bfd79f0f7: crates/bench/benches/micro_bloom.rs

crates/bench/benches/micro_bloom.rs:
