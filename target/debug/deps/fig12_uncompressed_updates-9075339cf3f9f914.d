/root/repo/target/debug/deps/fig12_uncompressed_updates-9075339cf3f9f914.d: crates/bench/benches/fig12_uncompressed_updates.rs

/root/repo/target/debug/deps/libfig12_uncompressed_updates-9075339cf3f9f914.rmeta: crates/bench/benches/fig12_uncompressed_updates.rs

crates/bench/benches/fig12_uncompressed_updates.rs:
