/root/repo/target/release/deps/micro_bloom-bb8bcd1f1d56f833.d: crates/bench/benches/micro_bloom.rs

/root/repo/target/release/deps/micro_bloom-bb8bcd1f1d56f833: crates/bench/benches/micro_bloom.rs

crates/bench/benches/micro_bloom.rs:
