/root/repo/target/debug/deps/integration-ee3a53c507c200f9.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-ee3a53c507c200f9.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
