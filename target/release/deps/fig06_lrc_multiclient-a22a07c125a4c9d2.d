/root/repo/target/release/deps/fig06_lrc_multiclient-a22a07c125a4c9d2.d: crates/bench/benches/fig06_lrc_multiclient.rs

/root/repo/target/release/deps/fig06_lrc_multiclient-a22a07c125a4c9d2: crates/bench/benches/fig06_lrc_multiclient.rs

crates/bench/benches/fig06_lrc_multiclient.rs:
