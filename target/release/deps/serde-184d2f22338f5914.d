/root/repo/target/release/deps/serde-184d2f22338f5914.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-184d2f22338f5914.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-184d2f22338f5914.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
