/root/repo/target/debug/examples/wan_replication-c1eede1fe3b14fd9.d: examples/wan_replication.rs

/root/repo/target/debug/examples/wan_replication-c1eede1fe3b14fd9: examples/wan_replication.rs

examples/wan_replication.rs:
