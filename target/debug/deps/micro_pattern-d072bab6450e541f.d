/root/repo/target/debug/deps/micro_pattern-d072bab6450e541f.d: crates/bench/benches/micro_pattern.rs

/root/repo/target/debug/deps/libmicro_pattern-d072bab6450e541f.rmeta: crates/bench/benches/micro_pattern.rs

crates/bench/benches/micro_pattern.rs:
