/root/repo/target/debug/deps/rls_metrics-b16975cc09525cc7.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/debug/deps/rls_metrics-b16975cc09525cc7: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/telemetry.rs:
