//! Access-pattern distributions for query workloads.
//!
//! The paper's methodology queries names uniformly; real Grid catalogs see
//! heavily skewed access (popular datasets dominate). [`UniformPick`] and
//! [`ZipfPick`] provide both shapes for extended experiments, deterministic
//! under a fixed seed so trials are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform selection over `[0, n)`.
#[derive(Debug)]
pub struct UniformPick {
    rng: StdRng,
    n: u64,
}

impl UniformPick {
    /// A seeded uniform picker.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        Self {
            rng: StdRng::seed_from_u64(seed),
            n,
        }
    }

    /// The next index.
    pub fn next_index(&mut self) -> u64 {
        self.rng.gen_range(0..self.n)
    }
}

/// Zipf-distributed selection over `[0, n)` (rank 0 most popular), using
/// the rejection-inversion sampler of Hörmann & Derflinger — O(1) per
/// sample, no per-rank tables.
#[derive(Debug)]
pub struct ZipfPick {
    rng: StdRng,
    n: u64,
    exponent: f64,
    // Precomputed sampler constants.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl ZipfPick {
    /// A seeded Zipf picker with the given exponent (`1.0` is the classic
    /// web/catalog skew; must be positive and ≠ 1 handled via the general
    /// formulas below).
    pub fn new(n: u64, exponent: f64, seed: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(exponent > 0.0, "exponent must be positive");
        let mut z = Self {
            rng: StdRng::seed_from_u64(seed),
            n,
            exponent,
            h_x1: 0.0,
            h_n: 0.0,
            s: 0.0,
        };
        z.h_x1 = z.h(1.5) - 1.0;
        z.h_n = z.h(n as f64 + 0.5);
        z.s = 2.0 - z.h_inv(z.h(2.5) - (2.0f64).powf(-exponent));
        z
    }

    /// H(x) = ∫ x^-exponent dx, with the exponent-=1 special case.
    fn h(&self, x: f64) -> f64 {
        if (self.exponent - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            x.powf(1.0 - self.exponent) / (1.0 - self.exponent)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.exponent - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (x * (1.0 - self.exponent)).powf(1.0 / (1.0 - self.exponent))
        }
    }

    /// The next rank in `[0, n)`; rank 0 is the most popular.
    pub fn next_index(&mut self) -> u64 {
        loop {
            let u = self.h_n + self.rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - k.powf(-self.exponent) {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_range() {
        let mut p = UniformPick::new(100, 42);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let i = p.next_index();
            assert!(i < 100);
            seen[i as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 95);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut p = ZipfPick::new(1000, 1.0, 7);
        let mut counts = vec![0u32; 1000];
        let samples = 100_000;
        for _ in 0..samples {
            let i = p.next_index();
            assert!(i < 1000);
            counts[i as usize] += 1;
        }
        // Rank 0 should dominate: with s=1 over n=1000, p(0) ≈ 1/H_1000 ≈ 13%.
        let p0 = f64::from(counts[0]) / f64::from(samples);
        assert!((0.08..0.20).contains(&p0), "p0={p0}");
        // Monotone-ish decay: top-10 share far exceeds a uniform slice.
        let top10: u32 = counts[..10].iter().sum();
        assert!(f64::from(top10) / f64::from(samples) > 0.25);
        // Tail still reachable.
        assert!(counts[500..].iter().any(|&c| c > 0));
    }

    #[test]
    fn zipf_high_exponent_concentrates_more() {
        let sample_p0 = |expnt: f64| {
            let mut p = ZipfPick::new(1000, expnt, 11);
            let mut zero = 0u32;
            for _ in 0..20_000 {
                if p.next_index() == 0 {
                    zero += 1;
                }
            }
            f64::from(zero) / 20_000.0
        };
        assert!(sample_p0(1.5) > sample_p0(0.8));
    }

    #[test]
    fn seeded_pickers_are_deterministic() {
        let seq = |seed| {
            let mut p = ZipfPick::new(50, 1.2, seed);
            (0..20).map(|_| p.next_index()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn empty_population_rejected() {
        UniformPick::new(0, 1);
    }
}
