/root/repo/target/debug/examples/ligo_catalog-d4336b6a1ac0e45a.d: examples/ligo_catalog.rs

/root/repo/target/debug/examples/ligo_catalog-d4336b6a1ac0e45a: examples/ligo_catalog.rs

examples/ligo_catalog.rs:
