/root/repo/target/release/deps/rls_bench-783cf179cc533f7c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-783cf179cc533f7c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-783cf179cc533f7c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
