//! The Replica Location Index database: Figure 3's RLI schema.
//!
//! Three tables — `t_lfn (id, name, ref)`, `t_lrc (id, name, ref)` and
//! `t_map (lfn_id, lrc_id, updatetime)` — hold the `{LN, LRC}` associations
//! an RLI serves when it receives **uncompressed** soft-state updates.
//! (Bloom-compressed updates bypass this store entirely: the paper's §3.1 —
//! "no database is used in the RLI; Bloom filters are instead stored in RLI
//! memory" — is implemented in `rls-core::rli`.)
//!
//! Soft-state semantics: every association carries the `updatetime` of the
//! update that (re-)asserted it; [`RliDatabase::expire`] discards
//! associations older than the configured timeout, as the paper's expire
//! thread does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use rls_bloom::{fnv1a_64, splitmix64};
use rls_types::{ErrorCode, Glob, RlsError, RlsResult, Timestamp};

use crate::engine::{Database, TableId};
use crate::profile::BackendProfile;
use crate::schema::{ColumnDef, IndexSpec, TableSchema};
use crate::table::RowId;
use crate::txn::Transaction;
use crate::value::{Value, ValueType};

const IDX_ID: usize = 0;
const IDX_NAME: usize = 1;
const MAP_IDX_LFN: usize = 0;

/// One RLI query answer: an LRC believed to hold mappings for the queried
/// logical name, plus when that belief was last refreshed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RliQueryHit {
    /// The LRC's address.
    pub lrc: Arc<str>,
    /// Timestamp of the soft-state update that last asserted this
    /// association.
    pub updated_at: Timestamp,
}

/// Counters for the RLI's stats RPC (snapshot form).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RliDbStats {
    /// Associations upserted by soft-state updates.
    pub upserts: u64,
    /// Associations removed by incremental deletes.
    pub removes: u64,
    /// Associations discarded by the expire thread.
    pub expired: u64,
    /// Queries served.
    pub queries: u64,
}

impl RliDbStats {
    /// Adds another snapshot into this one (per-shard accumulation).
    pub fn accumulate(&mut self, other: &RliDbStats) {
        self.upserts += other.upserts;
        self.removes += other.removes;
        self.expired += other.expired;
        self.queries += other.queries;
    }
}

/// Internal atomic counters so read-only queries work through `&self`.
#[derive(Debug, Default)]
struct RliStatCounters {
    upserts: AtomicU64,
    removes: AtomicU64,
    expired: AtomicU64,
    queries: AtomicU64,
}

impl RliStatCounters {
    fn snapshot(&self) -> RliDbStats {
        RliDbStats {
            upserts: self.upserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }
}

/// The RLI's relational store (uncompressed-update mode).
#[derive(Debug)]
pub struct RliDatabase {
    db: Database,
    t_lfn: TableId,
    t_lrc: TableId,
    t_map: TableId,
    next_id: i64,
    stats: RliStatCounters,
}

fn name_table(name: &str) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            ColumnDef::new("id", ValueType::Int),
            ColumnDef::new("name", ValueType::Str),
            ColumnDef::new("ref", ValueType::Int),
        ],
        vec![IndexSpec::unique_hash(0), IndexSpec::unique_ordered(1)],
    )
}

impl RliDatabase {
    fn from_db(mut db: Database) -> RlsResult<Self> {
        let t_lfn = db.create_table(name_table("t_lfn"));
        let t_lrc = db.create_table(name_table("t_lrc"));
        let t_map = db.create_table(TableSchema::new(
            "t_map",
            vec![
                ColumnDef::new("lfn_id", ValueType::Int),
                ColumnDef::new("lrc_id", ValueType::Int),
                ColumnDef::new("updatetime", ValueType::Time),
            ],
            vec![IndexSpec::hash(0), IndexSpec::hash(1)],
        ));
        db.recover()?;
        let mut rli = Self {
            db,
            t_lfn,
            t_lrc,
            t_map,
            next_id: 1,
            stats: RliStatCounters::default(),
        };
        rli.next_id = rli
            .db
            .table(rli.t_lfn)
            .scan()
            .chain(rli.db.table(rli.t_lrc).scan())
            .map(|(_, r)| r[0].as_int())
            .max()
            .unwrap_or(0)
            + 1;
        Ok(rli)
    }

    /// Creates an in-memory RLI store.
    pub fn in_memory(profile: BackendProfile) -> Self {
        Self::from_db(Database::in_memory(profile)).expect("in-memory recovery cannot fail")
    }

    /// Opens a WAL-backed RLI store.
    pub fn open(profile: BackendProfile, wal_path: impl AsRef<std::path::Path>) -> RlsResult<Self> {
        Self::from_db(Database::open(profile, wal_path)?)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Database {
        &self.db
    }

    /// Counters.
    pub fn stats(&self) -> RliDbStats {
        self.stats.snapshot()
    }

    fn find_name(&self, table: TableId, name: &str) -> Option<(RowId, i64, i64)> {
        self.db
            .table(table)
            .index_lookup(IDX_NAME, &Value::str(name))
            .next()
            .map(|(rid, row)| (rid, row[0].as_int(), row[2].as_int()))
    }

    fn name_by_id(&self, table: TableId, id: i64) -> Option<Arc<str>> {
        self.db
            .table(table)
            .index_lookup(IDX_ID, &Value::Int(id))
            .next()
            .map(|(_, row)| row[1].as_shared_str())
    }

    fn intern_name(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        name: &str,
    ) -> RlsResult<i64> {
        if let Some((rid, id, refs)) = self.find_name(table, name) {
            self.db.txn_update(
                txn,
                table,
                rid,
                vec![Value::Int(id), Value::str(name), Value::Int(refs + 1)],
            )?;
            Ok(id)
        } else {
            let id = self.next_id;
            self.next_id += 1;
            self.db.txn_insert(
                txn,
                table,
                vec![Value::Int(id), Value::str(name), Value::Int(1)],
            )?;
            Ok(id)
        }
    }

    fn release_name(&mut self, txn: &mut Transaction, table: TableId, id: i64) -> RlsResult<()> {
        let Some((rid, _, refs)) = self
            .db
            .table(table)
            .index_lookup(IDX_ID, &Value::Int(id))
            .next()
            .map(|(rid, row)| (rid, row[0].as_int(), row[2].as_int()))
        else {
            return Err(RlsError::storage(format!("release of unknown id {id}")));
        };
        if refs > 1 {
            let name = self.db.table(table).get(rid).expect("live")[1].clone();
            self.db.txn_update(
                txn,
                table,
                rid,
                vec![Value::Int(id), name, Value::Int(refs - 1)],
            )?;
        } else {
            self.db.txn_delete(txn, table, rid)?;
        }
        Ok(())
    }

    /// Upserts one `{LFN, LRC}` association with the given update time.
    /// Returns true if the association is new.
    pub fn upsert(&mut self, lfn: &str, lrc: &str, at: Timestamp) -> RlsResult<bool> {
        let mut txn = Transaction::new();
        let result = self.upsert_in(&mut txn, lfn, lrc, at)?;
        self.db.commit(txn)?;
        Ok(result)
    }

    fn upsert_in(
        &mut self,
        txn: &mut Transaction,
        lfn: &str,
        lrc: &str,
        at: Timestamp,
    ) -> RlsResult<bool> {
        // Fast path: association exists → refresh updatetime.
        if let (Some((_, lfn_id, _)), Some((_, lrc_id, _))) =
            (self.find_name(self.t_lfn, lfn), self.find_name(self.t_lrc, lrc))
        {
            let hit = self
                .db
                .table(self.t_map)
                .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
                .find(|(_, row)| row[1].as_int() == lrc_id)
                .map(|(rid, _)| rid);
            if let Some(rid) = hit {
                self.db.txn_update(
                    txn,
                    self.t_map,
                    rid,
                    vec![Value::Int(lfn_id), Value::Int(lrc_id), Value::Time(at)],
                )?;
                self.stats.upserts.fetch_add(1, Ordering::Relaxed);
                return Ok(false);
            }
        }
        let lfn_id = self.intern_name(txn, self.t_lfn, lfn)?;
        let lrc_id = self.intern_name(txn, self.t_lrc, lrc)?;
        self.db.txn_insert(
            txn,
            self.t_map,
            vec![Value::Int(lfn_id), Value::Int(lrc_id), Value::Time(at)],
        )?;
        self.stats.upserts.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Applies a batch of upserts as a single transaction — the shape of an
    /// arriving soft-state update (full or the "added" half of an
    /// incremental one).
    pub fn upsert_batch<'a>(
        &mut self,
        lrc: &str,
        lfns: impl IntoIterator<Item = &'a str>,
        at: Timestamp,
    ) -> RlsResult<u64> {
        let mut txn = Transaction::new();
        let mut n = 0;
        for lfn in lfns {
            self.upsert_in(&mut txn, lfn, lrc, at)?;
            n += 1;
        }
        self.db.commit(txn)?;
        Ok(n)
    }

    /// Removes one association (the "removed" half of an incremental
    /// update). Unknown associations are ignored — the RLI may already have
    /// expired them.
    pub fn remove(&mut self, lfn: &str, lrc: &str) -> RlsResult<bool> {
        let (Some((_, lfn_id, _)), Some((_, lrc_id, _))) =
            (self.find_name(self.t_lfn, lfn), self.find_name(self.t_lrc, lrc))
        else {
            return Ok(false);
        };
        let Some(rid) = self
            .db
            .table(self.t_map)
            .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            .find(|(_, row)| row[1].as_int() == lrc_id)
            .map(|(rid, _)| rid)
        else {
            return Ok(false);
        };
        let mut txn = Transaction::new();
        self.db.txn_delete(&mut txn, self.t_map, rid)?;
        self.release_name(&mut txn, self.t_lfn, lfn_id)?;
        self.release_name(&mut txn, self.t_lrc, lrc_id)?;
        self.db.commit(txn)?;
        self.stats.removes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Queries the LRCs believed to hold mappings for `lfn`.
    pub fn query(&self, lfn: &str) -> RlsResult<Vec<RliQueryHit>> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let Some((_, lfn_id, _)) = self.find_name(self.t_lfn, lfn) else {
            return Err(RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("logical name {lfn:?} not in index"),
            ));
        };
        let hits = self
            .db
            .table(self.t_map)
            .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            .filter_map(|(_, row)| {
                self.name_by_id(self.t_lrc, row[1].as_int()).map(|lrc| RliQueryHit {
                    lrc,
                    updated_at: row[2].as_time(),
                })
            })
            .collect();
        Ok(hits)
    }

    /// Wildcard query over indexed logical names: `(lfn, lrc)` pairs whose
    /// LFN matches the glob. (Only possible in uncompressed mode — the
    /// paper notes wildcard RLI searches "are not possible when using Bloom
    /// filter compression".)
    pub fn wildcard_query(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<(Arc<str>, Arc<str>)>> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        let prefix = glob.literal_prefix().to_owned();
        let lfn_rows: Vec<(i64, Arc<str>)> = self
            .db
            .table(self.t_lfn)
            .index_prefix_scan(IDX_NAME, &prefix)
            .filter(|(_, row)| glob.matches(row[1].as_str()))
            .map(|(_, row)| (row[0].as_int(), row[1].as_shared_str()))
            .collect();
        'outer: for (lfn_id, lfn_name) in lfn_rows {
            for (_, map_row) in self
                .db
                .table(self.t_map)
                .index_lookup(MAP_IDX_LFN, &Value::Int(lfn_id))
            {
                if let Some(lrc) = self.name_by_id(self.t_lrc, map_row[1].as_int()) {
                    out.push((Arc::clone(&lfn_name), lrc));
                    if out.len() >= limit {
                        break 'outer;
                    }
                }
            }
        }
        Ok(out)
    }

    /// The LRCs currently updating this RLI ("RLI management: query LRCs
    /// that update RLI").
    pub fn lrc_list(&self) -> Vec<Arc<str>> {
        self.db
            .table(self.t_lrc)
            .index_prefix_scan(IDX_NAME, "")
            .map(|(_, row)| row[1].as_shared_str())
            .collect()
    }

    /// Number of `{LFN, LRC}` associations held.
    pub fn association_count(&self) -> u64 {
        self.db.table(self.t_map).len()
    }

    /// Number of distinct logical names indexed.
    pub fn lfn_count(&self) -> u64 {
        self.db.table(self.t_lfn).len()
    }

    /// Number of associations attributed to one LRC (0 if the LRC is
    /// unknown). Reads the interned name row's refcount — every
    /// association holds one reference — so this is O(1), cheap enough
    /// for the telemetry sampler's divergence gauges.
    pub fn count_for_lrc(&self, lrc: &str) -> u64 {
        self.find_name(self.t_lrc, lrc)
            .map(|(_, _, refs)| refs.max(0) as u64)
            .unwrap_or(0)
    }

    /// Visits every indexed logical name (hierarchical RLI forwarding).
    pub fn for_each_lfn(&self, mut f: impl FnMut(&str)) {
        for (_, row) in self.db.table(self.t_lfn).index_prefix_scan(IDX_NAME, "") {
            f(row[1].as_str());
        }
    }

    /// Discards associations whose `updatetime` is older than `timeout`
    /// relative to `now`. Returns the number expired. This is the paper's
    /// expire-thread pass.
    pub fn expire(&mut self, now: Timestamp, timeout: std::time::Duration) -> RlsResult<u64> {
        let stale: Vec<(RowId, i64, i64)> = self
            .db
            .table(self.t_map)
            .scan()
            .filter(|(_, row)| row[2].as_time().is_expired(now, timeout))
            .map(|(rid, row)| (rid, row[0].as_int(), row[1].as_int()))
            .collect();
        if stale.is_empty() {
            return Ok(0);
        }
        let mut txn = Transaction::new();
        let n = stale.len() as u64;
        for (rid, lfn_id, lrc_id) in stale {
            self.db.txn_delete(&mut txn, self.t_map, rid)?;
            self.release_name(&mut txn, self.t_lfn, lfn_id)?;
            self.release_name(&mut txn, self.t_lrc, lrc_id)?;
        }
        self.db.commit(txn)?;
        self.stats.expired.fetch_add(n, Ordering::Relaxed);
        Ok(n)
    }
}

/// The LFN-hash-partitioned RLI store: N independent [`RliDatabase`]
/// engines behind their own locks, routed by the same splitmix64-finalized
/// FNV-1a mixer the LRC catalog shards (and the Bloom filters) use.
///
/// The paper's Fig. 12 measures RLI ingest under concurrent LRC senders;
/// with one relational store every update frame from every sender
/// serializes on a single write lock. Partitioning by LFN puts concurrent
/// senders' names on disjoint shards so their applies proceed in parallel:
///
/// * **LFN-keyed operations** (upsert, remove, point query) take only the
///   owner shard's lock.
/// * **Wildcard reads, `lrc_list`, counts and `count_for_lrc`** fan out,
///   locking one shard at a time (ascending order) and merging — there is
///   no global lock to take. An LRC's associations live on every shard its
///   names hash to, so per-LRC counts are sums of per-shard refcounts.
/// * **Expire sweeps** visit one shard at a time; senders on other shards
///   keep applying throughout.
///
/// Durability mirrors the LRC catalog's `ShardedCatalog` naming: one
/// shard keeps the exact configured WAL path (old RLI stores reopen
/// unchanged); with N > 1 shard *i* logs to `<wal_path>.s<i>`. The shard
/// count of a durable store is part of its on-disk identity — reopening
/// with a different N would route names to the wrong shard.
#[derive(Debug)]
pub struct ShardedRliDatabase {
    shards: Box<[RwLock<RliDatabase>]>,
}

/// Derives shard `i`'s WAL path from the configured base path.
fn shard_wal_path(base: &std::path::Path, i: usize) -> std::path::PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".s{i}"));
    std::path::PathBuf::from(os)
}

impl ShardedRliDatabase {
    /// Opens all shards, replaying each WAL; `wal_path: None` keeps every
    /// shard in memory. `shards` is clamped to at least 1; with exactly 1
    /// the configured path is used verbatim so legacy stores reopen.
    pub fn open(
        profile: BackendProfile,
        wal_path: Option<&std::path::Path>,
        shards: usize,
    ) -> RlsResult<Self> {
        let n = shards.max(1);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let db = match wal_path {
                Some(path) if n == 1 => RliDatabase::open(profile, path)?,
                Some(path) => RliDatabase::open(profile, shard_wal_path(path, i))?,
                None => RliDatabase::in_memory(profile),
            };
            out.push(RwLock::new(db));
        }
        Ok(Self {
            shards: out.into_boxed_slice(),
        })
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a logical name.
    pub fn shard_of(&self, lfn: &str) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (splitmix64(fnv1a_64(lfn.as_bytes())) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard's lock (tests, benches, stats plumbing).
    pub fn shard(&self, i: usize) -> &RwLock<RliDatabase> {
        &self.shards[i]
    }

    /// Read-locks the shard owning `lfn`.
    pub fn read_owner(&self, lfn: &str) -> (usize, RwLockReadGuard<'_, RliDatabase>) {
        let i = self.shard_of(lfn);
        (i, self.shards[i].read())
    }

    /// Write-locks the shard owning `lfn`.
    pub fn write_owner(&self, lfn: &str) -> (usize, RwLockWriteGuard<'_, RliDatabase>) {
        let i = self.shard_of(lfn);
        (i, self.shards[i].write())
    }

    /// Groups logical names into per-shard buckets of `(index into the
    /// input, name)` pairs, ascending shard order, empty buckets included.
    /// The apply paths use this to visit each touched shard exactly once.
    pub fn bucket_by_shard<'a>(
        &self,
        lfns: impl IntoIterator<Item = &'a str>,
    ) -> Vec<Vec<&'a str>> {
        let mut buckets: Vec<Vec<&'a str>> = vec![Vec::new(); self.shards.len()];
        for lfn in lfns {
            buckets[self.shard_of(lfn)].push(lfn);
        }
        buckets
    }

    /// Queries the LRCs believed to hold mappings for `lfn` (owner shard).
    pub fn query(&self, lfn: &str) -> RlsResult<Vec<RliQueryHit>> {
        self.read_owner(lfn).1.query(lfn)
    }

    /// Wildcard query fanned out across shards up to `limit`. Within a
    /// shard results come back in index order; across shards the
    /// concatenation is unordered.
    pub fn wildcard_query(&self, glob: &Glob, limit: usize) -> RlsResult<Vec<(Arc<str>, Arc<str>)>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let remaining = limit.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            out.append(&mut shard.read().wildcard_query(glob, remaining)?);
        }
        Ok(out)
    }

    /// The LRCs present on any shard, deduplicated (a sender's names hash
    /// to every shard, so its row exists on each of them).
    pub fn lrc_list(&self) -> Vec<Arc<str>> {
        let mut seen = std::collections::BTreeSet::new();
        for shard in self.shards.iter() {
            seen.extend(shard.read().lrc_list());
        }
        seen.into_iter().collect()
    }

    /// `{LFN, LRC}` associations held, summed across shards.
    pub fn association_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().association_count()).sum()
    }

    /// Distinct logical names indexed, summed across shards (a name lives
    /// on exactly one shard, so the sum is exact).
    pub fn lfn_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().lfn_count()).sum()
    }

    /// Associations attributed to one LRC, summed across shards — still
    /// O(shards) refcount reads, cheap enough for the divergence gauges.
    pub fn count_for_lrc(&self, lrc: &str) -> u64 {
        self.shards.iter().map(|s| s.read().count_for_lrc(lrc)).sum()
    }

    /// Association counts per shard (the skew diagnostic behind the
    /// `rli.shard.imbalance_ppm` gauge).
    pub fn per_shard_association_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.read().association_count()).collect()
    }

    /// Visits every indexed logical name, shard by shard, without holding
    /// more than one shard lock at a time.
    pub fn for_each_lfn(&self, mut f: impl FnMut(&str)) {
        for shard in self.shards.iter() {
            shard.read().for_each_lfn(&mut f);
        }
    }

    /// Store counters, accumulated across shards.
    pub fn stats(&self) -> RliDbStats {
        let mut total = RliDbStats::default();
        for shard in self.shards.iter() {
            total.accumulate(&shard.read().stats());
        }
        total
    }

    /// Engine counters, accumulated across shards.
    pub fn engine_stats(&self) -> crate::stats::EngineStats {
        let mut total = crate::stats::EngineStats::default();
        for shard in self.shards.iter() {
            total.accumulate(&shard.read().engine().stats());
        }
        total
    }

    /// Expires stale associations shard by shard — one shard lock at a
    /// time, so concurrent applies on other shards never wait on the
    /// sweep. Returns the total number expired.
    pub fn expire(&self, now: Timestamp, timeout: std::time::Duration) -> RlsResult<u64> {
        let mut n = 0;
        for shard in self.shards.iter() {
            n += shard.write().expire(now, timeout)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rli() -> RliDatabase {
        RliDatabase::in_memory(BackendProfile::default())
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_unix_secs(s)
    }

    #[test]
    fn upsert_and_query() {
        let mut r = rli();
        assert!(r.upsert("lfn://a", "lrc-1:39281", ts(100)).unwrap());
        assert!(r.upsert("lfn://a", "lrc-2:39281", ts(100)).unwrap());
        let mut hits = r.query("lfn://a").unwrap();
        hits.sort_by(|a, b| a.lrc.cmp(&b.lrc));
        assert_eq!(hits.len(), 2);
        assert_eq!(&*hits[0].lrc, "lrc-1:39281");
        assert_eq!(hits[0].updated_at, ts(100));
        assert_eq!(r.query("lfn://zzz").unwrap_err().code(), ErrorCode::LogicalNameNotFound);
    }

    #[test]
    fn upsert_refreshes_timestamp() {
        let mut r = rli();
        assert!(r.upsert("lfn://a", "lrc-1", ts(100)).unwrap());
        assert!(!r.upsert("lfn://a", "lrc-1", ts(200)).unwrap());
        let hits = r.query("lfn://a").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].updated_at, ts(200));
        assert_eq!(r.association_count(), 1);
    }

    #[test]
    fn expire_discards_stale_associations() {
        let mut r = rli();
        r.upsert("lfn://old", "lrc-1", ts(100)).unwrap();
        r.upsert("lfn://fresh", "lrc-1", ts(190)).unwrap();
        let expired = r.expire(ts(200), Duration::from_secs(30)).unwrap();
        assert_eq!(expired, 1);
        assert!(r.query("lfn://old").is_err());
        assert_eq!(r.query("lfn://fresh").unwrap().len(), 1);
        // lrc-1 still referenced by the fresh association.
        assert_eq!(r.lrc_list().len(), 1);
        // Second expire pass with nothing stale.
        assert_eq!(r.expire(ts(200), Duration::from_secs(30)).unwrap(), 0);
    }

    #[test]
    fn expire_refreshed_by_subsequent_update() {
        let mut r = rli();
        r.upsert("lfn://a", "lrc-1", ts(100)).unwrap();
        r.upsert("lfn://a", "lrc-1", ts(195)).unwrap(); // refresh
        assert_eq!(r.expire(ts(200), Duration::from_secs(30)).unwrap(), 0);
        assert_eq!(r.query("lfn://a").unwrap().len(), 1);
    }

    #[test]
    fn remove_and_refcounts() {
        let mut r = rli();
        r.upsert("lfn://a", "lrc-1", ts(1)).unwrap();
        r.upsert("lfn://a", "lrc-2", ts(1)).unwrap();
        r.upsert("lfn://b", "lrc-1", ts(1)).unwrap();
        assert_eq!(r.count_for_lrc("lrc-1"), 2);
        assert_eq!(r.count_for_lrc("lrc-2"), 1);
        assert_eq!(r.count_for_lrc("lrc-unknown"), 0);
        r.remove("lfn://b", "lrc-1").unwrap();
        assert_eq!(r.count_for_lrc("lrc-1"), 1);
        assert!(r.remove("lfn://a", "lrc-1").unwrap());
        assert_eq!(r.query("lfn://a").unwrap().len(), 1);
        assert!(!r.remove("lfn://a", "lrc-1").unwrap()); // idempotent
        assert!(r.remove("lfn://a", "lrc-2").unwrap());
        assert!(r.query("lfn://a").is_err());
        assert_eq!(r.lfn_count(), 0);
        assert!(r.lrc_list().is_empty());
    }

    #[test]
    fn batch_upsert() {
        let mut r = rli();
        let names: Vec<String> = (0..100).map(|i| format!("lfn://b/{i}")).collect();
        let n = r
            .upsert_batch("lrc-1", names.iter().map(|s| s.as_str()), ts(5))
            .unwrap();
        assert_eq!(n, 100);
        assert_eq!(r.association_count(), 100);
        assert_eq!(r.lrc_list().len(), 1);
        assert_eq!(r.query("lfn://b/42").unwrap().len(), 1);
    }

    #[test]
    fn wildcard_query() {
        let mut r = rli();
        for i in 0..10 {
            r.upsert(&format!("lfn://x/{i}"), "lrc-1", ts(1)).unwrap();
        }
        r.upsert("lfn://y/0", "lrc-2", ts(1)).unwrap();
        let g = Glob::new("lfn://x/*").unwrap();
        let hits = r.wildcard_query(&g, 100).unwrap();
        assert_eq!(hits.len(), 10);
        let hits = r.wildcard_query(&g, 3).unwrap();
        assert_eq!(hits.len(), 3);
    }

    fn sharded(n: usize) -> ShardedRliDatabase {
        ShardedRliDatabase::open(BackendProfile::default(), None, n).unwrap()
    }

    #[test]
    fn sharded_routing_is_deterministic_and_clamped() {
        let s = sharded(4);
        for i in 0..64 {
            let lfn = format!("lfn://route/{i}");
            let owner = s.shard_of(&lfn);
            assert!(owner < 4);
            assert_eq!(owner, s.shard_of(&lfn), "routing must be stable");
        }
        let one = sharded(1);
        for i in 0..64 {
            assert_eq!(one.shard_of(&format!("lfn://route/{i}")), 0);
        }
        assert_eq!(sharded(0).shard_count(), 1);
    }

    #[test]
    fn sharded_fanout_merges_and_counts_sum() {
        let s = sharded(4);
        let names: Vec<String> = (0..64).map(|i| format!("lfn://fan/{i}")).collect();
        for n in &names {
            s.write_owner(n).1.upsert(n, "lrc-1", ts(5)).unwrap();
        }
        s.write_owner("lfn://fan/0").1.upsert("lfn://fan/0", "lrc-2", ts(5)).unwrap();
        // A sender's rows exist on every shard its names hash to; the
        // merged list still reports it once.
        let lrcs = s.lrc_list();
        assert_eq!(lrcs.len(), 2);
        assert_eq!(s.association_count(), 65);
        assert_eq!(s.lfn_count(), 64);
        assert_eq!(s.count_for_lrc("lrc-1"), 64);
        assert_eq!(s.count_for_lrc("lrc-2"), 1);
        assert_eq!(s.count_for_lrc("lrc-zzz"), 0);
        let per_shard = s.per_shard_association_counts();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().sum::<u64>(), 65);
        assert!(per_shard.iter().all(|&c| c > 0), "64 names must spread: {per_shard:?}");
        let g = Glob::new("lfn://fan/*").unwrap();
        assert_eq!(s.wildcard_query(&g, 1000).unwrap().len(), 65);
        assert_eq!(s.wildcard_query(&g, 7).unwrap().len(), 7);
        let mut visited = 0;
        s.for_each_lfn(|_| visited += 1);
        assert_eq!(visited, 64);
        assert_eq!(s.query("lfn://fan/1").unwrap().len(), 1);
        assert!(s.query("lfn://nowhere").is_err());
        assert_eq!(s.stats().upserts, 65);
    }

    #[test]
    fn sharded_expire_sweeps_every_shard() {
        let s = sharded(4);
        for i in 0..32 {
            let lfn = format!("lfn://old/{i}");
            s.write_owner(&lfn).1.upsert(&lfn, "lrc-1", ts(100)).unwrap();
        }
        s.write_owner("lfn://fresh").1.upsert("lfn://fresh", "lrc-1", ts(195)).unwrap();
        assert_eq!(s.expire(ts(200), Duration::from_secs(30)).unwrap(), 32);
        assert_eq!(s.association_count(), 1);
        assert_eq!(s.count_for_lrc("lrc-1"), 1);
    }

    #[test]
    fn sharded_wals_reopen_independently() {
        let dir = std::env::temp_dir().join(format!("rls-rlishard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("rli.wal");
        let _ = std::fs::remove_file(&wal);
        for i in 0..4 {
            let _ = std::fs::remove_file(shard_wal_path(&wal, i));
        }
        let names: Vec<String> = (0..24).map(|i| format!("lfn://wal/{i}")).collect();
        {
            let s =
                ShardedRliDatabase::open(BackendProfile::mysql_durable(), Some(&wal), 4).unwrap();
            for n in &names {
                s.write_owner(n).1.upsert(n, "lrc-1", ts(9)).unwrap();
            }
        }
        for i in 0..4 {
            assert!(shard_wal_path(&wal, i).exists(), "missing WAL for shard {i}");
        }
        let s = ShardedRliDatabase::open(BackendProfile::mysql_durable(), Some(&wal), 4).unwrap();
        assert_eq!(s.association_count(), 24);
        for n in &names {
            assert_eq!(s.query(n).unwrap().len(), 1, "lost {n} across reopen");
        }
        // One shard uses the exact configured path — legacy stores reopen.
        {
            let s =
                ShardedRliDatabase::open(BackendProfile::mysql_durable(), Some(&wal), 1).unwrap();
            s.write_owner("lfn://one").1.upsert("lfn://one", "lrc-1", ts(9)).unwrap();
        }
        assert!(wal.exists());
        let legacy = RliDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
        assert_eq!(legacy.query("lfn://one").unwrap().len(), 1);
        let _ = std::fs::remove_file(&wal);
        for i in 0..4 {
            let _ = std::fs::remove_file(shard_wal_path(&wal, i));
        }
    }

    #[test]
    fn durable_rli_recovers() {
        let dir = std::env::temp_dir().join(format!("rls-rlidb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("rli.wal");
        let _ = std::fs::remove_file(&wal);
        {
            let mut r = RliDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
            r.upsert("lfn://d", "lrc-1", ts(9)).unwrap();
        }
        let mut r = RliDatabase::open(BackendProfile::mysql_durable(), &wal).unwrap();
        assert_eq!(r.query("lfn://d").unwrap().len(), 1);
        r.upsert("lfn://d2", "lrc-2", ts(10)).unwrap();
        assert_eq!(r.association_count(), 2);
    }
}
