/root/repo/target/debug/examples/esg_fullmesh-bbacda217ee4848b.d: examples/esg_fullmesh.rs Cargo.toml

/root/repo/target/debug/examples/libesg_fullmesh-bbacda217ee4848b.rmeta: examples/esg_fullmesh.rs Cargo.toml

examples/esg_fullmesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
