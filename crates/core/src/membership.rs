//! Membership management (framework element 5, paper §3.6).
//!
//! The framework calls for "a membership service that manages the LRCs and
//! RLIs participating in a Replica Location Service and responds to changes
//! in membership". The evaluated implementation — and this one — uses
//! *static configuration*: a description of the member servers and the
//! update topology, applied to the LRCs' `t_rli` update lists.
//!
//! [`MembershipConfig`] parses the same flat text format the rest of the
//! configuration uses and [`MembershipConfig::apply`] reconciles a running
//! LRC's update list against it, so re-applying an edited file *is* the
//! membership change protocol: new RLIs start receiving updates on the next
//! cycle, removed ones stop and their soft state expires — exactly the
//! "changes to the update patterns among LRCs and RLIs" §2 describes.
//!
//! Format (one member per line):
//!
//! ```text
//! # name        role       address          [updates: bloom|full] [patterns...]
//! member lrc-a  lrc        127.0.0.1:39281
//! member rli-1  rli        127.0.0.1:39282
//! member rli-2  rli        127.0.0.1:39283
//! update lrc-a  rli-1      bloom
//! update lrc-a  rli-2      full ^lfn://ligo/.*
//! ```

use std::collections::HashMap;

use rls_types::{Regex, RlsError, RlsResult};

use crate::lrc::LrcService;
use crate::softstate::FLAG_BLOOM;

/// A member server's role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberRole {
    /// Local Replica Catalog.
    Lrc,
    /// Replica Location Index.
    Rli,
    /// Combined server.
    Both,
}

/// One member of the replica location service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Symbolic name used in `update` lines.
    pub name: String,
    /// Role.
    pub role: MemberRole,
    /// Network address.
    pub address: String,
}

/// One edge of the update topology: an LRC feeding an RLI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateEdge {
    /// Sending LRC's member name.
    pub from: String,
    /// Receiving RLI's member name.
    pub to: String,
    /// Bloom-compressed updates requested.
    pub bloom: bool,
    /// Partition patterns.
    pub patterns: Vec<String>,
}

/// A parsed membership description.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Member servers by name.
    pub members: Vec<Member>,
    /// Update topology.
    pub edges: Vec<UpdateEdge>,
}

impl MembershipConfig {
    /// Parses the membership text format.
    pub fn parse(text: &str) -> RlsResult<Self> {
        let mut cfg = Self::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let err = |msg: &str| {
                RlsError::bad_request(format!("membership line {}: {msg}", lineno + 1))
            };
            match fields.as_slice() {
                ["member", name, role, address] => {
                    let role = match *role {
                        "lrc" => MemberRole::Lrc,
                        "rli" => MemberRole::Rli,
                        "both" => MemberRole::Both,
                        other => return Err(err(&format!("unknown role {other:?}"))),
                    };
                    if cfg.members.iter().any(|m| m.name == *name) {
                        return Err(err(&format!("duplicate member {name:?}")));
                    }
                    cfg.members.push(Member {
                        name: (*name).to_owned(),
                        role,
                        address: (*address).to_owned(),
                    });
                }
                ["update", from, to, rest @ ..] => {
                    let mut bloom = false;
                    let mut patterns = Vec::new();
                    for extra in rest {
                        match *extra {
                            "bloom" => bloom = true,
                            "full" => bloom = false,
                            pattern => {
                                Regex::new(pattern)
                                    .map_err(|e| e.context(format!("line {}", lineno + 1)))?;
                                patterns.push(pattern.to_owned());
                            }
                        }
                    }
                    cfg.edges.push(UpdateEdge {
                        from: (*from).to_owned(),
                        to: (*to).to_owned(),
                        bloom,
                        patterns,
                    });
                }
                _ => return Err(err("expected `member <name> <role> <addr>` or `update <from> <to> ...`")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> RlsResult<()> {
        let by_name: HashMap<&str, &Member> =
            self.members.iter().map(|m| (m.name.as_str(), m)).collect();
        for edge in &self.edges {
            let from = by_name.get(edge.from.as_str()).ok_or_else(|| {
                RlsError::bad_request(format!("update edge from unknown member {:?}", edge.from))
            })?;
            let to = by_name.get(edge.to.as_str()).ok_or_else(|| {
                RlsError::bad_request(format!("update edge to unknown member {:?}", edge.to))
            })?;
            if from.role == MemberRole::Rli {
                return Err(RlsError::bad_request(format!(
                    "member {:?} is a pure RLI and cannot send updates",
                    edge.from
                )));
            }
            if to.role == MemberRole::Lrc {
                return Err(RlsError::bad_request(format!(
                    "member {:?} is a pure LRC and cannot receive updates",
                    edge.to
                )));
            }
        }
        Ok(())
    }

    /// The member entry for `name`.
    pub fn member(&self, name: &str) -> Option<&Member> {
        self.members.iter().find(|m| m.name == name)
    }

    /// The update targets configured for the member named `lrc_name`.
    pub fn targets_of(&self, lrc_name: &str) -> Vec<&UpdateEdge> {
        self.edges.iter().filter(|e| e.from == lrc_name).collect()
    }

    /// Reconciles a running LRC's update list with this configuration:
    /// registers missing RLIs, removes ones no longer listed, updates
    /// changed flags/patterns. Returns `(added, removed)` counts —
    /// applying an unchanged config is a no-op `(0, 0)`.
    pub fn apply(&self, lrc_name: &str, lrc: &LrcService) -> RlsResult<(usize, usize)> {
        let desired: HashMap<String, &UpdateEdge> = self
            .targets_of(lrc_name)
            .into_iter()
            .map(|e| {
                let addr = self
                    .member(&e.to)
                    .map(|m| m.address.clone())
                    .expect("validated");
                (addr, e)
            })
            .collect();
        let catalog = lrc.catalog();
        let current = catalog.list_rlis();
        let mut added = 0;
        let mut removed = 0;
        // Remove or refresh existing entries.
        for target in &current {
            match desired.get(&target.name) {
                None => {
                    catalog.remove_rli(&target.name)?;
                    removed += 1;
                }
                Some(edge) => {
                    let flags = if edge.bloom { FLAG_BLOOM } else { 0 };
                    if target.flags != flags || target.patterns != edge.patterns {
                        catalog.remove_rli(&target.name)?;
                        catalog.add_rli(&target.name, flags, &edge.patterns)?;
                        // A changed edge counts as both.
                        added += 1;
                        removed += 1;
                    }
                }
            }
        }
        // Add new entries.
        for (addr, edge) in &desired {
            if !current.iter().any(|t| &t.name == addr) {
                let flags = if edge.bloom { FLAG_BLOOM } else { 0 };
                catalog.add_rli(addr, flags, &edge.patterns)?;
                added += 1;
            }
        }
        Ok((added, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LrcConfig;

    const SAMPLE: &str = r#"
# a three-server RLS
member lrc-a  lrc   127.0.0.1:40001
member rli-1  rli   127.0.0.1:40002
member esg-x  both  127.0.0.1:40003

update lrc-a  rli-1  bloom
update lrc-a  esg-x  full ^lfn://ligo/.*
update esg-x  rli-1  bloom
"#;

    #[test]
    fn parse_sample() {
        let cfg = MembershipConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.members.len(), 3);
        assert_eq!(cfg.edges.len(), 3);
        assert_eq!(cfg.member("esg-x").unwrap().role, MemberRole::Both);
        let targets = cfg.targets_of("lrc-a");
        assert_eq!(targets.len(), 2);
        assert!(targets[0].bloom);
        assert_eq!(targets[1].patterns, vec!["^lfn://ligo/.*"]);
    }

    #[test]
    fn validation_errors() {
        assert!(MembershipConfig::parse("member a lrc x\nupdate a missing").is_err());
        assert!(MembershipConfig::parse("member a rli x\nmember b rli y\nupdate a b").is_err());
        assert!(MembershipConfig::parse("member a lrc x\nmember b lrc y\nupdate a b").is_err());
        assert!(MembershipConfig::parse("member a lrc x\nmember a lrc y").is_err());
        assert!(MembershipConfig::parse("member a superserver x").is_err());
        assert!(MembershipConfig::parse("garbage line here also").is_err());
        assert!(MembershipConfig::parse("member a lrc x\nmember b rli y\nupdate a b bad[re").is_err());
    }

    #[test]
    fn apply_reconciles_update_list() {
        let lrc = LrcService::new(LrcConfig::default()).unwrap();
        let v1 = MembershipConfig::parse(
            "member me lrc 127.0.0.1:1\nmember r1 rli 127.0.0.1:2\nmember r2 rli 127.0.0.1:3\n\
             update me r1 bloom\nupdate me r2 full",
        )
        .unwrap();
        assert_eq!(v1.apply("me", &lrc).unwrap(), (2, 0));
        // Idempotent.
        assert_eq!(v1.apply("me", &lrc).unwrap(), (0, 0));
        assert_eq!(lrc.catalog().list_rlis().len(), 2);

        // Membership change: r2 leaves, r3 joins, r1's mode flips to full.
        let v2 = MembershipConfig::parse(
            "member me lrc 127.0.0.1:1\nmember r1 rli 127.0.0.1:2\nmember r3 rli 127.0.0.1:4\n\
             update me r1 full\nupdate me r3 bloom",
        )
        .unwrap();
        let (added, removed) = v2.apply("me", &lrc).unwrap();
        assert_eq!((added, removed), (2, 2)); // r3 new + r1 changed; r2 gone + r1 changed
        let mut rlis = lrc.catalog().list_rlis();
        rlis.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(rlis.len(), 2);
        assert_eq!(rlis[0].name, "127.0.0.1:2");
        assert_eq!(rlis[0].flags, 0);
        assert_eq!(rlis[1].name, "127.0.0.1:4");
        assert_eq!(rlis[1].flags, FLAG_BLOOM);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = MembershipConfig::parse("# nothing\n\n  # more\n").unwrap();
        assert!(cfg.members.is_empty());
    }
}
