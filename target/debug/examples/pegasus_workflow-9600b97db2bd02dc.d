/root/repo/target/debug/examples/pegasus_workflow-9600b97db2bd02dc.d: examples/pegasus_workflow.rs

/root/repo/target/debug/examples/libpegasus_workflow-9600b97db2bd02dc.rmeta: examples/pegasus_workflow.rs

examples/pegasus_workflow.rs:
