//! **Figure 13** — Average time to perform continuous Bloom filter updates
//! from an increasing number of LRC clients (WAN; 14 clients, 5 million
//! mappings each).
//!
//! Paper result: per-client update time stays flat (≈6.5–7 s) up to about
//! 7 concurrent clients, then grows (≈11.5 s at 14) as the RLI's ingress
//! becomes the bottleneck. The reproduced claims: a flat region while
//! offered load < ingress capacity, then roughly linear growth.
//!
//! The contention mechanism is the shared-ingress bandwidth pool of
//! `rls-net` (per-flow WAN throughput ≈7.4 Mbit/s; pool sized at 7 flows'
//! worth, where the paper's knee sits).

use std::sync::Arc;

use rls_bench::{banner, header, manual_updates, row, start_rli, Scale};
use rls_bloom::BloomParams;
use rls_core::{Server, UpdateConfig, UpdateMode, Updater};
use rls_net::{LinkProfile, SharedIngress};
use rls_storage::BackendProfile;
use rls_types::Dn;
use rls_workload::{preload_lrc, summarize, NameGen};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 13",
        "continuous WAN Bloom updates from 1–14 LRC clients",
        &scale,
    );
    let entries = scale.pick(100_000, 5_000_000);
    let updates_per_client = scale.trials.max(2);
    let max_clients = 14usize;
    let wan = LinkProfile::wan_la_chicago();
    // RLI ingress: capacity for ~7 clients' offered load (the paper's
    // knee). A continuous client's duty cycle is transfer/(transfer+RTT);
    // at paper scale (5 M entries, ~6.8 s transfers) that is ≈99 % and the
    // pool converges to 7 × per-flow bandwidth; scaled-down filters spend
    // proportionally more of each cycle in RTT, so the pool scales with
    // the effective offered rate to keep the knee where the paper saw it.
    let flow_bps = wan.bandwidth_bps.expect("wan has bandwidth") as f64;
    let filter_bits = (entries * 10) as f64;
    let transfer_s = filter_bits / flow_bps;
    let cycle_s = transfer_s + wan.rtt.as_secs_f64();
    let ingress_bps = ((7.0 * filter_bits / cycle_s) as u64).max(1_000_000);
    println!(
        "    {entries} mappings per LRC; per-flow {:.1} Mbit/s; shared ingress {:.1} Mbit/s",
        flow_bps / 1e6,
        ingress_bps as f64 / 1e6
    );
    header(&["clients", "avg update (s)", "min", "max"]);

    // Start LRC servers once (preloading dominates setup time).
    let rli = start_rli();
    let lrcs: Vec<Server> = (0..max_clients)
        .map(|_| {
            let s = rls_bench::start_lrc_with_updates(
                BackendProfile::mysql_buffered(),
                UpdateConfig {
                    mode: UpdateMode::Bloom {
                        interval: std::time::Duration::from_secs(3600),
                        params: BloomParams::PAPER,
                    },
                    ..manual_updates()
                },
                &rli.addr().to_string(),
                true,
            );
            preload_lrc(&s, &NameGen::new("fig13"), entries).expect("preload");
            s
        })
        .collect();

    for clients in 1..=max_clients {
        let ingress = SharedIngress::new(ingress_bps);
        let times: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = lrcs[..clients]
                .iter()
                .map(|server| {
                    let ingress = ingress.clone();
                    let rli_addr = rli.addr().to_string();
                    s.spawn(move || {
                        let lrc = server.lrc().expect("lrc role");
                        let cfg = UpdateConfig {
                            mode: UpdateMode::Bloom {
                                interval: std::time::Duration::from_secs(3600),
                                params: BloomParams::PAPER,
                            },
                            link: LinkProfile::wan_la_chicago(),
                            ingress: Some(ingress),
                            ..Default::default()
                        };
                        let mut updater = Updater::new(
                            server.name().to_owned(),
                            Dn::anonymous(),
                            Arc::clone(lrc),
                            &cfg,
                        );
                        let target = rls_storage::RliTarget {
                            name: rli_addr,
                            flags: rls_core::FLAG_BLOOM,
                            patterns: vec![],
                        };
                        // Continuous updates: a new one begins as soon as
                        // the previous completes (worst case, §5.5).
                        let mut times = Vec::new();
                        for _ in 0..updates_per_client {
                            let outcome = updater.send_bloom(&target).expect("bloom update");
                            times.push(outcome.duration.as_secs_f64());
                        }
                        times
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("join"))
                .collect()
        });
        let s = summarize(&times);
        row(&[
            clients.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.min),
            format!("{:.2}", s.max),
        ]);
    }
    println!("\n    expected shape: flat up to ~7 clients, then rising (paper: 6.5–7 s → 11.5 s)");
}
