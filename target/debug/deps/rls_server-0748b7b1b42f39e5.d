/root/repo/target/debug/deps/rls_server-0748b7b1b42f39e5.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/rls_server-0748b7b1b42f39e5: src/bin/rls-server.rs

src/bin/rls-server.rs:
