/root/repo/target/release/deps/table3_bloom_update-6a39253db54f6240.d: crates/bench/benches/table3_bloom_update.rs

/root/repo/target/release/deps/table3_bloom_update-6a39253db54f6240: crates/bench/benches/table3_bloom_update.rs

crates/bench/benches/table3_bloom_update.rs:
