//! # `rls-workload`
//!
//! Workload generation, load driving and measurement statistics for the
//! RLS performance study.
//!
//! The paper's methodology (§4): a multi-threaded client program issues
//! adds/deletes/queries against a preloaded server; each reported number is
//! the mean rate over several trials (typically 5) with the database size
//! held roughly constant. [`driver`] reproduces that client,
//! [`namegen`] the name populations, [`stats`] the trial aggregation.

pub mod dist;
pub mod driver;
pub mod namegen;
pub mod stats;

pub use dist::{UniformPick, ZipfPick};
pub use driver::{drive, drive_pipelined, DriverReport, Trials};
pub use namegen::{preload_lrc, NameGen};
pub use stats::{summarize, Summary};
