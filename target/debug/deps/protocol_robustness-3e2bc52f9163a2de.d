/root/repo/target/debug/deps/protocol_robustness-3e2bc52f9163a2de.d: tests/protocol_robustness.rs

/root/repo/target/debug/deps/protocol_robustness-3e2bc52f9163a2de: tests/protocol_robustness.rs

tests/protocol_robustness.rs:
