/root/repo/target/debug/deps/rls_bench-b56c1ffe1182eb57.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-b56c1ffe1182eb57.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
