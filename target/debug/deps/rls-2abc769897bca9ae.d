/root/repo/target/debug/deps/rls-2abc769897bca9ae.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls-2abc769897bca9ae.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
