//! Framed, optionally-shaped connections.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rls_proto::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use rls_types::{ErrorCode, RlsError, RlsResult};

use crate::fault::{FaultDecision, FaultHook};
use crate::shaper::{sleep_until, ConnCursor, LinkProfile, SharedIngress};

/// Byte and frame counters shared across connections.
///
/// A server attaches one meter to every accepted [`Conn`]; the counters
/// then aggregate transport volume server-wide (`net.*` metrics in the
/// stats report). Directions are from the meter owner's point of view:
/// `bytes_in` is what the server received. Counts include the 4-byte
/// length prefix of each frame — they measure wire bytes, not payload.
#[derive(Debug, Default)]
pub struct ConnMeter {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

impl ConnMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes received, including frame headers.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Total bytes sent, including frame headers.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Total frames received.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Total frames sent.
    pub fn frames_out(&self) -> u64 {
        self.frames_out.load(Ordering::Relaxed)
    }

    fn on_recv(&self, wire_bytes: u64) {
        self.bytes_in.fetch_add(wire_bytes, Ordering::Relaxed);
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    fn on_send(&self, wire_bytes: u64) {
        self.bytes_out.fetch_add(wire_bytes, Ordering::Relaxed);
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// A framed connection, optionally shaped by a [`LinkProfile`] and charged
/// against a [`SharedIngress`] pool.
///
/// Shaping is applied on the *initiating* side of each frame: `send`
/// charges half the RTT plus serialization delay (per-connection and, if
/// configured, shared-ingress) before the bytes hit the socket; `recv`
/// charges half the RTT plus serialization delay for the received bytes
/// after they arrive. End-to-end request/response latency observed by a
/// shaped client therefore includes one full RTT plus both directions'
/// transfer time — what the paper's measurements see.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
    cursor: ConnCursor,
    max_frame: usize,
    peer: SocketAddr,
    peer_label: String,
    meter: Option<Arc<ConnMeter>>,
    hook: Option<Arc<dyn FaultHook>>,
    /// Partial-frame accumulator for [`Conn::try_recv`]: raw wire bytes
    /// (length prefix included) carried across calls that time out
    /// mid-frame.
    rx_buf: Vec<u8>,
    /// Cached `SO_RCVTIMEO` so [`Conn::try_recv`] only issues the
    /// `setsockopt` when the requested wait actually changes.
    rx_timeout: Option<Duration>,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("peer", &self.peer)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl Conn {
    fn from_stream(
        stream: TcpStream,
        profile: LinkProfile,
        ingress: Option<SharedIngress>,
        max_frame: usize,
    ) -> RlsResult<Self> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
        let writer = BufWriter::with_capacity(64 * 1024, stream);
        Ok(Self {
            reader,
            writer,
            profile,
            ingress,
            cursor: ConnCursor::new(),
            max_frame,
            peer,
            peer_label: peer.to_string(),
            meter: None,
            hook: None,
            rx_buf: Vec::new(),
            rx_timeout: None,
        })
    }

    /// The remote address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Replaces the link profile (tests / reconfiguration).
    pub fn set_profile(&mut self, profile: LinkProfile) {
        self.profile = profile;
    }

    /// Attaches a shared ingress pool charged on every `send`.
    pub fn set_ingress(&mut self, ingress: SharedIngress) {
        self.ingress = Some(ingress);
    }

    /// Attaches a traffic meter; every subsequent frame is counted.
    pub fn set_meter(&mut self, meter: Arc<ConnMeter>) {
        self.meter = Some(meter);
    }

    /// Sets a read timeout on the underlying socket. Clears any
    /// non-blocking mode a zero-wait [`Conn::try_recv`] left behind.
    pub fn set_read_timeout(&mut self, d: Option<Duration>) -> RlsResult<()> {
        if self.rx_timeout == Some(Duration::ZERO) {
            self.reader.get_ref().set_nonblocking(false)?;
        }
        self.reader.get_ref().set_read_timeout(d)?;
        self.rx_timeout = d;
        Ok(())
    }

    /// Attaches a fault-injection hook consulted around every frame.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.hook = Some(hook);
    }

    /// Acts on a hook decision for the send path. `Ok(true)` means the
    /// frame was consumed by the fault (caller must not send it).
    fn apply_send_fault(&mut self, body: &[u8]) -> RlsResult<()> {
        let Some(hook) = &self.hook else { return Ok(()) };
        match hook.on_send(&self.peer_label, body.len() + 4) {
            FaultDecision::Allow => Ok(()),
            FaultDecision::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultDecision::Refuse => Err(RlsError::new(
                ErrorCode::Io,
                format!("injected send failure to {}", self.peer_label),
            )),
            FaultDecision::DropMidFrame => {
                // Write the length prefix plus half the body, then sever the
                // connection: the peer observes a truncated frame (protocol
                // error), the sender an I/O failure — a crash mid-update.
                let len = body.len() as u32;
                let _ = self.writer.write_all(&len.to_le_bytes());
                let _ = self.writer.write_all(&body[..body.len() / 2]);
                let _ = self.writer.flush();
                self.shutdown();
                Err(RlsError::new(
                    ErrorCode::Io,
                    format!("injected mid-frame disconnect to {}", self.peer_label),
                ))
            }
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected send stall to {}", self.peer_label),
                ))
            }
        }
    }

    /// Acts on a hook decision for the receive path.
    fn apply_recv_fault(&mut self) -> RlsResult<()> {
        let Some(hook) = &self.hook else { return Ok(()) };
        match hook.on_recv(&self.peer_label) {
            FaultDecision::Allow => Ok(()),
            FaultDecision::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected read stall from {}", self.peer_label),
                ))
            }
            FaultDecision::Refuse | FaultDecision::DropMidFrame => Err(RlsError::new(
                ErrorCode::Io,
                format!("injected receive failure from {}", self.peer_label),
            )),
        }
    }

    fn shape_outbound(&mut self, bytes: usize) {
        if self.profile.is_unshaped() && self.ingress.is_none() {
            return;
        }
        // Serialization first (per-connection NIC, then the shared server
        // ingress link), then propagation (half the RTT) on top — the
        // components of one-way delivery are sequential.
        let mut serialized = self.cursor.acquire(&self.profile, bytes);
        if let Some(pool) = &self.ingress {
            serialized = serialized.max(pool.acquire(bytes));
        }
        sleep_until(serialized + self.profile.rtt / 2);
    }

    fn shape_inbound(&mut self, bytes: usize) {
        if self.profile.is_unshaped() {
            return;
        }
        let serialized = self.cursor.acquire(&self.profile, bytes);
        sleep_until(serialized + self.profile.rtt / 2);
    }

    /// Sends one frame.
    pub fn send(&mut self, body: &[u8]) -> RlsResult<()> {
        self.apply_send_fault(body)?;
        self.shape_outbound(body.len() + 4);
        write_frame(&mut self.writer, body)?;
        self.writer.flush()?;
        if let Some(meter) = &self.meter {
            meter.on_send(body.len() as u64 + 4);
        }
        Ok(())
    }

    /// Receives one frame; `None` on clean EOF.
    pub fn recv(&mut self) -> RlsResult<Option<Vec<u8>>> {
        self.apply_recv_fault()?;
        let frame = read_frame(&mut self.reader, self.max_frame)?;
        if let Some(body) = &frame {
            self.shape_inbound(body.len() + 4);
            if let Some(meter) = &self.meter {
                meter.on_recv(body.len() as u64 + 4);
            }
        }
        Ok(frame)
    }

    /// Attempts to receive one frame, waiting at most `wait` for bytes to
    /// arrive. The read is **resumable**: a frame that is only partially
    /// on the wire when the wait expires is buffered and completed by a
    /// later call, so a worker pool can time-slice many connections
    /// without losing mid-frame bytes.
    ///
    /// A connection driven by `try_recv` must stay on `try_recv`:
    /// [`Conn::recv`] reads the socket directly and would corrupt a
    /// partially-buffered frame. Fault hooks are *not* consulted here —
    /// this is the server-side read path, and hooks are an initiator-side
    /// (client) surface.
    ///
    /// `wait == 0` is a true non-blocking probe (`O_NONBLOCK`, not
    /// `SO_RCVTIMEO`): it returns immediately with whatever is buffered,
    /// which is what a readiness poller sweeping hundreds of parked
    /// connections needs. Because `O_NONBLOCK` also covers the write half,
    /// the socket is switched back to blocking before a completed frame is
    /// returned — the caller's next move is sending a response, and a
    /// short-write on a full send buffer must block, not error.
    pub fn try_recv(&mut self, wait: Duration) -> RlsResult<TryRecv> {
        use std::io::Read;
        // The rx_timeout cache encodes the socket mode: `Some(ZERO)` is
        // non-blocking, `Some(d)` is blocking with SO_RCVTIMEO d, `None`
        // is plain blocking. Only issue syscalls on transitions.
        if wait.is_zero() {
            if self.rx_timeout != Some(Duration::ZERO) {
                self.reader.get_ref().set_nonblocking(true)?;
                self.rx_timeout = Some(Duration::ZERO);
            }
        } else {
            // SO_RCVTIMEO of zero means "block forever" — clamp up instead.
            let wait = wait.max(Duration::from_millis(1));
            if self.rx_timeout != Some(wait) {
                if self.rx_timeout == Some(Duration::ZERO) {
                    self.reader.get_ref().set_nonblocking(false)?;
                }
                self.reader.get_ref().set_read_timeout(Some(wait))?;
                self.rx_timeout = Some(wait);
            }
        }
        loop {
            // A completed frame may already be buffered (the previous read
            // can over-read into the next frame); drain it without
            // touching the socket.
            if self.rx_buf.len() >= 4 {
                let len =
                    u32::from_le_bytes(self.rx_buf[..4].try_into().expect("4 bytes")) as usize;
                if len > self.max_frame {
                    return Err(RlsError::new(
                        ErrorCode::ResourceLimit,
                        format!("frame of {len} bytes exceeds cap of {}", self.max_frame),
                    ));
                }
                if self.rx_buf.len() >= 4 + len {
                    let body = self.rx_buf[4..4 + len].to_vec();
                    self.rx_buf.drain(..4 + len);
                    self.shape_inbound(len + 4);
                    if let Some(meter) = &self.meter {
                        meter.on_recv(len as u64 + 4);
                    }
                    // Leave the socket blocking: the caller's response
                    // send must not see O_NONBLOCK short writes.
                    if self.rx_timeout == Some(Duration::ZERO) {
                        self.reader.get_ref().set_nonblocking(false)?;
                        self.reader.get_ref().set_read_timeout(None)?;
                        self.rx_timeout = None;
                    }
                    return Ok(TryRecv::Frame(body));
                }
            }
            let mut tmp = [0u8; 16 * 1024];
            match self.reader.read(&mut tmp) {
                Ok(0) => {
                    return if self.rx_buf.is_empty() {
                        Ok(TryRecv::Closed)
                    } else {
                        Err(RlsError::protocol("connection closed mid-frame"))
                    };
                }
                Ok(n) => self.rx_buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(TryRecv::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Request/response exchange.
    pub fn request(&mut self, body: &[u8]) -> RlsResult<Vec<u8>> {
        self.send(body)?;
        self.recv()?
            .ok_or_else(|| RlsError::protocol("connection closed awaiting response"))
    }

    /// Shuts down the write half, signalling EOF to the peer.
    pub fn shutdown(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(std::net::Shutdown::Both);
    }
}

/// Outcome of one [`Conn::try_recv`] attempt.
#[derive(Debug)]
pub enum TryRecv {
    /// A complete frame arrived.
    Frame(Vec<u8>),
    /// Nothing (or only part of a frame) arrived within the wait; the
    /// partial bytes are buffered and a later call resumes the read.
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
}

/// Options for [`connect_with`] beyond shaping: a connect timeout and a
/// fault-injection hook.
#[derive(Clone, Debug, Default)]
pub struct ConnectOptions {
    /// TCP connect timeout; `None` uses the OS default.
    pub timeout: Option<Duration>,
    /// Hook consulted before the connect and around every frame on the
    /// resulting connection.
    pub hook: Option<Arc<dyn FaultHook>>,
}

/// Connects to a server with the given shaping.
pub fn connect(
    addr: impl ToSocketAddrs,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
) -> RlsResult<Conn> {
    connect_with(addr, profile, ingress, &ConnectOptions::default())
}

/// Connects with a timeout and/or fault hook (see [`ConnectOptions`]).
pub fn connect_with(
    addr: impl ToSocketAddrs,
    profile: LinkProfile,
    ingress: Option<SharedIngress>,
    opts: &ConnectOptions,
) -> RlsResult<Conn> {
    let sa = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| RlsError::bad_request("address resolved to nothing"))?;
    if let Some(hook) = &opts.hook {
        match hook.on_connect(&sa.to_string()) {
            FaultDecision::Allow => {}
            FaultDecision::Delay(d) => std::thread::sleep(d),
            FaultDecision::Stall(d) => {
                std::thread::sleep(d);
                return Err(RlsError::new(
                    ErrorCode::Timeout,
                    format!("injected connect stall to {sa}"),
                ));
            }
            FaultDecision::Refuse | FaultDecision::DropMidFrame => {
                return Err(RlsError::new(
                    ErrorCode::Io,
                    format!("injected connection refusal to {sa}"),
                ));
            }
        }
    }
    let stream = match opts.timeout {
        Some(d) => TcpStream::connect_timeout(&sa, d)?,
        None => TcpStream::connect(sa)?,
    };
    let mut conn = Conn::from_stream(stream, profile, ingress, DEFAULT_MAX_FRAME)?;
    if let Some(hook) = &opts.hook {
        conn.set_fault_hook(Arc::clone(hook));
    }
    Ok(conn)
}

/// A listening socket producing unshaped server-side [`Conn`]s.
pub struct Listener {
    inner: TcpListener,
    max_frame: usize,
}

impl Listener {
    /// Binds to an address (`port 0` for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs) -> RlsResult<Self> {
        Ok(Self {
            inner: TcpListener::bind(addr)?,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> RlsResult<SocketAddr> {
        Ok(self.inner.local_addr()?)
    }

    /// Overrides the per-frame size cap for accepted connections.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Accepts one connection.
    pub fn accept(&self) -> RlsResult<Conn> {
        self.inner.set_nonblocking(false)?;
        let (stream, _) = self.inner.accept()?;
        Conn::from_stream(stream, LinkProfile::unshaped(), None, self.max_frame)
    }

    /// Accepts one connection, waiting at most `wait`; `Ok(None)` when
    /// nothing arrived in time. Unlike a blocking [`Listener::accept`],
    /// this gives the accept loop a natural shutdown poll point — no
    /// self-connect tricks needed to unblock it.
    pub fn accept_timeout(&self, wait: Duration) -> RlsResult<Option<Conn>> {
        self.inner.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + wait;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    // Non-blocking inheritance from the listener is
                    // platform-dependent; the Conn's reads must block.
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Conn::from_stream(
                        stream,
                        LinkProfile::unshaped(),
                        None,
                        self.max_frame,
                    )?));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Clones the listener handle (for multi-threaded accept loops).
    pub fn try_clone(&self) -> RlsResult<Self> {
        Ok(Self {
            inner: self.inner.try_clone()?,
            max_frame: self.max_frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                std::thread::spawn(move || {
                    while let Ok(Some(body)) = conn.recv() {
                        if conn.send(&body).is_err() {
                            break;
                        }
                    }
                });
                // Tests use few connections; accept loop exits when the
                // listener is dropped with the test.
            }
        });
        (addr, handle)
    }

    #[test]
    fn unshaped_round_trip() {
        let (addr, _h) = echo_server();
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let resp = conn.request(b"hello").unwrap();
        assert_eq!(resp, b"hello");
        let resp = conn.request(b"").unwrap();
        assert_eq!(resp, b"");
    }

    #[test]
    fn rtt_shaping_delays_round_trip() {
        let (addr, _h) = echo_server();
        let profile = LinkProfile {
            rtt: Duration::from_millis(40),
            bandwidth_bps: None,
        };
        let mut conn = connect(addr, profile, None).unwrap();
        let t0 = Instant::now();
        conn.request(b"ping").unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(38), "elapsed={elapsed:?}");
        assert!(elapsed < Duration::from_millis(400), "elapsed={elapsed:?}");
    }

    #[test]
    fn bandwidth_shaping_scales_with_size() {
        let (addr, _h) = echo_server();
        let profile = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: Some(8_000_000), // 1 MB/s
        };
        let mut conn = connect(addr, profile, None).unwrap();
        let body = vec![7u8; 100_000]; // 0.1 s each way
        let t0 = Instant::now();
        let resp = conn.request(&body).unwrap();
        assert_eq!(resp.len(), body.len());
        let elapsed = t0.elapsed().as_secs_f64();
        assert!((0.18..1.0).contains(&elapsed), "elapsed={elapsed}");
    }

    #[test]
    fn shared_ingress_contention_across_connections() {
        let (addr, _h) = echo_server();
        let pool = SharedIngress::new(8_000_000); // 1 MB/s shared
        let profile = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: None, // isolate the shared pool's effect
        };
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut conn = connect(addr, profile, Some(pool)).unwrap();
                    // 100 kB through a shared 1 MB/s pool: 0.1 s alone.
                    conn.request(&vec![1u8; 100_000]).unwrap();
                });
            }
        });
        // Three concurrent 0.1 s transfers through one pool ≈ 0.3 s.
        let elapsed = t0.elapsed().as_secs_f64();
        assert!((0.28..1.2).contains(&elapsed), "elapsed={elapsed}");
    }

    #[test]
    fn meter_counts_wire_bytes_both_directions() {
        let (addr, _h) = echo_server();
        let meter = Arc::new(ConnMeter::new());
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        conn.set_meter(Arc::clone(&meter));
        conn.request(b"hello").unwrap(); // 5 bytes + 4-byte header each way
        conn.request(b"").unwrap(); // header-only frames still count
        assert_eq!(meter.bytes_out(), 9 + 4);
        assert_eq!(meter.bytes_in(), 9 + 4);
        assert_eq!(meter.frames_out(), 2);
        assert_eq!(meter.frames_in(), 2);
    }

    #[test]
    fn try_recv_resumes_partial_frames() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut server = listener.accept().unwrap();
        // Nothing on the wire yet: idle, not an error.
        assert!(matches!(
            server.try_recv(Duration::from_millis(5)).unwrap(),
            TryRecv::Idle
        ));
        // Header plus half the body — the read must park, not fail.
        let body = b"hello-worker-pool";
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&body[..8]).unwrap();
        raw.flush().unwrap();
        assert!(matches!(
            server.try_recv(Duration::from_millis(20)).unwrap(),
            TryRecv::Idle
        ));
        // The rest arrives: the buffered half is completed, nothing lost.
        raw.write_all(&body[8..]).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv(Duration::from_millis(20)).unwrap() {
                TryRecv::Frame(f) => {
                    assert_eq!(f, body);
                    break;
                }
                TryRecv::Idle if Instant::now() < deadline => {}
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_wait_try_recv_probes_without_blocking() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut server = listener.accept().unwrap();
        // An empty socket answers Idle in (much) less than a millisecond —
        // this is the O_NONBLOCK path, not a 1 ms SO_RCVTIMEO wait.
        let start = Instant::now();
        for _ in 0..100 {
            assert!(matches!(
                server.try_recv(Duration::ZERO).unwrap(),
                TryRecv::Idle
            ));
        }
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "zero-wait probes blocked: {:?}",
            start.elapsed()
        );
        // Partial frame: the probe buffers the header and stays Idle.
        let body = b"ready";
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            server.try_recv(Duration::ZERO).unwrap(),
            TryRecv::Idle
        ));
        raw.write_all(body).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let frame = loop {
            match server.try_recv(Duration::ZERO).unwrap() {
                TryRecv::Frame(f) => break f,
                TryRecv::Idle if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected frame, got {other:?}"),
            }
        };
        assert_eq!(frame, body);
        // Returning the frame restored blocking mode: a response send and
        // a timed read both behave normally afterwards.
        server.send(b"ack").unwrap();
        let mut len = [0u8; 4];
        std::io::Read::read_exact(&mut raw, &mut len).unwrap();
        assert_eq!(u32::from_le_bytes(len), 3);
    }

    #[test]
    fn try_recv_drains_back_to_back_frames_and_sees_eof() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = connect(addr, LinkProfile::unshaped(), None).unwrap();
        let mut server = listener.accept().unwrap();
        client.send(b"one").unwrap();
        client.send(b"two").unwrap();
        client.shutdown();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv(Duration::from_millis(20)).unwrap() {
                TryRecv::Frame(f) => got.push(f),
                TryRecv::Closed => break,
                TryRecv::Idle => assert!(Instant::now() < deadline, "timed out"),
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn try_recv_mid_frame_eof_is_protocol_error() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut server = listener.accept().unwrap();
        // Claim 100 bytes, deliver 3, vanish.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        raw.flush().unwrap();
        drop(raw);
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = loop {
            match server.try_recv(Duration::from_millis(20)) {
                Ok(TryRecv::Idle) if Instant::now() < deadline => {}
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code(), ErrorCode::Protocol);
    }

    #[test]
    fn try_recv_enforces_frame_cap() {
        let mut listener = Listener::bind("127.0.0.1:0").unwrap();
        listener.set_max_frame(64);
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut server = listener.accept().unwrap();
        raw.write_all(&1_000_000u32.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = loop {
            match server.try_recv(Duration::from_millis(20)) {
                Ok(TryRecv::Idle) if Instant::now() < deadline => {}
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code(), ErrorCode::ResourceLimit);
    }

    #[test]
    fn accept_timeout_times_out_then_accepts() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t0 = Instant::now();
        assert!(listener
            .accept_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        let _client = TcpStream::connect(addr).unwrap();
        let conn = listener.accept_timeout(Duration::from_secs(2)).unwrap();
        assert!(conn.is_some());
    }

    #[test]
    fn clean_eof_is_none() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            assert_eq!(conn.recv().unwrap().unwrap(), b"bye");
            assert_eq!(conn.recv().unwrap(), None);
        });
        let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
        conn.send(b"bye").unwrap();
        conn.shutdown();
        h.join().unwrap();
    }
}
