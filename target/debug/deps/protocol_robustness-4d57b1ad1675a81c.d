/root/repo/target/debug/deps/protocol_robustness-4d57b1ad1675a81c.d: tests/protocol_robustness.rs

/root/repo/target/debug/deps/libprotocol_robustness-4d57b1ad1675a81c.rmeta: tests/protocol_robustness.rs

tests/protocol_robustness.rs:
