//! `rls-server` — run an RLS server from a configuration file.
//!
//! ```text
//! rls-server <config-file>
//! rls-server --example-config      # print a commented sample config
//! ```
//!
//! The server runs until the process is killed. See
//! [`rls::core::configfile`] for the file format.

use std::process::ExitCode;

use rls::core::configfile::load_config;
use rls::core::{Server, FLAG_BLOOM};

const EXAMPLE: &str = r#"# rls-server configuration
lrc_server   true
rli_server   false
server_name  lrc-example
bind         127.0.0.1:39281

db_vendor    mysql          # mysql | postgres
db_flush     disabled       # enabled | disabled | none
#db_wal      /var/lib/rls/lrc.wal
#shards      4              # LFN-hash catalog shards (1 = single engine)

update_mode     bloom       # none | full | immediate | bloom
update_interval 300
#update_rli     rli.example.org:39281 bloom

# structured logging: minimum level and line format
#log_level   info           # error | warn | info | debug | trace
#log_format  text           # text | json

# log any operation slower than this through the structured logger; 0 disables
#slow_op_threshold_ms 250

# spans kept by the in-memory trace journal (rls-cli trace); 0 disables
#trace_journal_capacity 4096

# flight recorder (rls-cli top / history): sampling cadence and ring depth
#telemetry_interval_ms   1000   # 0 disables the sampler thread
#telemetry_ring_capacity 512

#acl_enabled true
#gridmap     "/O=Grid/OU=Example/CN=Operator" operator
#acl         user:operator admin
#acl         dn:/O=Grid/.* lrc_read
"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--example-config" => {
            print!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        [path] => match run(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                rls_trace::error!("rls-server", "startup failed", error = e);
                ExitCode::FAILURE
            }
        },
        _ => {
            rls_trace::error!(
                "rls-server",
                "usage: rls-server <config-file> | rls-server --example-config"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = load_config(path)?;
    // The config owns the process-wide logger settings; apply them before
    // anything else logs. Embedded servers (tests, benches) never get here,
    // so they keep the quiet Warn default.
    rls_trace::global().set_level(parsed.server.log_level);
    rls_trace::global().set_format(parsed.server.log_format);
    let server = Server::start(parsed.server)?;
    rls_trace::info!(
        "rls-server",
        "listening",
        name = server.name(),
        addr = server.addr(),
        lrc = server.lrc().is_some(),
        rli = server.rli().is_some()
    );
    // Apply update_rli directives to the catalog's update list.
    if let Some(lrc) = server.lrc() {
        for directive in &parsed.update_rlis {
            let flags = if directive.bloom { FLAG_BLOOM } else { 0 };
            match lrc
                .catalog()
                .add_rli(&directive.name, flags, &directive.patterns)
            {
                Ok(()) => rls_trace::info!("rls-server", "updating RLI", target = directive.name),
                // Already present from a previous run's durable catalog.
                Err(e) if e.code() == rls::types::ErrorCode::RliExists => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
