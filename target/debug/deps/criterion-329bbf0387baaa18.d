/root/repo/target/debug/deps/criterion-329bbf0387baaa18.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-329bbf0387baaa18.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-329bbf0387baaa18.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
