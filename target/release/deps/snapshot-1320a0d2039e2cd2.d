/root/repo/target/release/deps/snapshot-1320a0d2039e2cd2.d: crates/bench/benches/snapshot.rs

/root/repo/target/release/deps/snapshot-1320a0d2039e2cd2: crates/bench/benches/snapshot.rs

crates/bench/benches/snapshot.rs:
