/root/repo/target/debug/deps/rls_cli-d00e327f860b6457.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/librls_cli-d00e327f860b6457.rmeta: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
