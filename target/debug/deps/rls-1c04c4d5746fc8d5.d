/root/repo/target/debug/deps/rls-1c04c4d5746fc8d5.d: src/lib.rs

/root/repo/target/debug/deps/librls-1c04c4d5746fc8d5.rmeta: src/lib.rs

src/lib.rs:
