/root/repo/target/debug/deps/fig11_bulk_ops-2d778577035f8d3e.d: crates/bench/benches/fig11_bulk_ops.rs

/root/repo/target/debug/deps/fig11_bulk_ops-2d778577035f8d3e: crates/bench/benches/fig11_bulk_ops.rs

crates/bench/benches/fig11_bulk_ops.rs:
