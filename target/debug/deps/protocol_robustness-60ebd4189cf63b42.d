/root/repo/target/debug/deps/protocol_robustness-60ebd4189cf63b42.d: tests/protocol_robustness.rs

/root/repo/target/debug/deps/protocol_robustness-60ebd4189cf63b42: tests/protocol_robustness.rs

tests/protocol_robustness.rs:
