//! Criterion micro-benches: soft-state payload construction costs — the
//! ablation of incremental counting-filter maintenance vs full
//! regeneration (Table 3's column 2 vs column 3 distinction), and full vs
//! delta payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rls_bloom::{BloomFilter, BloomParams, CountingBloomFilter};
use rls_core::{LrcConfig, LrcService, UpdateConfig, UpdateMode};
use rls_types::Mapping;

fn service_with(n: u64, bloom: bool) -> LrcService {
    let mode = if bloom {
        UpdateMode::Bloom {
            interval: std::time::Duration::from_secs(3600),
            params: BloomParams::PAPER,
        }
    } else {
        UpdateMode::None
    };
    let svc = LrcService::new(LrcConfig {
        update: UpdateConfig {
            mode,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    for i in 0..n {
        svc.create_mapping(
            &Mapping::new(format!("lfn://ss/{i:09}"), format!("pfn://ss/{i:09}")).unwrap(),
        )
        .unwrap();
    }
    svc
}

/// Incremental export (counting filter → bitmap) vs full rebuild from the
/// catalog, per catalog size.
fn bench_bloom_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("softstate/bloom_snapshot");
    g.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        let incremental = service_with(n, true);
        // First snapshot resizes the filter to the catalog (one-time
        // generation); steady-state snapshots must then be incremental.
        incremental.bloom_snapshot();
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let (filter, gen_cost) = incremental.bloom_snapshot();
                assert_eq!(gen_cost, 0.0);
                filter
            });
        });
        let regen = service_with(n, false);
        g.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let (filter, _) = regen.bloom_snapshot();
                filter
            });
        });
    }
    g.finish();
}

/// Payload sizes: what actually crosses the wire per update mode.
fn bench_payload_sizes(c: &mut Criterion) {
    println!("\nsoft-state payload sizes per catalog size:");
    println!(
        "{:>10} {:>18} {:>14} {:>18}",
        "entries", "uncompressed (B)", "bloom (B)", "compression ratio"
    );
    for &n in &[10_000u64, 100_000, 1_000_000] {
        let uncompressed: u64 = (0..n).map(|i| format!("lfn://ss/{i:09}").len() as u64 + 4).sum();
        let bloom = BloomFilter::with_capacity(BloomParams::PAPER, n).byte_len() as u64;
        println!(
            "{:>10} {:>18} {:>14} {:>17.1}x",
            n,
            uncompressed,
            bloom,
            uncompressed as f64 / bloom as f64
        );
    }
    c.bench_function("softstate/delta_take_requeue", |b| {
        let svc = LrcService::new(LrcConfig {
            update: UpdateConfig {
                mode: UpdateMode::immediate_default(),
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            svc.create_mapping(
                &Mapping::new(format!("lfn://d/{i}"), format!("pfn://d/{i}")).unwrap(),
            )
            .unwrap();
            let log = svc.take_deltas();
            svc.requeue_deltas(log);
        });
    });
}

/// Counting-filter mutation cost (what keeping the filter current costs
/// per catalog change).
fn bench_counting_maintenance(c: &mut Criterion) {
    let mut filter = CountingBloomFilter::with_capacity(BloomParams::PAPER, 1_000_000);
    for i in 0..1_000_000u64 {
        filter.insert(&format!("lfn://m/{i}"));
    }
    c.bench_function("softstate/counting_insert_remove_1m", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("lfn://new/{i}");
            filter.insert(&key);
            filter.remove(&key);
        });
    });
}

criterion_group!(
    benches,
    bench_bloom_generation,
    bench_payload_sizes,
    bench_counting_maintenance
);
criterion_main!(benches);
