/root/repo/target/debug/deps/telemetry_flight-9faeedf685ee4d29.d: crates/core/tests/telemetry_flight.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_flight-9faeedf685ee4d29.rmeta: crates/core/tests/telemetry_flight.rs Cargo.toml

crates/core/tests/telemetry_flight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
