/root/repo/target/debug/deps/e2e-7fbd823c23e163ab.d: crates/core/tests/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-7fbd823c23e163ab.rmeta: crates/core/tests/e2e.rs Cargo.toml

crates/core/tests/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
