/root/repo/target/debug/deps/micro_codec-eb9522fa803e49f0.d: crates/bench/benches/micro_codec.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_codec-eb9522fa803e49f0.rmeta: crates/bench/benches/micro_codec.rs Cargo.toml

crates/bench/benches/micro_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
