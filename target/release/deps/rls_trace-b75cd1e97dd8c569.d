/root/repo/target/release/deps/rls_trace-b75cd1e97dd8c569.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/release/deps/librls_trace-b75cd1e97dd8c569.rlib: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/release/deps/librls_trace-b75cd1e97dd8c569.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
