/root/repo/target/release/deps/fig11_bulk_ops-ff45e6a231132d6d.d: crates/bench/benches/fig11_bulk_ops.rs

/root/repo/target/release/deps/fig11_bulk_ops-ff45e6a231132d6d: crates/bench/benches/fig11_bulk_ops.rs

crates/bench/benches/fig11_bulk_ops.rs:
