/root/repo/target/debug/deps/fig11_bulk_ops-fc27c5ef89016508.d: crates/bench/benches/fig11_bulk_ops.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_bulk_ops-fc27c5ef89016508.rmeta: crates/bench/benches/fig11_bulk_ops.rs Cargo.toml

crates/bench/benches/fig11_bulk_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
