/root/repo/target/debug/deps/rls_server-9e93edf4921b3015.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/rls_server-9e93edf4921b3015: src/bin/rls-server.rs

src/bin/rls-server.rs:
