//! **Figure 10** — RLI Bloom-filter query rate: each Bloom filter has
//! 1 million mappings; multiple clients with 3 threads per client; series
//! for 1, 10 and 100 Bloom filters at the RLI.
//!
//! Paper result: ~10 000+ queries/s — much faster than the relational
//! path (Fig. 9) — similar for 1 and 10 filters, but dropping for 100
//! filters because *every* stored filter is probed on each query.

use rls_bench::{banner, header, row, start_rli, Scale};
use rls_bloom::{BloomFilter, BloomParams};
use rls_types::Timestamp;
use rls_workload::{drive, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 10",
        "RLI query rates vs number of Bloom filters (1 / 10 / 100)",
        &scale,
    );
    let entries = scale.pick(50_000, 1_000_000);
    let queries_per_trial = scale.pick(20_000, 100_000) as usize;
    println!("    each filter summarizes {entries} mappings");
    header(&["filters", "clients", "threads", "query/s"]);

    let gen = NameGen::new("fig10");
    for &filters in &[1usize, 10, 100] {
        let server = start_rli();
        {
            let rli = server.rli().expect("rli role");
            let now = Timestamp::now();
            // Filter 0 holds the queried population; the rest are other
            // LRCs' filters that each query must also probe.
            for f in 0..filters {
                let mut filter = BloomFilter::with_capacity(BloomParams::PAPER, entries);
                if f == 0 {
                    for i in 0..entries {
                        filter.insert(&gen.lfn(i));
                    }
                } else {
                    for i in 0..entries {
                        filter.insert(&format!("lfn://other{f}/file{i}"));
                    }
                }
                rli.apply_bloom(&format!("lrc-{f}"), filter, now);
            }
        }
        for clients in 1..=10usize {
            let threads = clients * 3;
            let per_thread = queries_per_trial.div_ceil(threads);
            let mut trials = Trials::new();
            for trial in 0..scale.trials {
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        let idx = ((t + trial) as u64)
                            .wrapping_mul(7919)
                            .wrapping_add(i as u64)
                            % entries;
                        c.rli_query_lfn(&gen.lfn(idx)).map(|_| ())
                    },
                )
                .expect("queries");
                assert_eq!(report.errors, 0);
                trials.push(&report);
            }
            row(&[
                filters.to_string(),
                clients.to_string(),
                threads.to_string(),
                format!("{:.0}", trials.mean_rate()),
            ]);
        }
    }
    println!("\n    expected shape: 1 ≈ 10 filters; 100 filters clearly slower per query");
}
