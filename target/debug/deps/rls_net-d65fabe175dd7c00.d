/root/repo/target/debug/deps/rls_net-d65fabe175dd7c00.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs Cargo.toml

/root/repo/target/debug/deps/librls_net-d65fabe175dd7c00.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/pipeline.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
