/root/repo/target/debug/deps/fuzz-66f537473e34a408.d: crates/proto/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-66f537473e34a408: crates/proto/tests/fuzz.rs

crates/proto/tests/fuzz.rs:
