//! **Figure 11** — LRC bulk operation rates, 1 million mappings in the
//! MySQL back end, multiple clients with 10 threads per client, 1000
//! requests per bulk operation.
//!
//! Paper result: bulk queries beat non-bulk queries by ~27 % at 10 threads,
//! shrinking to ~8 % at 100 threads; combined bulk add/delete lands between
//! the non-bulk add and delete rates at high thread counts. The reproduced
//! claim: batching amortizes per-request overhead, with the advantage
//! shrinking as concurrency already keeps the server busy.

use std::time::Duration;

use rls_bench::{banner, header, row, start_lrc_group_commit, start_lrc_sharded, Scale};
use rls_proto::Request;
use rls_storage::BackendProfile;
use rls_types::Mapping;
use rls_workload::{drive, drive_pipelined, preload_lrc, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 11",
        "bulk operation rates (1000 requests per bulk op)",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let bulk_size = 1000usize;
    let bulks_per_thread = scale.pick(3, 10) as usize;
    println!(
        "    preload: {entries} mappings; {bulk_size} requests per bulk op  (catalog shards: {})",
        scale.shards
    );
    header(&["clients", "threads", "bulk q/s", "bulk add+del/s", "single q/s"]);

    let server = start_lrc_sharded(BackendProfile::mysql_buffered(), scale.shards);
    let gen = NameGen::new("fig11");
    preload_lrc(&server, &gen, entries).expect("preload");
    let tgen = NameGen::new("fig11-trial");

    for clients in 1..=10usize {
        let threads = clients * 10;
        let (mut bq, mut bad, mut sq) = (Trials::new(), Trials::new(), Trials::new());
        for trial in 0..scale.trials {
            // Bulk queries: each driver op is one 1000-name bulk request;
            // the reported rate is individual requests (names) per second.
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                bulks_per_thread,
                |c, t, i| {
                    let names: Vec<String> = (0..bulk_size)
                        .map(|k| {
                            let idx = ((t + trial) as u64)
                                .wrapping_mul(7919)
                                .wrapping_add((i * bulk_size + k) as u64)
                                % entries;
                            gen.lfn(idx)
                        })
                        .collect();
                    c.bulk_query_lfn(names).map(|_| ())
                },
            )
            .expect("bulk queries");
            assert_eq!(report.errors, 0);
            bq.push_rate(report.rate() * bulk_size as f64);

            // Combined bulk add/delete: 1000 adds then 1000 deletes per op
            // pair, keeping the database size constant (§5.4).
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                bulks_per_thread,
                |c, t, i| {
                    let base = ((trial * 1000 + t) * 1_000_000 + i * bulk_size) as u64;
                    let mappings: Vec<Mapping> = (0..bulk_size as u64)
                        .map(|k| {
                            Mapping::new(tgen.lfn(base + k), tgen.pfn(0, base + k)).unwrap()
                        })
                        .collect();
                    let fails = c.bulk_create(mappings.clone())?;
                    debug_assert!(fails.is_empty());
                    let fails = c.bulk_delete(mappings)?;
                    debug_assert!(fails.is_empty());
                    Ok(())
                },
            )
            .expect("bulk add/delete");
            assert_eq!(report.errors, 0);
            // Each driver op performed 2×bulk_size individual requests.
            bad.push_rate(report.rate() * (2 * bulk_size) as f64);

            // Non-bulk query baseline for the same thread count.
            let per_thread = (bulks_per_thread * bulk_size / 10).max(100);
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                |c, t, i| {
                    let idx = ((t + trial) as u64)
                        .wrapping_mul(6151)
                        .wrapping_add(i as u64)
                        % entries;
                    c.query_lfn(&gen.lfn(idx)).map(|_| ())
                },
            )
            .expect("single queries");
            sq.push(&report);
        }
        row(&[
            clients.to_string(),
            threads.to_string(),
            format!("{:.0}", bq.mean_rate()),
            format!("{:.0}", bad.mean_rate()),
            format!("{:.0}", sq.mean_rate()),
        ]);
    }
    println!("\n    expected shape: bulk q/s > single q/s, advantage shrinking with threads");

    // --- Pipelined singles vs bulk --------------------------------------
    // Bulk ops amortize per-request overhead by batching inside one frame;
    // pipelining amortizes it by keeping `--pipeline <depth>` frames in
    // flight. Compare the three on the query workload at 10 threads: how
    // much of the bulk advantage does pipelining alone recover?
    let depth = if scale.pipeline > 1 { scale.pipeline } else { 8 };
    let pthreads = 10usize;
    let pper = (bulks_per_thread * bulk_size / 10).max(100);
    println!(
        "\n    single queries, lockstep vs pipelined (depth {depth}), {pthreads} threads:"
    );
    header(&["series", "query/s"]);
    for (label, d) in [("single lockstep", 1usize), ("single pipelined", depth)] {
        let mut tr = Trials::new();
        for trial in 0..scale.trials {
            let report = drive_pipelined(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                pthreads,
                pper,
                d,
                |t, i| {
                    let idx = ((t + trial) as u64)
                        .wrapping_mul(6151)
                        .wrapping_add(i as u64)
                        % entries;
                    Request::QueryLfn(gen.lfn(idx))
                },
            )
            .expect("pipelined single queries");
            assert_eq!(report.errors, 0);
            tr.push(&report);
        }
        row(&[label.to_string(), format!("{:.0}", tr.mean_rate())]);
    }
    println!("    compare with the 10-thread bulk q/s row above");

    // --- Durable writes: group commit vs per-item commits ------------------
    // Under FlushMode::PerCommit every commit pays a WAL sync. Before the
    // transactional bulk path, a bulk create issued one commit per item —
    // the same sync bill as single adds, i.e. pure write amplification.
    // The group-commit path stages the whole batch in one transaction: one
    // WAL record and one sync per bulk request, per-item errors preserved.
    // The `group_commit` config knob restores the old path for comparison.
    let disk = Duration::from_millis(2);
    let wbulk = scale.pick(100, 1000) as usize;
    let wthreads = 4usize;
    let wbatches = scale.pick(2, 3) as usize;
    println!(
        "\n    durable writes: per-commit flush, {}ms simulated sync, {wbulk} items per bulk request",
        disk.as_millis()
    );
    header(&["write mode", "creates/s", "vs single"]);
    let mut single_rate = 0.0f64;
    for (label, group_commit, bulk) in [
        ("single adds", true, false),
        ("bulk per-item", false, true),
        ("bulk grouped", true, true),
    ] {
        let server = start_lrc_group_commit(
            BackendProfile::mysql_durable().with_sync_latency(disk),
            group_commit,
        );
        let wgen = NameGen::new("fig11-durable");
        let mut tr = Trials::new();
        for trial in 0..scale.trials {
            let rate = if bulk {
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    wthreads,
                    wbatches,
                    |c, t, i| {
                        let base = (((trial * wthreads + t) * wbatches + i) * wbulk) as u64;
                        let mappings: Vec<Mapping> = (0..wbulk as u64)
                            .map(|k| {
                                Mapping::new(wgen.lfn(base + k), wgen.pfn(0, base + k)).unwrap()
                            })
                            .collect();
                        let fails = c.bulk_create(mappings)?;
                        debug_assert!(fails.is_empty());
                        Ok(())
                    },
                )
                .expect("bulk creates");
                assert_eq!(report.errors, 0);
                report.rate() * wbulk as f64
            } else {
                let per_thread = wbulk * wbatches;
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    wthreads,
                    per_thread,
                    |c, t, i| {
                        let idx = ((trial * wthreads + t) * per_thread + i) as u64;
                        c.create_mapping(&wgen.lfn(idx), &wgen.pfn(0, idx))
                            .map(|_| ())
                    },
                )
                .expect("single creates");
                assert_eq!(report.errors, 0);
                report.rate()
            };
            tr.push_rate(rate);
        }
        let rate = tr.mean_rate();
        if !bulk {
            single_rate = rate;
        }
        row(&[
            label.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}x", rate / single_rate.max(1e-9)),
        ]);
    }
    println!("\n    expected shape: grouped bulk >= 1.5x single adds; per-item bulk ~= single");
}
