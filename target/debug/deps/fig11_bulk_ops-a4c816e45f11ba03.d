/root/repo/target/debug/deps/fig11_bulk_ops-a4c816e45f11ba03.d: crates/bench/benches/fig11_bulk_ops.rs

/root/repo/target/debug/deps/libfig11_bulk_ops-a4c816e45f11ba03.rmeta: crates/bench/benches/fig11_bulk_ops.rs

crates/bench/benches/fig11_bulk_ops.rs:
