/root/repo/target/debug/deps/rls_types-2981c39b29c53129.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/librls_types-2981c39b29c53129.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/auth.rs:
crates/types/src/error.rs:
crates/types/src/names.rs:
crates/types/src/pattern.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
