/root/repo/target/debug/deps/rls_cli-7d3cca2b751d5fe7.d: src/bin/rls-cli.rs

/root/repo/target/debug/deps/rls_cli-7d3cca2b751d5fe7: src/bin/rls-cli.rs

src/bin/rls-cli.rs:
