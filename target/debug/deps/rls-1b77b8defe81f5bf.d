/root/repo/target/debug/deps/rls-1b77b8defe81f5bf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls-1b77b8defe81f5bf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
