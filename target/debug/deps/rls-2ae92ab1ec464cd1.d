/root/repo/target/debug/deps/rls-2ae92ab1ec464cd1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls-2ae92ab1ec464cd1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
