/root/repo/target/debug/deps/fig09_rli_query_db-13708e101f813356.d: crates/bench/benches/fig09_rli_query_db.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_rli_query_db-13708e101f813356.rmeta: crates/bench/benches/fig09_rli_query_db.rs Cargo.toml

crates/bench/benches/fig09_rli_query_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
