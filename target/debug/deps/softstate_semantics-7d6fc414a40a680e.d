/root/repo/target/debug/deps/softstate_semantics-7d6fc414a40a680e.d: crates/core/tests/softstate_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsoftstate_semantics-7d6fc414a40a680e.rmeta: crates/core/tests/softstate_semantics.rs Cargo.toml

crates/core/tests/softstate_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
